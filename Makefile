# Developer entry points.  The repo is pure python; `src` goes on PYTHONPATH.

PYTEST = PYTHONPATH=src python -m pytest
REPRO = PYTHONPATH=src python -m repro

.PHONY: test test-fast test-cov bench bench-check bench-serve serve-smoke scenario-smoke fabric-smoke lint smoke eval-smoke api-check api-snapshot

## Tier-1 verification: the full suite, fail-fast.
test:
	$(PYTEST) -x -q

## Fast dev loop: skip the slow integration/training tests.
test-fast:
	$(PYTEST) -x -q -m "not slow"

## Tier-1 suite under coverage (needs pytest-cov; the CI coverage gate).
## The floor lives in pyproject.toml ([tool.coverage.report] fail-under).
test-cov:
	$(PYTEST) -x -q --cov=repro --cov-report=term --cov-report=xml:coverage.xml

## Packed-engine perf regression harness (writes benchmarks/results/BENCH_sc_engine.json).
bench:
	PYTHONPATH=src python benchmarks/bench_perf_sc_engine.py

## Perf gate: re-run the harness and fail if packed-engine speedups fall
## below the floors recorded in the JSON baseline (the CI perf job).
bench-check:
	$(REPRO) bench --check-floor

## Serve load generator (writes benchmarks/results/BENCH_serve.json) and
## its floor gate: sustained throughput >= 50 img/s + p99 ceilings.
bench-serve:
	$(REPRO) bench --suite serve --check-floor

## Serve acceptance gate: 64 concurrent requests bit-identical to offline
## eval (fault-free and under fault injection) + warm pass 100% cache hits,
## run through both engine families (thread + 2-shard process).
serve-smoke:
	PYTHONPATH=src python benchmarks/bench_serve_latency.py --smoke --engine both

## Scenario gate: the CI smoke scenarios on both engine families (every
## assertion — bit-identity, SLOs, recovery — must pass).
scenario-smoke:
	$(REPRO) scenario examples/specs/scenario_poisson_slo.json examples/specs/scenario_flashcrowd_kill.json examples/specs/scenario_burst_cacheloss.json --engine thread --cache-dir .repro-cache
	$(REPRO) scenario examples/specs/scenario_poisson_slo.json examples/specs/scenario_flashcrowd_kill.json examples/specs/scenario_burst_cacheloss.json --engine process --cache-dir .repro-cache

## Fabric gate: place-and-route + execute the example fabric specs with
## every slot bit-identical to the golden blocks path, plus the verify
## section (partial-reconfig write counts, Table VI reconciliation).
fabric-smoke:
	$(REPRO) fabric examples/specs/fabric_design_4x4.json examples/specs/fabric_run_smoke.json --cache-dir .repro-cache
	$(REPRO) fabric examples/specs/fabric_run_smoke.json --cache-dir .repro-cache
	$(REPRO) scenario examples/specs/scenario_fabric_deadtile.json --cache-dir .repro-cache

## Lint (ruff config lives in pyproject.toml).  Falls back to a syntax
## check when ruff is not installed locally; CI always installs ruff.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; running syntax check only"; \
		python -m compileall -q src tests benchmarks examples && echo "syntax ok"; \
	fi

## API-surface guard: every registry family builds + spec-round-trips, and
## the public repro.* export list matches tools/api_surface.txt (CI job).
api-check:
	PYTHONPATH=src python tools/check_api_surface.py

## Refresh the export snapshot after an intentional API change.
api-snapshot:
	PYTHONPATH=src python tools/check_api_surface.py --update

## Orchestrator smoke: a reduced parallel DSE sweep + self-checks (CI).
smoke:
	$(REPRO) verify
	$(REPRO) dse --max-designs 32 --workers 2 --rows 16 --cache-dir .repro-cache
	$(REPRO) dse --max-designs 32 --workers 2 --rows 16 --cache-dir .repro-cache

## Eval-pipeline smoke: the acceptance loop — cold run, then a warm run that
## must be served entirely from cache, with the per-image bit-identity check.
eval-smoke:
	$(REPRO) eval --max-images 64 --workers 2 --cache-dir .repro-cache --verify-batched
	$(REPRO) eval --max-images 64 --workers 2 --cache-dir .repro-cache --verify-batched
