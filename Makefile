# Developer entry points.  The repo is pure python; `src` goes on PYTHONPATH.

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: test test-fast bench

## Tier-1 verification: the full suite, fail-fast.
test:
	$(PYTEST) -x -q

## Fast dev loop: skip the slow integration/training tests.
test-fast:
	$(PYTEST) -x -q -m "not slow"

## Packed-engine perf regression harness (writes benchmarks/results/BENCH_sc_engine.json).
bench:
	PYTHONPATH=src python benchmarks/bench_perf_sc_engine.py
