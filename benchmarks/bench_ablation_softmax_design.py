"""Ablations on the softmax circuit design choices (DESIGN.md section 5).

Two of the knobs DESIGN.md calls out are swept here in isolation, holding
everything else at the Table IV operating point (Bx = 4, By = 8, m = 64):

* the iteration count ``k`` of Algorithm 1 — both the floating-point
  recurrence and the bit-accurate circuit, showing the fast convergence that
  justifies the paper's choice of k = 3;
* the two sub-sample rates ``s1`` and ``s2`` — the only lossy steps of the
  deterministic pipeline, trading BSN/multiplier width (area) against MAE.
"""

from conftest import emit

from repro.core.softmax_circuit import (
    IterativeSoftmaxCircuit,
    SoftmaxCircuitConfig,
    calibrate_alpha_x,
    calibrate_alpha_y,
)
from repro.core.softmax_iterative import IterativeSoftmax
from repro.hw.synthesis import synthesize

M, BX, BY = 64, 4, 8


def _base_config(logits, **overrides):
    params = dict(
        m=M,
        iterations=3,
        bx=BX,
        alpha_x=calibrate_alpha_x(logits, BX),
        by=BY,
        alpha_y=calibrate_alpha_y(BY, M),
        s1=32,
        s2=8,
    )
    params.update(overrides)
    return SoftmaxCircuitConfig(**params)


def test_ablation_iteration_count(benchmark, softmax_test_vectors):
    logits = softmax_test_vectors

    def run():
        rows = []
        for k in (1, 2, 3, 4, 6, 8):
            float_mae = IterativeSoftmax(iterations=k).error_vs_exact(logits)
            circuit = IterativeSoftmaxCircuit(_base_config(logits, iterations=k))
            report = synthesize(circuit.build_hardware())
            rows.append((k, float_mae, circuit.mean_absolute_error(logits), report.delay_ns, report.adp))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_softmax_iterations",
        ["k", "Float recurrence MAE", "Circuit MAE", "Delay (ns)", "ADP"],
        rows,
    )
    float_maes = [r[1] for r in rows]
    delays = [r[3] for r in rows]
    # The float recurrence converges quickly with k while latency grows
    # linearly — k = 3 is already deep into diminishing returns.
    assert float_maes[-1] < float_maes[0]
    assert delays == sorted(delays)
    assert float_maes[2] < 0.5 * float_maes[0]


def test_ablation_subsampling(benchmark, softmax_test_vectors):
    logits = softmax_test_vectors

    def run():
        rows = []
        for s1 in (8, 32, 128, 512):
            circuit = IterativeSoftmaxCircuit(_base_config(logits, s1=s1))
            report = synthesize(circuit.build_hardware())
            rows.append(("s1 sweep", s1, 8, report.area_um2, report.adp, circuit.mean_absolute_error(logits)))
        for s2 in (2, 8, 32, 128):
            circuit = IterativeSoftmaxCircuit(_base_config(logits, s2=s2))
            report = synthesize(circuit.build_hardware())
            rows.append(("s2 sweep", 32, s2, report.area_um2, report.adp, circuit.mean_absolute_error(logits)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_subsampling", ["Sweep", "s1", "s2", "Area (um2)", "ADP", "MAE"], rows)

    s1_rows = [r for r in rows if r[0] == "s1 sweep"]
    s2_rows = [r for r in rows if r[0] == "s2 sweep"]
    # Coarser sub-sampling always shrinks the block.
    assert [r[3] for r in s1_rows] == sorted([r[3] for r in s1_rows], reverse=True)
    assert [r[3] for r in s2_rows] == sorted([r[3] for r in s2_rows], reverse=True)
    # The cheapest point of each sweep is never the most accurate one.
    assert s1_rows[-1][5] >= min(r[5] for r in s1_rows)
    assert s2_rows[-1][5] >= min(r[5] for r in s2_rows)
