"""Training-pipeline ablations (DESIGN.md section 5).

Two design choices of the Section V recipe are ablated on the shared trained
pipeline setup (kept deliberately small — these are directional checks, not
Table V reruns):

* **KD teacher choice** — the paper teaches the later progressive steps with
  the W16-A16-R16 model instead of the FP model; the ablation trains the
  final W2-A2-R16 step both ways.
* **Progressive order** — quantising activations before weights (the paper's
  order) versus weights before activations.
"""

from conftest import bench_scale, emit

from repro.nn.quantization import PrecisionScheme
from repro.nn.vit import CompactVisionTransformer, ViTConfig
from repro.training.datasets import synthetic_cifar10
from repro.training.distillation import KnowledgeDistiller
from repro.training.pipeline import clone_model
from repro.training.trainer import Trainer, TrainingConfig, evaluate_accuracy


def _setup(scale):
    sizes = {
        "small": dict(train=384, test=192, layers=2, dim=32, epochs=2),
        "default": dict(train=1024, test=384, layers=3, dim=32, epochs=4),
        "full": dict(train=4096, test=1024, layers=5, dim=48, epochs=10),
    }[scale]
    train, test = synthetic_cifar10(train_size=sizes["train"], test_size=sizes["test"])
    vit = ViTConfig(
        image_size=16, patch_size=4, embed_dim=sizes["dim"], num_layers=sizes["layers"],
        num_heads=4, num_classes=10, norm="bn", seed=0,
    )
    model = CompactVisionTransformer(vit)
    trainer = Trainer(model, train, test, TrainingConfig(epochs=sizes["epochs"] + 2, batch_size=128, learning_rate=1e-3))
    trainer.fit()
    return train, test, model, sizes["epochs"]


def _train_under_scheme(base_model, scheme_sequence, teacher, train, test, epochs):
    model = clone_model(base_model)
    model.train()
    distiller = KnowledgeDistiller(teacher)
    accuracy = None
    for scheme in scheme_sequence:
        model.apply_precision(scheme)
        trainer = Trainer(
            model, train, test,
            TrainingConfig(epochs=epochs, batch_size=128, learning_rate=5e-4),
            loss_fn=distiller.as_loss_fn(),
        )
        trainer.fit()
        accuracy = evaluate_accuracy(model, test)
    return accuracy


def test_ablation_kd_teacher_and_order(benchmark):
    scale = bench_scale()

    def run():
        train, test, fp_model, epochs = _setup(scale)
        fp_teacher = clone_model(fp_model)

        # Intermediate W16-A16-R16 model (the paper's teacher for late steps).
        w16 = clone_model(fp_model)
        w16.train()
        w16.apply_precision(PrecisionScheme.parse("W16-A16-R16"))
        Trainer(
            w16, train, test, TrainingConfig(epochs=epochs, batch_size=128, learning_rate=5e-4),
            loss_fn=KnowledgeDistiller(fp_teacher).as_loss_fn(),
        ).fit()
        w16_teacher = clone_model(w16, PrecisionScheme.parse("W16-A16-R16"))

        final_scheme = [PrecisionScheme.parse("W2-A2-R16")]
        acc_with_w16_teacher = _train_under_scheme(w16, final_scheme, w16_teacher, train, test, epochs)
        acc_with_fp_teacher = _train_under_scheme(w16, final_scheme, fp_teacher, train, test, epochs)

        activations_first = [PrecisionScheme.parse("W16-A2-R16"), PrecisionScheme.parse("W2-A2-R16")]
        weights_first = [PrecisionScheme.parse("W2-A16-R16"), PrecisionScheme.parse("W2-A2-R16")]
        acc_activations_first = _train_under_scheme(w16, activations_first, w16_teacher, train, test, epochs)
        acc_weights_first = _train_under_scheme(w16, weights_first, w16_teacher, train, test, epochs)

        fp_accuracy = evaluate_accuracy(fp_model, test)
        return [
            ("FP reference", fp_accuracy),
            ("W2-A2 via W16 teacher (paper)", acc_with_w16_teacher),
            ("W2-A2 via FP teacher", acc_with_fp_teacher),
            ("activations-then-weights (paper order)", acc_activations_first),
            ("weights-then-activations", acc_weights_first),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_training_choices", ["Variant", "Accuracy (%)"], rows)

    accuracies = dict(rows)
    # Directional check only: every quantised variant trains to chance level
    # or better and does not exceed the FP reference (the ablation runs at a
    # deliberately small scale; Table V is the properly sized experiment).
    for name, acc in rows[1:]:
        assert acc >= 8.0
        assert acc <= accuracies["FP reference"] + 5.0
