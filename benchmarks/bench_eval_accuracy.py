"""Accuracy trajectory of the end-to-end SC-ViT (-> ACC_sc_vit.json).

The perf harness records how fast the packed engine is; this bench records
what the paper actually claims — that the SC softmax block preserves ViT
accuracy at practical output BSLs — as a machine-readable trajectory next
to the perf baselines:

* **accuracy vs BSL** — the trained model (shared fixture) is evaluated
  through the batched eval pipeline for each softmax output BSL ``By``,
* **scenario diversity** — at the default/full scales both the test and
  the train split are swept (generalisation gap under the circuit),
* **noise tolerance** — the same grid runs again with the bit-flip
  fault-injection knob enabled, measuring SC's graceful degradation.

All rows run through :class:`repro.eval_pipeline.EvalTask` on the sweep
runner, so ``REPRO_BENCH_WORKERS`` parallelises and ``REPRO_BENCH_CACHE``
resumes exactly like the other sweep benches.
"""

import numpy as np
from conftest import bench_cache, bench_scale, bench_workers, emit

from repro.eval_pipeline import EvalTask, eval_grid, run_eval_grid
from repro.training.trainer import evaluate_accuracy

#: Softmax output BSLs of the trajectory (the Table VI ``By`` axis).
BY_GRID = (4, 8, 16)

#: Bit-flip rates: fault-free, a realistic soft-error rate, heavy noise.
FLIP_PROBS = (0.0, 0.02, 0.25)


def test_eval_accuracy_trajectory(benchmark, trained_pipeline_result):
    result = trained_pipeline_result["result"]
    train = trained_pipeline_result["train"]
    test = trained_pipeline_result["test"]
    model = result.final_model
    scale = bench_scale()
    max_images = {"small": 64, "default": 192, "full": len(test)}[scale]
    split_names = ("test",) if scale == "small" else ("test", "train")

    task = EvalTask(
        model=model,
        splits={
            "test": (test.images, test.labels),
            "train": (train.images, train.labels),
        },
        calibration_images=test.images[:32],
        max_images=max_images,
    )
    configs = eval_grid(by_grid=BY_GRID, flip_probs=FLIP_PROBS, splits=split_names)

    def run():
        return run_eval_grid(task, configs, workers=bench_workers(), cache=bench_cache())

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    exact_accuracy = evaluate_accuracy(model, test.subset(max_images))
    rows = [
        (
            r.split,
            r.softmax_config.by,
            config["flip_prob"],
            round(r.accuracy, 2),
            r.num_images,
        )
        for config, r in zip(configs, results)
    ]
    emit(
        "ACC_sc_vit",
        ["Split", "By", "Flip prob", "Accuracy (%)", "Images"],
        rows,
        extra={
            "exact_model_accuracy": round(float(exact_accuracy), 2),
            "by_grid": list(BY_GRID),
            "flip_probs": list(FLIP_PROBS),
            "stats": run_eval_grid.last_run_stats.summary(),
        },
    )

    by_key = {(r.split, r.softmax_config.by, config["flip_prob"]): r.accuracy
              for config, r in zip(configs, results)}
    for split in split_names:
        clean = [by_key[(split, by, 0.0)] for by in BY_GRID]
        noisy = [by_key[(split, by, FLIP_PROBS[-1])] for by in BY_GRID]
        assert all(0.0 <= acc <= 100.0 for acc in clean + noisy)
        # Longer output streams must not collapse the trajectory: the finest
        # BSL stays within a band of the coarsest instead of degrading.
        assert clean[-1] >= clean[0] - 10.0
        # Heavy bit-flip noise cannot *help* on average — SC degrades
        # gracefully, but it does degrade.
        assert float(np.mean(noisy)) <= float(np.mean(clean)) + 5.0
