"""Compile-time + throughput harness for the accelerator-fabric simulator.

Measures the two costs that make :mod:`repro.fabric` usable as a modelling
tool rather than a demo:

* **compile** — the full cold cycle from a block schedule to a runnable
  model: deterministic place-and-route, loading the configuration
  bitstream into config space, and compiling the configured routing graph
  back into blocks (checksums + route verification included).  Also
  records the partial-reconfiguration cycle (swap one slot's family and
  reconfigure + recompile), which must be cheaper than a cold load in
  config *writes* — the reported ``reuse_frac`` is the fraction of live
  words the diff left untouched.
* **throughput** — executed rows/s of the compiled iterative-softmax tile
  on the packed SC engine.  The fabric adds dispatch, not arithmetic, so
  this gates the overhead of executing through the configured grid.

Results merge into ``benchmarks/results/BENCH_fabric.json`` per SC kernel
backend (schema 2, same shape as ``BENCH_sc_engine.json``): re-running one
backend never clobbers another's numbers, and the default backend is
mirrored into the schema-1 top-level keys.  ``python -m repro bench
--suite fabric --check-floor`` gates on the recorded floors.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_fabric.py
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # allow `python benchmarks/bench_fabric.py`
    sys.path.insert(0, str(_SRC))

import repro.blocks as blocks
from repro.evaluation.reporting import format_table
from repro.evaluation.vectors import attention_logit_vectors
from repro.fabric import Fabric, FabricSpec, place_and_route

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The measured design: the default 4x4 grid from
#: ``examples/specs/fabric_design_4x4.json``.
FABRIC = FabricSpec(name="bench-4x4")

#: Schedule under test — the paper's iterative softmax (CI-sized) plus a
#: Bernstein GELU, the same pairing the fabric smoke spec executes.
def _schedule():
    softmax = blocks.default_spec("softmax/iterative").with_updates(m=16, s1=4, s2=2)
    gelu = blocks.default_spec("gelu/bernstein").with_updates(bitstream_length=256)
    return [softmax, gelu]


COMPILE_REPEATS = 5
THROUGHPUT_ROWS = 64
THROUGHPUT_REPEATS = 3

#: Regression bounds recorded into the payload; ``repro bench --suite
#: fabric --check-floor`` fails when a measurement leaves them.  The
#: compile ceiling is ~50x the typical cold cycle (a few ms) so only a
#: real regression — not CI scheduler noise — trips it; the throughput
#: floor is far under the few-thousand rows/s the packed engine sustains
#: on the CI-sized softmax.  ``reuse_frac`` gates the partial-reconfig
#: contract itself: swapping one slot must leave most live words alone.
FLOORS = {
    "compile.cold_ms": {"max": 250.0},
    "compile.reuse_frac": {"min": 0.5},
    "throughput.softmax_rows_per_s": {"min": 50.0},
}


def host_metadata() -> dict:
    """CPU/library fingerprint stored with every run (regression triage)."""
    try:
        import numba

        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba": numba_version,
    }


def bench_compile() -> dict:
    """Best-of-N cold compile cycle + the partial-reconfiguration diff."""
    schedule = _schedule()
    cold_ms = []
    for _ in range(COMPILE_REPEATS):
        fabric = Fabric(FABRIC)
        start = time.perf_counter()
        placement = place_and_route(FABRIC, schedule, seed=0)
        fabric.load_bitstream(placement.bitstream())
        compiled = fabric.compile()
        cold_ms.append(1000.0 * (time.perf_counter() - start))
    resources = compiled.resource_counts()

    # Partial reconfiguration: swap only the GELU family and diff-load.
    fabric = Fabric(FABRIC)
    first = fabric.reconfigure(place_and_route(FABRIC, schedule, seed=0).bitstream())
    swapped_schedule = [schedule[0], blocks.default_spec("gelu/fsm")]
    start = time.perf_counter()
    swap = fabric.reconfigure(place_and_route(FABRIC, swapped_schedule, seed=0).bitstream())
    fabric.compile()
    swap_ms = 1000.0 * (time.perf_counter() - start)
    touched = swap["written"] + swap["cleared"]
    return {
        "schedule": [spec.to_dict() for spec in schedule],
        "cold_ms": float(min(cold_ms)),
        "cold_ms_all": [float(ms) for ms in cold_ms],
        "config_writes": int(first["written"]),
        "swap_ms": float(swap_ms),
        "swap_written": int(swap["written"]),
        "swap_skipped": int(swap["skipped"]),
        "swap_cleared": int(swap["cleared"]),
        "reuse_frac": float(swap["skipped"]) / float(swap["skipped"] + touched),
        "resources": resources,
    }


def bench_throughput() -> dict:
    """Executed rows/s of the compiled softmax tile, best of N passes."""
    schedule = _schedule()
    fabric = Fabric(FABRIC)
    fabric.load_bitstream(place_and_route(FABRIC, schedule, seed=0).bitstream())
    compiled = fabric.compile()
    softmax_spec = schedule[0]
    values = attention_logit_vectors(THROUGHPUT_ROWS, softmax_spec.m, seed=2024)
    compiled.evaluate_slot(0, values[:4])  # warm any lazy state out of the timing
    rates = []
    for _ in range(THROUGHPUT_REPEATS):
        start = time.perf_counter()
        compiled.evaluate_slot(0, values)
        rates.append(THROUGHPUT_ROWS / (time.perf_counter() - start))
    return {
        "rows": THROUGHPUT_ROWS,
        "m": int(softmax_spec.m),
        "softmax_rows_per_s": float(max(rates)),
        "rows_per_s_all": [float(rate) for rate in rates],
    }


def run_benchmarks() -> dict:
    from repro.sc.backends import active_backend

    payload = {
        "schema": 2,
        "fabric": FABRIC.to_dict(),
        "backend": active_backend().name,
        "compile": bench_compile(),
        "throughput": bench_throughput(),
        "host": host_metadata(),
        "floors": {metric: dict(bounds) for metric, bounds in FLOORS.items()},
    }
    return payload


def print_report(payload: dict) -> None:
    compile_section = payload["compile"]
    throughput = payload["throughput"]
    print(f"\n=== fabric harness ({payload['backend']} backend, 4x4 grid) ===")
    print(format_table(
        ["Stage", "Best (ms)", "Detail"],
        [
            (
                "cold place+route+compile",
                round(compile_section["cold_ms"], 2),
                f"{compile_section['config_writes']} config writes",
            ),
            (
                "partial reconfigure+compile",
                round(compile_section["swap_ms"], 2),
                f"{compile_section['swap_written']} written, "
                f"{compile_section['swap_skipped']} skipped "
                f"(reuse {compile_section['reuse_frac']:.0%})",
            ),
        ],
    ))
    print(
        f"throughput: compiled softmax (m={throughput['m']}) "
        f"{throughput['softmax_rows_per_s']:.1f} rows/s over {throughput['rows']} rows"
    )


def save_report(payload: dict) -> Path:
    """Merge one backend's run into the tracked results file.

    Same schema-2 shape as ``BENCH_sc_engine.json``: every backend's latest
    numbers live side by side under ``backends[<name>]`` and re-running one
    never clobbers the others; the numpy backend is also mirrored into the
    schema-1 top-level keys for older consumers.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_fabric.json"
    merged = {}
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            existing = {}
        if existing.get("schema") == 2:
            merged = existing
    backend_name = payload["backend"]
    backends = dict(merged.get("backends") or {})
    backends[backend_name] = {
        "host": payload.get("host", {}),
        "floors": payload.get("floors", {}),
        "compile": payload["compile"],
        "throughput": payload["throughput"],
    }
    merged.update({"schema": 2, "fabric": payload["fabric"], "backends": backends})
    if backend_name == "numpy" or "compile" not in merged:
        merged["compile"] = payload["compile"]
        merged["throughput"] = payload["throughput"]
        merged["floors"] = payload.get("floors", {})
        merged["host"] = payload.get("host", {})
    out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return out_path


# ---------------------------------------------------------------------------
# Pytest entry — `pytest benchmarks/bench_fabric.py` gates the floors
# ---------------------------------------------------------------------------


def test_perf_fabric():
    payload = run_benchmarks()
    print_report(payload)
    save_report(payload)
    compile_section = payload["compile"]
    assert compile_section["cold_ms"] <= FLOORS["compile.cold_ms"]["max"]
    assert compile_section["reuse_frac"] >= FLOORS["compile.reuse_frac"]["min"]
    assert (
        payload["throughput"]["softmax_rows_per_s"]
        >= FLOORS["throughput.softmax_rows_per_s"]["min"]
    )


if __name__ == "__main__":
    payload = run_benchmarks()
    print_report(payload)
    saved = save_report(payload)
    print(f"\nsaved {saved}")
    sys.exit(0)
