"""Fig. 2 — GELU transfer curves of the four implementation families.

The paper plots GELU as computed by (a) an FSM-based design, (b) a 4-term
Bernstein polynomial, (c) naive SI and (d) the proposed gate-assisted SI,
each at two bitstream lengths.  This bench regenerates the same curves over
the same input range (x in [-3, 0.5]) and reports, per design and BSL, the
mean absolute deviation from the exact GELU over that range — the quantity
the figure lets the reader eyeball.

Expected shape (matching the figure): the FSM design saturates at zero over
the negative range even at 1024 bits; the Bernstein unit fluctuates; naive
SI misses the negative dip entirely; gate-assisted SI tracks the quantised
GELU exactly, improving as the BSL grows.
"""

import numpy as np
from conftest import emit

from repro.blocks import build
from repro.nn.functional_math import gelu_exact

SWEEP = np.linspace(-3.0, 0.5, 141)


#: Region where GELU's negative dip lives; the figure's qualitative story is
#: about how each design behaves there.
DIP_REGION = (SWEEP > -1.8) & (SWEEP < -0.3)


def _fig2_rows():
    reference = gelu_exact(SWEEP)
    rows = []

    def add(design, bsl, out):
        rows.append(
            (
                design,
                bsl,
                float(np.mean(np.abs(out - reference))),
                float(np.mean(out[DIP_REGION])),
            )
        )

    # Every family goes through the same registry/protocol lifecycle:
    # stochastic parameters (BSL, seed, input scale) live in the spec and
    # evaluate(values) is uniform across designs.
    for bsl in (128, 1024):
        fsm = build("gelu/fsm", bitstream_length=bsl, seed=0, input_scale=4.0)
        add("FSM [9]", bsl, fsm.evaluate(SWEEP))

    for bsl in (128, 1024):
        unit = build("gelu/bernstein", num_terms=4, input_range=3.0, bitstream_length=bsl, seed=0)
        add("4-term Bernstein [18]", bsl, unit.evaluate(SWEEP))

    for bsl in (4, 8):
        naive = build("gelu/naive-si", output_length=bsl)
        add("Naive SI [5]", bsl, naive.evaluate(SWEEP))

    for bsl in (4, 8):
        block = build("gelu/si", output_length=bsl, calibration_samples=SWEEP)
        add("Gate-assisted SI (ours)", bsl, block.evaluate(SWEEP))

    return rows


def test_fig2_gelu_curves(benchmark):
    rows = benchmark(_fig2_rows)
    emit(
        "fig2_gelu_curves",
        ["Design", "BSL", "MAE on [-3, 0.5]", "mean output in dip region"],
        rows,
        extra={"sweep": SWEEP.tolist()},
    )
    by_design = {}
    for design, bsl, mae, dip_mean in rows:
        by_design.setdefault(design, []).append((bsl, mae, dip_mean))

    dip_reference = float(np.mean(gelu_exact(SWEEP)[DIP_REGION]))  # about -0.14
    assert dip_reference < -0.1

    # Fig. 2(a)/(c): the FSM and naive-SI outputs sit around zero in the dip
    # region (systematic error); (d): gate-assisted SI follows the dip.
    assert all(dip_mean > dip_reference / 2 for _, _, dip_mean in by_design["FSM [9]"])
    assert all(dip_mean > dip_reference / 2 for _, _, dip_mean in by_design["Naive SI [5]"])
    assert any(dip_mean < dip_reference / 2 for _, _, dip_mean in by_design["Gate-assisted SI (ours)"])

    # Ours at 8-bit BSL is the most accurate design in the comparison.
    ours_best = min(mae for _, mae, _ in by_design["Gate-assisted SI (ours)"])
    for design in ("FSM [9]", "4-term Bernstein [18]", "Naive SI [5]"):
        assert ours_best < min(mae for _, mae, _ in by_design[design])
