"""Fig. 7 — GELU block ADP and MAE across bitstream lengths.

The figure sweeps the Bernstein baselines over 128/256/1024-bit BSLs and the
gate-assisted SI block over 2/4/8-bit output BSLs, plotting ADP (left) and
MAE (right).  The bench regenerates both series.

Expected shape: the Bernstein ADP grows linearly with its BSL while its MAE
barely improves (the approximation error floor dominates); our ADP grows
with the output BSL while the MAE keeps falling, and the 8-bit point sits
below every Bernstein point on both axes simultaneously.

The sweep runs through :mod:`repro.runner` (the same task the CLI's
``gelu-sweep`` subcommand drives): ``REPRO_BENCH_WORKERS=N`` shards it
across processes, ``REPRO_BENCH_CACHE=dir`` reuses stored results; the
default is the serial in-process path with byte-identical output.
"""

from conftest import bench_cache, bench_workers, emit

from repro.runner.tasks import fig7_gelu_rows


def _fig7_series(samples):
    return fig7_gelu_rows(samples, workers=bench_workers(), cache=bench_cache())


def test_fig7_gelu_sweep(benchmark, gelu_test_vectors):
    rows = benchmark(_fig7_series, gelu_test_vectors)
    emit("fig7_gelu_sweep", ["Series", "BSL", "ADP (um2*ns)", "MAE"], rows)

    bernstein = [r for r in rows if "Bern" in r[0]]
    ours = [r for r in rows if "ours" in r[0]]

    # Bernstein ADP grows with BSL within each series.
    for terms in ("4-term", "5-term", "6-term"):
        series = [r for r in bernstein if r[0].startswith(terms)]
        adps = [r[2] for r in series]
        assert adps == sorted(adps)

    # The Bernstein MAE is approximation-limited: even 8x longer streams
    # improve it by far less than our block gains from 2b -> 8b.
    for terms in ("4-term", "5-term", "6-term"):
        series = sorted([r for r in bernstein if r[0].startswith(terms)], key=lambda r: r[1])
        assert series[-1][3] > 0.5 * series[0][3]

    ours_best = min(r[3] for r in ours)
    assert ours_best < min(r[3] for r in bernstein)
