"""Fig. 8 — design-space exploration of the softmax block (Bx = 2 and Bx = 4).

The paper sweeps the Table II parameters (2916 candidate designs per input
BSL), plots every design in the (ADP, MAE) plane and highlights the Pareto
front: 12 Pareto optima for Bx = 2 and 21 for Bx = 4, with ADP spanning
roughly two orders of magnitude and MAE one.

The bench runs the same-size grid through the circuit emulation and the
synthesis model, extracts the Pareto front and reports its size and the
spans of both axes.  Checked shape: the grid size matches (2916), the front
contains on the order of ten designs, and moving along the front trades at
least one order of magnitude of ADP against a clearly lower MAE.

Set ``REPRO_BENCH_SCALE=small`` to sweep a reduced grid when iterating,
``REPRO_BENCH_WORKERS=N`` to shard the sweep across N processes (0 = all
CPUs; results are bit-identical to the serial path) and
``REPRO_BENCH_CACHE=dir`` to resume interrupted sweeps from a result cache.
"""

from conftest import bench_cache, bench_scale, bench_workers, emit

from repro.core.dse import SoftmaxDesignSpace


def _explore(bx, logits, scale):
    if scale == "small":
        space = SoftmaxDesignSpace(
            bx=bx,
            test_vectors=logits[:64],
            by_choices=(4, 8, 16),
            iteration_choices=(2, 3),
            s1_choices=(8, 32, 128),
            s2_choices=(2, 8, 32),
            alpha_y_multipliers=(0.5, 1.0),
        )
    else:
        space = SoftmaxDesignSpace(bx=bx, test_vectors=logits[:100])
    points = space.explore(workers=bench_workers(), cache=bench_cache())
    pareto = space.pareto_points(points)
    return space, points, pareto


def _summarise(bx, space, points, pareto):
    feasible = [p for p in points if p.feasible]
    return (
        f"Bx={bx}",
        space.grid_size(),
        len(feasible),
        len(pareto),
        min(p.adp for p in pareto),
        max(p.adp for p in pareto),
        min(p.mae for p in pareto),
        max(p.mae for p in pareto),
    )


def test_fig8_dse_pareto(benchmark, softmax_test_vectors):
    scale = bench_scale()

    def run():
        results = {}
        for bx in (2, 4):
            results[bx] = _explore(bx, softmax_test_vectors, scale)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    summary_rows = []
    pareto_rows = []
    for bx, (space, points, pareto) in results.items():
        summary_rows.append(_summarise(bx, space, points, pareto))
        for point in pareto:
            pareto_rows.append((f"Bx={bx}", *point.as_row()))

    emit(
        "fig8_dse_summary",
        ["Design space", "Grid size", "Feasible", "Pareto optima", "ADP min", "ADP max", "MAE min", "MAE max"],
        summary_rows,
    )
    emit(
        "fig8_dse_pareto_front",
        ["Space", "By", "s1", "s2", "k", "Area (um2)", "Delay (ns)", "ADP", "MAE"],
        pareto_rows,
    )

    for bx, (space, points, pareto) in results.items():
        if scale != "small":
            assert space.grid_size() == 2916  # the paper's design-space size
        assert len(pareto) >= 5
        adps = [p.adp for p in pareto]
        maes = [p.mae for p in pareto]
        assert max(adps) / min(adps) > 10  # the front spans >1 order of magnitude in ADP
        assert max(maes) / min(maes) > 1.5  # ...and a real accuracy range
        # Pareto front is monotone: more ADP buys lower (or equal) MAE.
        ordered = sorted(pareto, key=lambda p: p.adp)
        assert all(b.mae <= a.mae + 1e-12 for a, b in zip(ordered, ordered[1:]))
