"""Perf regression harness for the packed-bitplane SC simulation engine.

Times the packed fast paths against faithful re-implementations of the seed
(one ``int8`` per bit, cycle-by-cycle) hot loops:

* stochastic multiply + decode (unipolar AND, bipolar XNOR),
* MUX scaled addition,
* stream encoding,
* LFSR m-sequence generation,
* FSM nonlinear-unit forward,
* bitonic sorting-network bit sort.

Results are printed as a table and persisted to
``benchmarks/results/BENCH_sc_engine.json`` with ops/sec for both paths so
future PRs can track the perf trajectory (compare the ``packed_ops_per_s``
column across commits; the legacy column only moves with numpy/hardware).

Run it directly (no pytest needed)::

    make bench
    # or
    PYTHONPATH=src python benchmarks/bench_perf_sc_engine.py

or through pytest, which additionally asserts the headline >= 10x speedup::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_sc_engine.py -q
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # allow `python benchmarks/bench_perf_sc_engine.py`
    sys.path.insert(0, str(_SRC))

from repro.sc.arithmetic import bipolar_multiply, mux_scaled_add, unipolar_multiply
from repro.sc.bitstream import StochasticStream
from repro.sc.fsm import FsmGeluUnit
from repro.sc.sng import LinearFeedbackShiftRegister
from repro.sc.sorting_network import BitonicSortingNetwork

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The acceptance configuration: a 64x64 value tensor at BSL 256.
VALUE_SHAPE = (64, 64)
BSL = 256

#: Regression floors recorded into the JSON payload: the CI perf job (and
#: ``python -m repro bench --check-floor``) fails when a fresh run's
#: speedup drops below these.  They are deliberately far under the ~40x
#: typically measured, so only a real regression (not scheduler noise on a
#: loaded CI runner) trips them.
SPEEDUP_FLOORS = {
    "unipolar_multiply_decode": 10.0,
    "bipolar_multiply_decode": 10.0,
}


# ---------------------------------------------------------------------------
# Legacy (seed) reference implementations: one int8 per bit, per-cycle loops.
# ---------------------------------------------------------------------------


def _legacy_validate(bits: np.ndarray) -> np.ndarray:
    """The seed StochasticStream constructor: isin scan + int8 cast."""
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise ValueError("bits must contain only 0s and 1s")
    return bits.astype(np.int8)


def legacy_unipolar_multiply_decode(a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
    bits = _legacy_validate(a_bits & b_bits)
    return bits.mean(axis=-1)


def legacy_bipolar_multiply_decode(a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
    bits = _legacy_validate((1 - (a_bits ^ b_bits)).astype(np.int8))
    return 2.0 * bits.mean(axis=-1) - 1.0


def legacy_mux_add(a_bits: np.ndarray, b_bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    select = rng.integers(0, 2, size=a_bits.shape).astype(np.int8)
    return _legacy_validate(np.where(select == 1, a_bits, b_bits).astype(np.int8))


def legacy_encode(values: np.ndarray, length: int, rng: np.random.Generator) -> np.ndarray:
    draws = rng.random(values.shape + (length,))
    return _legacy_validate((draws < values[..., None]).astype(np.int8))


def legacy_lfsr_sequence(width: int, length: int) -> np.ndarray:
    lfsr = LinearFeedbackShiftRegister(width)
    tap_mask = lfsr._tap_mask
    state = lfsr.state
    out = np.empty(length, dtype=np.int64)
    for i in range(length):
        lsb = state & 1
        state >>= 1
        if lsb:
            state ^= tap_mask
        out[i] = state
    return out


def legacy_fsm_forward(unit: FsmGeluUnit, stream: StochasticStream) -> np.ndarray:
    bits = stream.bits
    state = np.full(stream.value_shape, unit.num_states // 2, dtype=np.int64)
    out = np.empty_like(bits)
    for cycle in range(stream.length):
        in_bit = bits[..., cycle]
        out[..., cycle] = unit.output_rule(state, in_bit, cycle)
        state = np.clip(state + (2 * in_bit - 1), 0, unit.num_states - 1)
    return _legacy_validate(out)


def legacy_sort_bits(bsn: BitonicSortingNetwork, bits: np.ndarray) -> np.ndarray:
    work = np.zeros(bits.shape[:-1] + (bsn.padded_width,), dtype=np.int8)
    work[..., : bsn.width] = bits
    for stage in bsn._schedule:
        for hi, lo in stage:
            a = work[..., hi].copy()
            b = work[..., lo].copy()
            work[..., hi] = a | b
            work[..., lo] = a & b
    return work[..., : bsn.width]


# ---------------------------------------------------------------------------
# Timing scaffold
# ---------------------------------------------------------------------------


def _time_per_op(fn, min_seconds: float = 0.15, max_rounds: int = 200) -> float:
    """Best-effort seconds/op: warm up once, then average over repeat calls."""
    fn()  # warmup (fills caches, triggers lazy packing)
    rounds = 0
    elapsed = 0.0
    best = np.inf
    while elapsed < min_seconds and rounds < max_rounds:
        start = time.perf_counter()
        fn()
        delta = time.perf_counter() - start
        best = min(best, delta)
        elapsed += delta
        rounds += 1
    return best


def _entry(name: str, legacy_s: float, packed_s: float, note: str = "") -> dict:
    return {
        "name": name,
        "legacy_ops_per_s": 1.0 / legacy_s,
        "packed_ops_per_s": 1.0 / packed_s,
        "speedup": legacy_s / packed_s,
        "note": note,
    }


def run_benchmarks(value_shape=VALUE_SHAPE, bsl=BSL) -> dict:
    rng = np.random.default_rng(2024)
    uni_values = rng.random(value_shape)
    bi_values = rng.random(value_shape) * 2.0 - 1.0

    a_uni = StochasticStream.encode(uni_values, bsl, seed=1)
    b_uni = StochasticStream.encode(uni_values[::-1], bsl, seed=2)
    a_bi = StochasticStream.encode(bi_values, bsl, encoding="bipolar", seed=3)
    b_bi = StochasticStream.encode(-bi_values, bsl, encoding="bipolar", seed=4)
    for s in (a_uni, b_uni, a_bi, b_bi):
        s.packed, s.bits  # materialise both representations outside the timers

    a_bits, b_bits = a_uni.bits, b_uni.bits
    ab_bits, bb_bits = a_bi.bits, b_bi.bits

    entries = []

    # --- multiply + decode (the acceptance metric) ---------------------------
    legacy = _time_per_op(lambda: legacy_unipolar_multiply_decode(a_bits, b_bits))
    packed = _time_per_op(lambda: unipolar_multiply(a_uni, b_uni).decode())
    entries.append(_entry("unipolar_multiply_decode", legacy, packed, "AND + popcount decode"))

    legacy = _time_per_op(lambda: legacy_bipolar_multiply_decode(ab_bits, bb_bits))
    packed = _time_per_op(lambda: bipolar_multiply(a_bi, b_bi).decode())
    entries.append(_entry("bipolar_multiply_decode", legacy, packed, "XNOR + popcount decode"))

    # --- MUX scaled add ------------------------------------------------------
    rng_legacy = np.random.default_rng(7)
    rng_packed = np.random.default_rng(7)
    legacy = _time_per_op(lambda: legacy_mux_add(a_bits, b_bits, rng_legacy))
    packed = _time_per_op(lambda: mux_scaled_add(a_uni, b_uni, seed=rng_packed))
    entries.append(_entry("mux_scaled_add", legacy, packed, "select draw dominates both paths"))

    # --- encode --------------------------------------------------------------
    rng_legacy = np.random.default_rng(11)
    rng_packed = np.random.default_rng(11)
    legacy = _time_per_op(lambda: legacy_encode(uni_values, bsl, rng_legacy))
    packed = _time_per_op(lambda: StochasticStream.encode(uni_values, bsl, seed=rng_packed))
    entries.append(_entry("encode", legacy, packed, "Bernoulli draws dominate both paths"))

    # --- decode only ---------------------------------------------------------
    legacy = _time_per_op(lambda: a_bits.mean(axis=-1))
    packed = _time_per_op(lambda: a_uni.packed.popcount())
    entries.append(_entry("decode", legacy, packed, "int8 mean vs word popcount"))

    # --- LFSR sequence -------------------------------------------------------
    width, seq_len = 16, 4096
    lfsr = LinearFeedbackShiftRegister(width)
    lfsr.sequence(1)  # prime the cycle cache
    legacy = _time_per_op(lambda: legacy_lfsr_sequence(width, seq_len))
    packed = _time_per_op(lambda: lfsr.sequence(seq_len))
    entries.append(_entry("lfsr_sequence_4096", legacy, packed, "cached m-sequence gather"))

    # --- FSM forward ---------------------------------------------------------
    unit = FsmGeluUnit()
    fsm_stream = StochasticStream.encode(bi_values, bsl, encoding="bipolar", seed=5)
    fsm_stream.packed, fsm_stream.bits
    legacy = _time_per_op(lambda: legacy_fsm_forward(unit, fsm_stream))
    packed = _time_per_op(lambda: unit.process(fsm_stream))
    entries.append(_entry("fsm_gelu_forward", legacy, packed, "transition-table scan + vectorised rule"))

    # --- sorting network -----------------------------------------------------
    bsn = BitonicSortingNetwork(128)
    sort_bits = (rng.random((256, 128)) < 0.5).astype(np.int8)
    legacy = _time_per_op(lambda: legacy_sort_bits(bsn, sort_bits))
    packed = _time_per_op(lambda: bsn.sort_bits(sort_bits))
    entries.append(_entry("bsn_sort_bits_128", legacy, packed, "per-stage gather/scatter"))

    return {
        "value_shape": list(value_shape),
        "bitstream_length": bsl,
        "numpy_version": np.__version__,
        "floors": dict(SPEEDUP_FLOORS),
        "benchmarks": entries,
    }


def _print_report(payload: dict) -> None:
    print(f"\n=== packed SC engine vs legacy int8 path "
          f"({payload['value_shape']} values, BSL={payload['bitstream_length']}) ===")
    header = f"{'benchmark':<28} {'legacy ops/s':>14} {'packed ops/s':>14} {'speedup':>9}"
    print(header)
    print("-" * len(header))
    for row in payload["benchmarks"]:
        print(
            f"{row['name']:<28} {row['legacy_ops_per_s']:>14.1f} "
            f"{row['packed_ops_per_s']:>14.1f} {row['speedup']:>8.1f}x"
        )


def save_report(payload: dict) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_sc_engine.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out_path


# ---------------------------------------------------------------------------
# pytest entry point — asserts the acceptance speedup and bit-identity.
# ---------------------------------------------------------------------------


def test_perf_sc_engine():
    payload = run_benchmarks()
    _print_report(payload)
    save_report(payload)
    by_name = {row["name"]: row for row in payload["benchmarks"]}
    # Acceptance: the recorded floors (>= 10x for packed multiply+decode at
    # BSL=256 on 64x64 values) — the same check the CI perf job applies.
    for name, floor in payload["floors"].items():
        assert by_name[name]["speedup"] >= floor, f"{name} regressed below {floor}x"
    # The packed path must be bit-identical to the legacy ops, not just fast.
    a = StochasticStream.encode(np.random.default_rng(0).random(VALUE_SHAPE), BSL, seed=1)
    b = StochasticStream.encode(np.random.default_rng(1).random(VALUE_SHAPE), BSL, seed=2)
    assert np.array_equal(unipolar_multiply(a, b).bits, (a.bits & b.bits).astype(np.int8))


if __name__ == "__main__":
    report = run_benchmarks()
    _print_report(report)
    path = save_report(report)
    print(f"\nsaved {path}")