"""Perf regression harness for the packed-bitplane SC simulation engine.

Times the packed fast paths against faithful re-implementations of the seed
(one ``int8`` per bit, cycle-by-cycle) hot loops:

* stochastic multiply + decode (unipolar AND, bipolar XNOR, fused popcount),
* MUX scaled addition,
* stream encoding,
* LFSR m-sequence generation,
* FSM nonlinear-unit forward,
* bitonic sorting-network bit sort.

Each run measures ONE kernel backend (``numpy`` by default — see
:mod:`repro.sc.backends`) and merges its results into
``benchmarks/results/BENCH_sc_engine.json`` under ``backends[<name>]``
without clobbering the other backends' recorded numbers.  The default
backend is additionally mirrored at the top level in the schema-1 layout so
older tooling keeps working.  Every benchmark has a per-backend speedup
floor; ``python -m repro bench --check-floor`` (and the pytest entry) fails
when a fresh run drops below them.  Host metadata (CPU count, numpy/numba
versions) rides along so floor regressions are attributable across
machines.

Run it directly (no pytest needed)::

    make bench
    # or
    PYTHONPATH=src python benchmarks/bench_perf_sc_engine.py [--backend threaded]

or through pytest, which additionally asserts the recorded floors::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_sc_engine.py -q
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # allow `python benchmarks/bench_perf_sc_engine.py`
    sys.path.insert(0, str(_SRC))

from repro.sc.arithmetic import (
    bipolar_multiply,
    fused_multiply_decode,
    mux_scaled_add,
    unipolar_multiply,
)
from repro.sc.backends import active_backend, use_backend
from repro.sc.bitstream import StochasticStream
from repro.sc.fsm import FsmGeluUnit
from repro.sc.sng import LinearFeedbackShiftRegister
from repro.sc.sorting_network import BitonicSortingNetwork

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The acceptance configuration: a 64x64 value tensor at BSL 256.
VALUE_SHAPE = (64, 64)
BSL = 256

#: Backends this harness knows floors for (also the CI matrix).
BACKENDS = ("numpy", "threaded", "numba")
DEFAULT_BACKEND = "numpy"

#: Per-backend speedup floors recorded into the JSON payload: the CI perf
#: job (and ``python -m repro bench --check-floor``) fails when a fresh
#: run's speedup drops below these.  They are deliberately far under the
#: typically measured numbers, so only a real regression (not scheduler
#: noise on a loaded CI runner) trips them.  The RNG-bound kernels (mux,
#: encode) share the generator cost with the legacy path, so their floors
#: are low on every backend; the threaded backend's raw-word select draw
#: lifts the mux floor even on one core.
_BASE_FLOORS = {
    "unipolar_multiply_decode": 10.0,
    "bipolar_multiply_decode": 10.0,
    "mux_scaled_add": 1.2,
    "encode": 1.2,
    "decode": 2.5,
    "lfsr_sequence_4096": 8.0,
    "fsm_gelu_forward": 8.0,
    "bsn_sort_bits_128": 1.5,
}
SPEEDUP_FLOORS = {
    "numpy": dict(_BASE_FLOORS),
    "threaded": dict(_BASE_FLOORS, mux_scaled_add=2.5),
    "numba": dict(_BASE_FLOORS),
}


def host_metadata() -> dict:
    """CPU/library fingerprint stored with every run (regression triage)."""
    try:
        import numba

        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba": numba_version,
    }


# ---------------------------------------------------------------------------
# Legacy (seed) reference implementations: one int8 per bit, per-cycle loops.
# ---------------------------------------------------------------------------


def _legacy_validate(bits: np.ndarray) -> np.ndarray:
    """The seed StochasticStream constructor: isin scan + int8 cast."""
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise ValueError("bits must contain only 0s and 1s")
    return bits.astype(np.int8)


def legacy_unipolar_multiply_decode(a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
    bits = _legacy_validate(a_bits & b_bits)
    return bits.mean(axis=-1)


def legacy_bipolar_multiply_decode(a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
    bits = _legacy_validate((1 - (a_bits ^ b_bits)).astype(np.int8))
    return 2.0 * bits.mean(axis=-1) - 1.0


def legacy_mux_add(a_bits: np.ndarray, b_bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    select = rng.integers(0, 2, size=a_bits.shape).astype(np.int8)
    return _legacy_validate(np.where(select == 1, a_bits, b_bits).astype(np.int8))


def legacy_encode(values: np.ndarray, length: int, rng: np.random.Generator) -> np.ndarray:
    draws = rng.random(values.shape + (length,))
    return _legacy_validate((draws < values[..., None]).astype(np.int8))


def legacy_lfsr_sequence(width: int, length: int) -> np.ndarray:
    lfsr = LinearFeedbackShiftRegister(width)
    tap_mask = lfsr._tap_mask
    state = lfsr.state
    out = np.empty(length, dtype=np.int64)
    for i in range(length):
        lsb = state & 1
        state >>= 1
        if lsb:
            state ^= tap_mask
        out[i] = state
    return out


def legacy_fsm_forward(unit: FsmGeluUnit, stream: StochasticStream) -> np.ndarray:
    bits = stream.bits
    state = np.full(stream.value_shape, unit.num_states // 2, dtype=np.int64)
    out = np.empty_like(bits)
    for cycle in range(stream.length):
        in_bit = bits[..., cycle]
        out[..., cycle] = unit.output_rule(state, in_bit, cycle)
        state = np.clip(state + (2 * in_bit - 1), 0, unit.num_states - 1)
    return _legacy_validate(out)


def legacy_sort_bits(bsn: BitonicSortingNetwork, bits: np.ndarray) -> np.ndarray:
    work = np.zeros(bits.shape[:-1] + (bsn.padded_width,), dtype=np.int8)
    work[..., : bsn.width] = bits
    for stage in bsn._schedule:
        for hi, lo in stage:
            a = work[..., hi].copy()
            b = work[..., lo].copy()
            work[..., hi] = a | b
            work[..., lo] = a & b
    return work[..., : bsn.width]


# ---------------------------------------------------------------------------
# Timing scaffold
# ---------------------------------------------------------------------------


def _time_per_op(fn, min_seconds: float = 0.15, max_rounds: int = 200) -> float:
    """Best-effort seconds/op: warm up once, then average over repeat calls."""
    fn()  # warmup (fills caches, triggers lazy packing / JIT compilation)
    rounds = 0
    elapsed = 0.0
    best = np.inf
    while elapsed < min_seconds and rounds < max_rounds:
        start = time.perf_counter()
        fn()
        delta = time.perf_counter() - start
        best = min(best, delta)
        elapsed += delta
        rounds += 1
    return best


def _entry(name: str, legacy_s: float, packed_s: float, note: str = "") -> dict:
    return {
        "name": name,
        "legacy_ops_per_s": 1.0 / legacy_s,
        "packed_ops_per_s": 1.0 / packed_s,
        "speedup": legacy_s / packed_s,
        "note": note,
    }


def run_benchmarks(value_shape=VALUE_SHAPE, bsl=BSL, backend=None) -> dict:
    """Measure every kernel on one backend (``None`` = the active one).

    ``backend`` names a registered backend; unavailable ones (numba without
    numba installed) resolve to the numpy fallback with a warning, and the
    payload records the backend that actually ran.
    """
    with use_backend(backend):
        resolved = active_backend()
        payload = {
            "schema": 2,
            "value_shape": list(value_shape),
            "bitstream_length": bsl,
            "host": host_metadata(),
            "backend": resolved.name,
            "backend_info": resolved.describe(),
            "floors": dict(SPEEDUP_FLOORS.get(resolved.name, _BASE_FLOORS)),
            "benchmarks": _run_entries(value_shape, bsl),
        }
    return payload


def _run_entries(value_shape, bsl) -> list:
    rng = np.random.default_rng(2024)
    uni_values = rng.random(value_shape)
    bi_values = rng.random(value_shape) * 2.0 - 1.0

    a_uni = StochasticStream.encode(uni_values, bsl, seed=1)
    b_uni = StochasticStream.encode(uni_values[::-1], bsl, seed=2)
    a_bi = StochasticStream.encode(bi_values, bsl, encoding="bipolar", seed=3)
    b_bi = StochasticStream.encode(-bi_values, bsl, encoding="bipolar", seed=4)
    for s in (a_uni, b_uni, a_bi, b_bi):
        s.packed, s.bits  # materialise both representations outside the timers

    a_bits, b_bits = a_uni.bits, b_uni.bits
    ab_bits, bb_bits = a_bi.bits, b_bi.bits

    entries = []

    # --- multiply + decode (the acceptance metric) ---------------------------
    legacy = _time_per_op(lambda: legacy_unipolar_multiply_decode(a_bits, b_bits))
    packed = _time_per_op(lambda: fused_multiply_decode(a_uni, b_uni))
    entries.append(
        _entry("unipolar_multiply_decode", legacy, packed, "fused AND+popcount decode")
    )

    legacy = _time_per_op(lambda: legacy_bipolar_multiply_decode(ab_bits, bb_bits))
    packed = _time_per_op(lambda: fused_multiply_decode(a_bi, b_bi))
    entries.append(
        _entry("bipolar_multiply_decode", legacy, packed, "fused XNOR+popcount decode")
    )

    # --- MUX scaled add ------------------------------------------------------
    rng_legacy = np.random.default_rng(7)
    rng_packed = np.random.default_rng(7)
    legacy = _time_per_op(lambda: legacy_mux_add(a_bits, b_bits, rng_legacy))
    packed = _time_per_op(lambda: mux_scaled_add(a_uni, b_uni, seed=rng_packed))
    entries.append(_entry("mux_scaled_add", legacy, packed, "select draw dominates both paths"))

    # --- encode --------------------------------------------------------------
    rng_legacy = np.random.default_rng(11)
    rng_packed = np.random.default_rng(11)
    legacy = _time_per_op(lambda: legacy_encode(uni_values, bsl, rng_legacy))
    packed = _time_per_op(lambda: StochasticStream.encode(uni_values, bsl, seed=rng_packed))
    entries.append(_entry("encode", legacy, packed, "Bernoulli draws dominate both paths"))

    # --- decode only ---------------------------------------------------------
    legacy = _time_per_op(lambda: a_bits.mean(axis=-1))
    packed = _time_per_op(lambda: a_uni.packed.popcount())
    entries.append(_entry("decode", legacy, packed, "int8 mean vs word popcount"))

    # --- LFSR sequence -------------------------------------------------------
    width, seq_len = 16, 4096
    lfsr = LinearFeedbackShiftRegister(width)
    lfsr.sequence(1)  # prime the cycle cache
    legacy = _time_per_op(lambda: legacy_lfsr_sequence(width, seq_len))
    packed = _time_per_op(lambda: lfsr.sequence(seq_len))
    entries.append(_entry("lfsr_sequence_4096", legacy, packed, "cached m-sequence gather"))

    # --- FSM forward ---------------------------------------------------------
    unit = FsmGeluUnit()
    fsm_stream = StochasticStream.encode(bi_values, bsl, encoding="bipolar", seed=5)
    fsm_stream.packed, fsm_stream.bits
    legacy = _time_per_op(lambda: legacy_fsm_forward(unit, fsm_stream))
    packed = _time_per_op(lambda: unit.process(fsm_stream))
    entries.append(
        _entry("fsm_gelu_forward", legacy, packed, "byte-table scan + fused output bytes")
    )

    # --- sorting network -----------------------------------------------------
    bsn = BitonicSortingNetwork(128)
    sort_bits = (rng.random((256, 128)) < 0.5).astype(np.int8)
    legacy = _time_per_op(lambda: legacy_sort_bits(bsn, sort_bits))
    packed = _time_per_op(lambda: bsn.sort_bits(sort_bits))
    entries.append(_entry("bsn_sort_bits_128", legacy, packed, "per-stage gather/scatter"))

    return entries


def _print_report(payload: dict) -> None:
    host = payload.get("host", {})
    print(
        f"\n=== packed SC engine vs legacy int8 path "
        f"({payload['value_shape']} values, BSL={payload['bitstream_length']}, "
        f"backend={payload.get('backend', DEFAULT_BACKEND)}) ==="
    )
    if host:
        print(
            f"host: {host.get('cpu_count')} cpus, numpy {host.get('numpy')}, "
            f"numba {host.get('numba') or 'absent'}"
        )
    header = f"{'benchmark':<28} {'legacy ops/s':>14} {'packed ops/s':>14} {'speedup':>9}"
    print(header)
    print("-" * len(header))
    for row in payload["benchmarks"]:
        print(
            f"{row['name']:<28} {row['legacy_ops_per_s']:>14.1f} "
            f"{row['packed_ops_per_s']:>14.1f} {row['speedup']:>8.1f}x"
        )


def save_report(payload: dict) -> Path:
    """Merge one backend's run into the tracked results file.

    The file keeps every backend's latest numbers side by side under
    ``backends[<name>]``; re-running one backend never clobbers the others.
    The default backend is also mirrored into the schema-1 top-level keys
    (``benchmarks``/``floors``/``numpy_version``) for older consumers.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_sc_engine.json"
    merged = {}
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            existing = {}
        if existing.get("schema") == 2:
            merged = existing
    backend_name = payload.get("backend", DEFAULT_BACKEND)
    backends = dict(merged.get("backends") or {})
    backends[backend_name] = {
        "backend_info": payload.get("backend_info", {}),
        "host": payload.get("host", {}),
        "floors": payload.get("floors", {}),
        "benchmarks": payload["benchmarks"],
    }
    merged.update(
        {
            "schema": 2,
            "value_shape": payload["value_shape"],
            "bitstream_length": payload["bitstream_length"],
            "backends": backends,
        }
    )
    if backend_name == DEFAULT_BACKEND or "benchmarks" not in merged:
        merged["benchmarks"] = payload["benchmarks"]
        merged["floors"] = payload.get("floors", {})
        merged["numpy_version"] = payload.get("host", {}).get("numpy", np.__version__)
        merged["host"] = payload.get("host", {})
    out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return out_path


# ---------------------------------------------------------------------------
# pytest entry point — asserts the recorded floors and bit-identity.
# ---------------------------------------------------------------------------


def test_perf_sc_engine():
    payload = run_benchmarks()
    _print_report(payload)
    save_report(payload)
    by_name = {row["name"]: row for row in payload["benchmarks"]}
    # Acceptance: every kernel's recorded per-backend floor — the same check
    # the CI perf job applies via `repro bench --check-floor`.
    for name, floor in payload["floors"].items():
        assert by_name[name]["speedup"] >= floor, f"{name} regressed below {floor}x"
    # The packed path must be bit-identical to the legacy ops, not just fast.
    a = StochasticStream.encode(np.random.default_rng(0).random(VALUE_SHAPE), BSL, seed=1)
    b = StochasticStream.encode(np.random.default_rng(1).random(VALUE_SHAPE), BSL, seed=2)
    assert np.array_equal(unipolar_multiply(a, b).bits, (a.bits & b.bits).astype(np.int8))
    assert np.allclose(fused_multiply_decode(a, b), unipolar_multiply(a, b).decode())
    assert np.allclose(
        fused_multiply_decode(
            StochasticStream.encode(
                np.random.default_rng(2).random(VALUE_SHAPE) * 2 - 1,
                BSL,
                encoding="bipolar",
                seed=3,
            ),
            StochasticStream.encode(
                np.random.default_rng(3).random(VALUE_SHAPE) * 2 - 1,
                BSL,
                encoding="bipolar",
                seed=4,
            ),
        ),
        bipolar_multiply(
            StochasticStream.encode(
                np.random.default_rng(2).random(VALUE_SHAPE) * 2 - 1,
                BSL,
                encoding="bipolar",
                seed=3,
            ),
            StochasticStream.encode(
                np.random.default_rng(3).random(VALUE_SHAPE) * 2 - 1,
                BSL,
                encoding="bipolar",
                seed=4,
            ),
        ).decode(),
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="packed SC engine perf harness")
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="kernel backend to measure (default: the active one, normally numpy)",
    )
    cli_args = parser.parse_args()
    report = run_benchmarks(backend=cli_args.backend)
    _print_report(report)
    path = save_report(report)
    print(f"\nsaved {path}")
