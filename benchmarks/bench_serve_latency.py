"""Load generator + latency/throughput harness for ``repro.serve``.

Drives the in-process :class:`~repro.serve.InferenceService` (no socket in
the measurement path, so the numbers are the service's, not the kernel's)
in the two canonical load shapes:

* **closed loop** — ``CLIENTS`` concurrent clients, each submitting its
  shard of distinct images back-to-back.  Measures sustained throughput
  and the latency distribution when the offered load tracks capacity
  (every completion triggers the next request).
* **open loop** — requests arrive on a fixed schedule (deterministic
  exponential inter-arrivals at ``OPEN_RATE`` req/s) regardless of
  completions, the arrival model that actually exposes queueing delay:
  tail latency under open load is the honest serving metric.

Results go to ``benchmarks/results/BENCH_serve.json`` together with the
regression bounds: a sustained-throughput floor (the acceptance criterion:
>= 50 img/s on the tiny CI model) and p99 tail-latency ceilings.
``python -m repro bench --suite serve --check-floor`` gates on them.

The timed sections run with the prediction cache *disabled* — a load
generator that cycles over images would otherwise measure dictionary
lookups.  Cache behaviour and bit-identity against offline evaluation are
covered by ``--smoke``, the CI mode: 64 concurrent requests (fault-free
and under ``flip_prob`` fault injection with per-request seeds) must
reproduce :meth:`ScViTEvalPipeline.evaluate` per-image predictions bit for
bit, and a second pass must be 100% cache hits.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_serve_latency.py          # bench
    PYTHONPATH=src python benchmarks/bench_serve_latency.py --smoke  # CI gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # allow `python benchmarks/bench_serve_latency.py`
    sys.path.insert(0, str(_SRC))

from repro.blocks.specs import SoftmaxCircuitConfig
from repro.eval_pipeline import ScViTEvalPipeline
from repro.evaluation.reporting import format_table
from repro.evaluation.vectors import collect_softmax_inputs
from repro.nn.vit import CompactVisionTransformer, ViTConfig
from repro.serve import InferenceService, PredictionCache, build_engine
from repro.training.datasets import DatasetSplit, SyntheticImageDataset

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The tiny CI model every serve measurement runs on.  Deliberately the
#: same values as ``repro.cli._tiny_verify_fixture`` (the `repro verify`
#: self-checks) so numbers stay comparable across PRs — if you change one,
#: change both.
TINY_VIT = dict(
    image_size=8, patch_size=4, num_classes=4, embed_dim=16,
    num_layers=2, num_heads=2, norm="bn", seed=3,
)
TINY_SOFTMAX = dict(m=64, iterations=2, bx=4, alpha_x=1.0, by=8, alpha_y=0.03, s1=16, s2=4)
GELU_BSL = 4
FAULT_SEED = 11

#: Load shapes.
CLOSED_CLIENTS = 16
CLOSED_IMAGES = 256
OPEN_RATE = 200.0  # req/s offered
OPEN_IMAGES = 128
SMOKE_IMAGES = 64

#: Regression bounds recorded into the payload; ``repro bench --suite serve
#: --check-floor`` fails when a measurement leaves them.  The throughput
#: floor is the acceptance criterion (sustained >= 50 img/s on the tiny
#: model); it is far under the >1000 img/s typically measured so only a
#: real regression — not scheduler noise on a loaded CI runner — trips it.
#: The p99 ceilings bound the tail the batcher + queue are allowed to add.
FLOORS = {
    "closed_loop.throughput_img_per_s": {"min": 50.0},
    "closed_loop.p99_ms": {"max": 1000.0},
    "open_loop.p99_ms": {"max": 1000.0},
}


def _build(flip_prob: float = 0.0, workers: int = 2, cached: bool = False,
           max_batch: int = 16, max_wait_ms: float = 2.0, max_queue: int = 1024):
    """One service stack over the tiny model (service not yet started)."""
    model = CompactVisionTransformer(ViTConfig(**TINY_VIT))
    dataset = SyntheticImageDataset(num_classes=TINY_VIT["num_classes"],
                                    image_size=TINY_VIT["image_size"], seed=5)
    train, _ = dataset.splits(train_size=16, test_size=1)
    softmax = SoftmaxCircuitConfig(**TINY_SOFTMAX)
    calibration = collect_softmax_inputs(model, train.images[:4], max_rows=512)
    engine = build_engine(
        model, softmax, gelu_output_bsl=GELU_BSL, flip_prob=flip_prob,
        fault_seed=FAULT_SEED, calibration_logits=calibration, workers=workers,
    )
    service = InferenceService(
        engine, max_batch=max_batch, max_wait_ms=max_wait_ms, max_queue=max_queue,
        cache=PredictionCache() if cached else None,
    )
    return model, softmax, calibration, service


def _images(count: int) -> np.ndarray:
    """``count`` distinct tiny images (cycling would hand wins to a cache)."""
    dataset = SyntheticImageDataset(num_classes=TINY_VIT["num_classes"],
                                    image_size=TINY_VIT["image_size"], seed=7)
    _, test = dataset.splits(train_size=1, test_size=count)
    return test.images


def _latency_summary(latencies_ms) -> dict:
    latencies = np.asarray(latencies_ms, dtype=float)
    return {
        "p50_ms": float(np.percentile(latencies, 50)),
        "p95_ms": float(np.percentile(latencies, 95)),
        "p99_ms": float(np.percentile(latencies, 99)),
        "mean_ms": float(latencies.mean()),
        "max_ms": float(latencies.max()),
    }


# ---------------------------------------------------------------------------
# Load shapes
# ---------------------------------------------------------------------------


async def closed_loop(service: InferenceService, images: np.ndarray, clients: int) -> dict:
    """``clients`` concurrent closed-loop clients over disjoint image shards."""
    shards = np.array_split(np.arange(images.shape[0]), clients)
    latencies: list = []

    async def client(shard) -> None:
        for index in shard:
            result = await service.submit(images[index], index=int(index))
            latencies.append(result.latency_ms)

    start = time.perf_counter()
    await asyncio.gather(*[client(shard) for shard in shards if shard.size])
    elapsed = time.perf_counter() - start
    snapshot = service.stats_snapshot()
    return {
        "images": int(images.shape[0]),
        "clients": int(clients),
        "seconds": elapsed,
        "throughput_img_per_s": images.shape[0] / elapsed,
        "mean_batch_size": snapshot["batching"]["mean_batch_size"],
        "batch_histogram": snapshot["batching"]["histogram"],
        **_latency_summary(latencies),
    }


async def open_loop(service: InferenceService, images: np.ndarray, rate: float) -> dict:
    """Fixed-schedule arrivals at ``rate`` req/s (deterministic Poisson gaps)."""
    count = images.shape[0]
    gaps = np.random.default_rng(2024).exponential(1.0 / rate, size=count)
    arrivals = np.cumsum(gaps)
    loop = asyncio.get_running_loop()
    start = loop.time()
    results: list = []

    async def fire(position: int) -> None:
        delay = start + arrivals[position] - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        results.append(await service.submit(images[position], index=int(position)))

    wall_start = time.perf_counter()
    await asyncio.gather(*[fire(position) for position in range(count)])
    elapsed = time.perf_counter() - wall_start
    return {
        "images": int(count),
        "offered_rate_per_s": float(rate),
        "seconds": elapsed,
        "throughput_img_per_s": count / elapsed,
        **_latency_summary([result.latency_ms for result in results]),
    }


# ---------------------------------------------------------------------------
# Harness entry points (also loaded by `repro bench --suite serve`)
# ---------------------------------------------------------------------------


def run_benchmarks() -> dict:
    """Both load shapes on the tiny model, cache off; returns the payload."""

    async def measure() -> dict:
        _, _, _, service = _build(cached=False)
        async with service:
            closed = await closed_loop(service, _images(CLOSED_IMAGES), CLOSED_CLIENTS)
        _, _, _, service = _build(cached=False)
        async with service:
            opened = await open_loop(service, _images(OPEN_IMAGES), OPEN_RATE)
        return {"closed_loop": closed, "open_loop": opened}

    payload = asyncio.run(measure())
    payload["model"] = dict(TINY_VIT)
    payload["softmax"] = dict(TINY_SOFTMAX)
    payload["gelu_output_bsl"] = GELU_BSL
    payload["floors"] = {metric: dict(bounds) for metric, bounds in FLOORS.items()}
    return payload


def print_report(payload: dict) -> None:
    rows = []
    for shape in ("closed_loop", "open_loop"):
        section = payload[shape]
        rows.append((
            shape,
            section["images"],
            round(section["throughput_img_per_s"], 1),
            round(section["p50_ms"], 2),
            round(section["p95_ms"], 2),
            round(section["p99_ms"], 2),
        ))
    print("\n=== serve load generator (tiny CI model) ===")
    print(format_table(
        ["Shape", "Images", "img/s", "p50 (ms)", "p95 (ms)", "p99 (ms)"], rows
    ))
    closed = payload["closed_loop"]
    print(
        f"closed-loop batching: mean size {closed['mean_batch_size']:.1f}, "
        f"histogram {closed['batch_histogram']}"
    )


def save_report(payload: dict) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_serve.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


# ---------------------------------------------------------------------------
# Smoke mode — the CI acceptance gate
# ---------------------------------------------------------------------------


def run_smoke() -> int:
    """64 concurrent requests: bit-identity vs offline eval + warm-cache pass."""
    images = _images(SMOKE_IMAGES)
    labels = np.zeros(SMOKE_IMAGES, dtype=np.int64)  # accuracy is irrelevant here
    split = DatasetSplit(images=images, labels=labels)
    failures = 0

    for flip_prob in (0.0, 0.05):
        model, softmax, calibration, service = _build(
            flip_prob=flip_prob, cached=True, max_batch=8, max_wait_ms=4.0
        )
        offline = ScViTEvalPipeline(
            model, softmax, gelu_output_bsl=GELU_BSL, flip_prob=flip_prob,
            fault_seed=FAULT_SEED, calibration_logits=calibration,
        ).evaluate(split, batch_size=1)

        async def session():
            async with service:
                cold = await asyncio.gather(
                    *[service.submit(images[i], index=i) for i in range(SMOKE_IMAGES)]
                )
                warm = await asyncio.gather(
                    *[service.submit(images[i], index=i) for i in range(SMOKE_IMAGES)]
                )
                return cold, warm, service.stats_snapshot()

        cold, warm, snapshot = asyncio.run(session())
        served = np.array([result.prediction for result in cold], dtype=np.int64)
        if np.array_equal(served, offline.predictions):
            print(
                f"PASS smoke bit-identity (flip_prob={flip_prob}, {SMOKE_IMAGES} "
                f"concurrent requests, mean batch "
                f"{snapshot['batching']['mean_batch_size']:.1f})"
            )
        else:
            diverged = int(np.sum(served != offline.predictions))
            print(
                f"FAIL smoke: {diverged}/{SMOKE_IMAGES} served predictions differ "
                f"from offline eval at flip_prob={flip_prob}",
                file=sys.stderr,
            )
            failures += 1
        hits = sum(1 for result in warm if result.cached)
        if hits == SMOKE_IMAGES:
            print(f"PASS smoke warm pass 100% cache hits (flip_prob={flip_prob})")
        else:
            print(
                f"FAIL smoke: warm pass served {hits}/{SMOKE_IMAGES} from cache "
                f"at flip_prob={flip_prob}",
                file=sys.stderr,
            )
            failures += 1
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: concurrent bit-identity vs offline eval + warm-cache pass",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    payload = run_benchmarks()
    print_report(payload)
    saved = save_report(payload)
    print(f"\nsaved {saved}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
