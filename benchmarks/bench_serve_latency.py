"""Load generator + latency/throughput harness for ``repro.serve``.

Drives the in-process :class:`~repro.serve.InferenceService` (no socket in
the measurement path, so the numbers are the service's, not the kernel's)
in the two canonical load shapes:

* **closed loop** — ``CLIENTS`` concurrent clients, each submitting its
  shard of distinct images back-to-back.  Measures sustained throughput
  and the latency distribution when the offered load tracks capacity
  (every completion triggers the next request).
* **open loop** — requests arrive on a fixed schedule (deterministic
  exponential inter-arrivals at ``OPEN_RATE`` req/s) regardless of
  completions, the arrival model that actually exposes queueing delay:
  tail latency under open load is the honest serving metric.
* **sharded scaling** — the same multi-client closed loop against the
  :class:`~repro.serve.ShardedProcessEngine` at 1 and 2 shards, recording
  per-shard :class:`~repro.serve.ServiceStats` (merged across shards) and
  the ``scaling_2x`` throughput ratio.
* **trace replay** (``--replay``) — paced replay of a scenario workload
  through :func:`repro.scenarios.generate_workload`: any synthetic arrival
  process (``--arrival poisson|pareto|flashcrowd|diurnal``) expanded
  deterministically from ``--seed``, or a recorded ``serve/trace`` file
  (``--trace``).  ``--record-trace`` saves the generated stream for exact
  replay elsewhere.  An opt-in shape: it does not alter the gated payload
  or its floors.

Results go to ``benchmarks/results/BENCH_serve.json`` together with the
regression bounds: a sustained-throughput floor (the acceptance criterion:
>= 50 img/s on the tiny CI model), p99 tail-latency ceilings, and the
2-shard throughput-scaling floor (>= 1.5x over one shard; qualified with
``requires_cpus: 2`` because a single-CPU host cannot physically exhibit
process-level scaling — the measurement is recorded there but the floor
only gates where it can hold).  Per-engine copies of the payload land in
``BENCH_serve_thread.json`` / ``BENCH_serve_sharded.json`` for CI
artifact upload.  ``python -m repro bench --suite serve --check-floor``
gates on the floors.

The timed sections run with the prediction cache *disabled* — a load
generator that cycles over images would otherwise measure dictionary
lookups.  Cache behaviour and bit-identity against offline evaluation are
covered by ``--smoke``, the CI mode: 64 concurrent requests (fault-free
and under ``flip_prob`` fault injection with per-request seeds) must
reproduce :meth:`ScViTEvalPipeline.evaluate` per-image predictions bit for
bit, and a second pass must be 100% cache hits.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_serve_latency.py          # bench
    PYTHONPATH=src python benchmarks/bench_serve_latency.py --smoke  # CI gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # allow `python benchmarks/bench_serve_latency.py`
    sys.path.insert(0, str(_SRC))

from repro.blocks.specs import SoftmaxCircuitConfig
from repro.eval_pipeline import ScViTEvalPipeline
from repro.evaluation.reporting import format_table
from repro.evaluation.vectors import collect_softmax_inputs
from repro.nn.vit import CompactVisionTransformer, ViTConfig
from repro.serve import (
    InferenceService,
    PredictionCache,
    ShardedPredictionCache,
    build_engine,
    build_sharded_engine,
)
from repro.training.datasets import DatasetSplit, SyntheticImageDataset

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The tiny CI model every serve measurement runs on.  Deliberately the
#: same values as ``repro.cli._tiny_verify_fixture`` (the `repro verify`
#: self-checks) so numbers stay comparable across PRs — if you change one,
#: change both.
TINY_VIT = dict(
    image_size=8, patch_size=4, num_classes=4, embed_dim=16,
    num_layers=2, num_heads=2, norm="bn", seed=3,
)
TINY_SOFTMAX = dict(m=64, iterations=2, bx=4, alpha_x=1.0, by=8, alpha_y=0.03, s1=16, s2=4)
GELU_BSL = 4
FAULT_SEED = 11

#: Load shapes.
CLOSED_CLIENTS = 16
CLOSED_IMAGES = 256
OPEN_RATE = 200.0  # req/s offered
OPEN_IMAGES = 128
SMOKE_IMAGES = 64
#: The sharded closed loop is smaller: every request crosses a process
#: boundary (NPZ frame each way), so per-image cost is dominated by the
#: forward only once batches form.
SHARDED_CLIENTS = 8
SHARDED_IMAGES = 96

#: Regression bounds recorded into the payload; ``repro bench --suite serve
#: --check-floor`` fails when a measurement leaves them.  The throughput
#: floor is the acceptance criterion (sustained >= 50 img/s on the tiny
#: model); it is far under the >1000 img/s typically measured so only a
#: real regression — not scheduler noise on a loaded CI runner — trips it.
#: The p99 ceilings bound the tail the batcher + queue are allowed to add.
#: The sharded floors: the 2-shard closed loop must scale throughput by
#: >= 1.5x over one shard wherever the host has the cores to show it
#: (``requires_cpus`` — on a 1-CPU runner the ratio is recorded but the
#: floor is skipped), and its tail stays bounded even with IPC in the path.
FLOORS = {
    "closed_loop.throughput_img_per_s": {"min": 50.0},
    "closed_loop.p99_ms": {"max": 1000.0},
    "open_loop.p99_ms": {"max": 1000.0},
    "sharded.shards_2.p99_ms": {"max": 5000.0},
    "sharded.scaling_2x": {"min": 1.5, "requires_cpus": 2},
}


def _build(flip_prob: float = 0.0, workers: int = 2, cached: bool = False,
           max_batch: int = 16, max_wait_ms: float = 2.0, max_queue: int = 1024,
           engine: str = "thread", shards: int = 2):
    """One service stack over the tiny model (service not yet started).

    ``engine="thread"`` builds the in-process :class:`PipelineEngine` with
    ``workers`` threads; ``engine="process"`` builds a
    :class:`ShardedProcessEngine` with ``shards`` worker processes and a
    consistent-hash :class:`ShardedPredictionCache` when caching is on.
    """
    model = CompactVisionTransformer(ViTConfig(**TINY_VIT))
    dataset = SyntheticImageDataset(num_classes=TINY_VIT["num_classes"],
                                    image_size=TINY_VIT["image_size"], seed=5)
    train, _ = dataset.splits(train_size=16, test_size=1)
    softmax = SoftmaxCircuitConfig(**TINY_SOFTMAX)
    calibration = collect_softmax_inputs(model, train.images[:4], max_rows=512)
    if engine == "process":
        engine_obj = build_sharded_engine(
            model, softmax, gelu_output_bsl=GELU_BSL, flip_prob=flip_prob,
            fault_seed=FAULT_SEED, calibration_logits=calibration, shards=shards,
        )
        cache = ShardedPredictionCache(shards=shards) if cached else None
    else:
        engine_obj = build_engine(
            model, softmax, gelu_output_bsl=GELU_BSL, flip_prob=flip_prob,
            fault_seed=FAULT_SEED, calibration_logits=calibration, workers=workers,
        )
        cache = PredictionCache() if cached else None
    service = InferenceService(
        engine_obj, max_batch=max_batch, max_wait_ms=max_wait_ms, max_queue=max_queue,
        cache=cache,
    )
    return model, softmax, calibration, service


def _images(count: int) -> np.ndarray:
    """``count`` distinct tiny images (cycling would hand wins to a cache)."""
    dataset = SyntheticImageDataset(num_classes=TINY_VIT["num_classes"],
                                    image_size=TINY_VIT["image_size"], seed=7)
    _, test = dataset.splits(train_size=1, test_size=count)
    return test.images


def _latency_summary(latencies_ms) -> dict:
    latencies = np.asarray(latencies_ms, dtype=float)
    return {
        "p50_ms": float(np.percentile(latencies, 50)),
        "p95_ms": float(np.percentile(latencies, 95)),
        "p99_ms": float(np.percentile(latencies, 99)),
        "mean_ms": float(latencies.mean()),
        "max_ms": float(latencies.max()),
    }


# ---------------------------------------------------------------------------
# Load shapes
# ---------------------------------------------------------------------------


async def closed_loop(service: InferenceService, images: np.ndarray, clients: int) -> dict:
    """``clients`` concurrent closed-loop clients over disjoint image shards."""
    shards = np.array_split(np.arange(images.shape[0]), clients)
    latencies: list = []

    async def client(shard) -> None:
        for index in shard:
            result = await service.submit(images[index], index=int(index))
            latencies.append(result.latency_ms)

    start = time.perf_counter()
    await asyncio.gather(*[client(shard) for shard in shards if shard.size])
    elapsed = time.perf_counter() - start
    snapshot = service.stats_snapshot()
    return {
        "images": int(images.shape[0]),
        "clients": int(clients),
        "seconds": elapsed,
        "throughput_img_per_s": images.shape[0] / elapsed,
        "mean_batch_size": snapshot["batching"]["mean_batch_size"],
        "batch_histogram": snapshot["batching"]["histogram"],
        **_latency_summary(latencies),
    }


async def open_loop(service: InferenceService, images: np.ndarray, rate: float) -> dict:
    """Fixed-schedule arrivals at ``rate`` req/s (deterministic Poisson gaps)."""
    count = images.shape[0]
    gaps = np.random.default_rng(2024).exponential(1.0 / rate, size=count)
    arrivals = np.cumsum(gaps)
    loop = asyncio.get_running_loop()
    start = loop.time()
    results: list = []

    async def fire(position: int) -> None:
        delay = start + arrivals[position] - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        results.append(await service.submit(images[position], index=int(position)))

    wall_start = time.perf_counter()
    await asyncio.gather(*[fire(position) for position in range(count)])
    elapsed = time.perf_counter() - wall_start
    return {
        "images": int(count),
        "offered_rate_per_s": float(rate),
        "seconds": elapsed,
        "throughput_img_per_s": count / elapsed,
        **_latency_summary([result.latency_ms for result in results]),
    }


async def sharded_scaling() -> dict:
    """Multi-client closed loop at 1 and 2 process shards.

    Each shard count gets a fresh engine and disjoint-shard clients; the
    section records the per-shard :class:`~repro.serve.ServiceStats`
    snapshots (and their merge) straight from
    :meth:`ShardedProcessEngine.stats_snapshot`, plus the ``scaling_2x``
    throughput ratio the floor gates on.
    """
    section: dict = {}
    images = _images(SHARDED_IMAGES)
    for shards in (1, 2):
        _, _, _, service = _build(cached=False, engine="process", shards=shards)
        async with service:
            run = await closed_loop(service, images, SHARDED_CLIENTS)
            engine_snapshot = service.engine.stats_snapshot()
        run["per_shard"] = engine_snapshot["per_shard"]
        run["merged"] = engine_snapshot["merged"]
        run["lifecycle"] = engine_snapshot["lifecycle"]
        section[f"shards_{shards}"] = run
    section["scaling_2x"] = (
        section["shards_2"]["throughput_img_per_s"]
        / section["shards_1"]["throughput_img_per_s"]
    )
    return section


async def replay_loop(service: InferenceService, images: np.ndarray, workload) -> dict:
    """Paced replay of a :class:`repro.scenarios.Workload` request stream.

    Like :func:`open_loop` but the schedule and per-request image choice
    come from the workload (recorded or generated), so any arrival shape
    the scenario layer can describe is measurable here too.
    """
    loop = asyncio.get_running_loop()
    start = loop.time()
    results: list = []

    async def fire(position: int) -> None:
        delay = start + float(workload.arrivals_s[position]) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        pool_index = int(workload.image_indices[position]) % images.shape[0]
        results.append(await service.submit(images[pool_index], index=pool_index))

    wall_start = time.perf_counter()
    await asyncio.gather(*[fire(position) for position in range(len(workload))])
    elapsed = time.perf_counter() - wall_start
    return {
        "requests": int(len(workload)),
        "trace_duration_s": float(workload.duration_s),
        "seconds": elapsed,
        "throughput_img_per_s": len(workload) / elapsed,
        **_latency_summary([result.latency_ms for result in results]),
    }


def run_replay(args) -> int:
    """The ``--replay`` entry point: one paced run over a scenario workload."""
    from repro.scenarios import WorkloadSpec, generate_workload, load_trace, save_trace, workload_digest

    if args.trace is not None:
        workload = load_trace(args.trace)
        source = f"trace {args.trace}"
    else:
        spec = WorkloadSpec(
            arrival=args.arrival, requests=args.requests, rate=args.rate,
            seed=args.seed, image_pool=REPLAY_POOL,
        )
        workload = generate_workload(spec)
        source = f"{args.arrival} (seed {args.seed})"
    if args.record_trace is not None:
        saved = save_trace(args.record_trace, workload)
        print(f"recorded trace {saved} ({len(workload)} requests)")

    async def measure() -> dict:
        _, _, _, service = _build(cached=False)
        async with service:
            return await replay_loop(service, _images(REPLAY_POOL), workload)

    section = asyncio.run(measure())
    section["source"] = source
    section["workload_digest"] = workload_digest(workload)
    print(f"\n=== trace replay: {source} ===")
    print(format_table(
        ["Requests", "Trace (s)", "Wall (s)", "img/s", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        [(
            section["requests"],
            round(section["trace_duration_s"], 2),
            round(section["seconds"], 2),
            round(section["throughput_img_per_s"], 1),
            round(section["p50_ms"], 2),
            round(section["p95_ms"], 2),
            round(section["p99_ms"], 2),
        )],
    ))
    print(f"workload digest {section['workload_digest'][:16]}… (byte-stable for a fixed seed)")
    if args.out is not None:
        Path(args.out).write_text(json.dumps(section, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
    return 0


#: Image-pool size the replay shape cycles over (indices come from the
#: workload, so a pool — unlike the bench shapes' distinct-image sets —
#: is the honest model: traces revisit images).
REPLAY_POOL = 64


# ---------------------------------------------------------------------------
# Harness entry points (also loaded by `repro bench --suite serve`)
# ---------------------------------------------------------------------------


def run_benchmarks() -> dict:
    """All load shapes on the tiny model, cache off; returns the payload."""

    async def measure() -> dict:
        _, _, _, service = _build(cached=False)
        async with service:
            closed = await closed_loop(service, _images(CLOSED_IMAGES), CLOSED_CLIENTS)
        _, _, _, service = _build(cached=False)
        async with service:
            opened = await open_loop(service, _images(OPEN_IMAGES), OPEN_RATE)
        sharded = await sharded_scaling()
        return {"closed_loop": closed, "open_loop": opened, "sharded": sharded}

    payload = asyncio.run(measure())
    payload["model"] = dict(TINY_VIT)
    payload["softmax"] = dict(TINY_SOFTMAX)
    payload["gelu_output_bsl"] = GELU_BSL
    payload["host"] = {"cpu_count": os.cpu_count()}
    payload["floors"] = {metric: dict(bounds) for metric, bounds in FLOORS.items()}
    return payload


def print_report(payload: dict) -> None:
    rows = []
    sections = [("closed_loop", payload["closed_loop"]), ("open_loop", payload["open_loop"])]
    sharded = payload.get("sharded", {})
    sections += [(name, sharded[name]) for name in ("shards_1", "shards_2") if name in sharded]
    for shape, section in sections:
        rows.append((
            shape,
            section["images"],
            round(section["throughput_img_per_s"], 1),
            round(section["p50_ms"], 2),
            round(section["p95_ms"], 2),
            round(section["p99_ms"], 2),
        ))
    print("\n=== serve load generator (tiny CI model) ===")
    print(format_table(
        ["Shape", "Images", "img/s", "p50 (ms)", "p95 (ms)", "p99 (ms)"], rows
    ))
    closed = payload["closed_loop"]
    print(
        f"closed-loop batching: mean size {closed['mean_batch_size']:.1f}, "
        f"histogram {closed['batch_histogram']}"
    )
    if "scaling_2x" in sharded:
        cpus = payload.get("host", {}).get("cpu_count")
        print(
            f"sharded scaling: 2 shards / 1 shard throughput = "
            f"{sharded['scaling_2x']:.2f}x on {cpus} CPU(s)"
        )


def save_report(payload: dict) -> Path:
    """Write the combined payload plus per-engine copies for CI artifacts.

    ``BENCH_serve.json`` is the canonical gated file; the thread-only and
    sharded-only views carry the same floors restricted to their sections,
    so each CI engine job uploads a payload whose floors all refer to
    measurements it actually made.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_serve.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    views = {
        "BENCH_serve_thread.json": ("closed_loop", "open_loop"),
        "BENCH_serve_sharded.json": ("sharded",),
    }
    shared = {key: payload[key] for key in ("model", "softmax", "gelu_output_bsl", "host")
              if key in payload}
    for name, keys in views.items():
        view = dict(shared)
        for key in keys:
            if key in payload:
                view[key] = payload[key]
        view["floors"] = {
            metric: dict(bounds)
            for metric, bounds in payload.get("floors", {}).items()
            if metric.split(".", 1)[0] in keys
        }
        (RESULTS_DIR / name).write_text(json.dumps(view, indent=2, sort_keys=True))
    return path


# ---------------------------------------------------------------------------
# Smoke mode — the CI acceptance gate
# ---------------------------------------------------------------------------


def run_smoke(engine: str = "thread") -> int:
    """64 concurrent requests: bit-identity vs offline eval + warm-cache pass.

    ``engine="process"`` runs the same gate through a 2-shard
    :class:`ShardedProcessEngine` — the serve invariant must survive the
    process boundary and consistent-hash cache routing unchanged.
    """
    images = _images(SMOKE_IMAGES)
    labels = np.zeros(SMOKE_IMAGES, dtype=np.int64)  # accuracy is irrelevant here
    split = DatasetSplit(images=images, labels=labels)
    failures = 0

    for flip_prob in (0.0, 0.05):
        model, softmax, calibration, service = _build(
            flip_prob=flip_prob, cached=True, max_batch=8, max_wait_ms=4.0,
            engine=engine, shards=2,
        )
        offline = ScViTEvalPipeline(
            model, softmax, gelu_output_bsl=GELU_BSL, flip_prob=flip_prob,
            fault_seed=FAULT_SEED, calibration_logits=calibration,
        ).evaluate(split, batch_size=1)

        async def session():
            async with service:
                cold = await asyncio.gather(
                    *[service.submit(images[i], index=i) for i in range(SMOKE_IMAGES)]
                )
                warm = await asyncio.gather(
                    *[service.submit(images[i], index=i) for i in range(SMOKE_IMAGES)]
                )
                return cold, warm, service.stats_snapshot()

        cold, warm, snapshot = asyncio.run(session())
        served = np.array([result.prediction for result in cold], dtype=np.int64)
        if np.array_equal(served, offline.predictions):
            print(
                f"PASS smoke bit-identity (engine={engine}, flip_prob={flip_prob}, "
                f"{SMOKE_IMAGES} concurrent requests, mean batch "
                f"{snapshot['batching']['mean_batch_size']:.1f})"
            )
        else:
            diverged = int(np.sum(served != offline.predictions))
            print(
                f"FAIL smoke: {diverged}/{SMOKE_IMAGES} served predictions differ "
                f"from offline eval at engine={engine}, flip_prob={flip_prob}",
                file=sys.stderr,
            )
            failures += 1
        hits = sum(1 for result in warm if result.cached)
        if hits == SMOKE_IMAGES:
            print(f"PASS smoke warm pass 100% cache hits (engine={engine}, flip_prob={flip_prob})")
        else:
            print(
                f"FAIL smoke: warm pass served {hits}/{SMOKE_IMAGES} from cache "
                f"at engine={engine}, flip_prob={flip_prob}",
                file=sys.stderr,
            )
            failures += 1
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: concurrent bit-identity vs offline eval + warm-cache pass",
    )
    parser.add_argument(
        "--engine", choices=["thread", "process", "both"], default="thread",
        help="engine family the smoke gate drives (process = 2 shards); "
             "'both' runs the gate once per family",
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="trace-replay shape: pace requests per a scenario workload instead of the bench shapes",
    )
    parser.add_argument(
        "--arrival", choices=["poisson", "pareto", "flashcrowd", "diurnal"],
        default="poisson", help="synthetic arrival process for --replay",
    )
    parser.add_argument("--requests", type=int, default=256, help="replay request count")
    parser.add_argument("--rate", type=float, default=200.0, help="replay mean offered rate (req/s)")
    parser.add_argument("--seed", type=int, default=2024, help="replay workload seed")
    parser.add_argument(
        "--trace", type=Path, default=None,
        help="replay a recorded serve/trace JSON file instead of generating",
    )
    parser.add_argument(
        "--record-trace", type=Path, default=None,
        help="save the replayed workload as a serve/trace file",
    )
    parser.add_argument("--out", type=Path, default=None, help="write the replay section as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        engines = ["thread", "process"] if args.engine == "both" else [args.engine]
        return max(run_smoke(engine=engine) for engine in engines)
    if args.replay:
        return run_replay(args)
    payload = run_benchmarks()
    print_report(payload)
    saved = save_report(payload)
    print(f"\nsaved {saved}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
