"""Table I — capability matrix of published SC designs vs ASCEND.

A documentation table in the paper; regenerated here from the per-family
capability metadata of the :mod:`repro.blocks` registry, so the claims it
encodes (only ASCEND supports ViT-class nonlinearities in a deterministic
end-to-end SC flow) are backed by the registered, buildable block families
rather than prose.
"""

from conftest import emit

from repro.blocks import capability_matrix


def test_table1_capability_matrix(benchmark):
    rows = benchmark(capability_matrix)
    table = [
        (row.design, row.supported_model, row.encoding_format, ", ".join(row.supported_functions), row.implementation_method)
        for row in rows
    ]
    emit(
        "table1_capability_matrix",
        ["SC design", "Supported model", "Encoding format", "Supported functions", "Implementation method"],
        table,
    )
    # The structural claims of Table I.
    ascend = rows[-1]
    assert ascend.supported_model == "ViT"
    assert ascend.supports("gelu") and ascend.supports("softmax")
    assert all(not row.supports("gelu") for row in rows[:-1])
