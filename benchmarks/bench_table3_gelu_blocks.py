"""Table III — area / delay / ADP / MAE of the GELU blocks.

Rows: the Bernstein-polynomial baseline with 4/5/6 terms at a 1024-bit BSL,
and the gate-assisted SI block at 2/4/8-bit output BSLs.  Every design is
costed by the same analytical synthesis flow and its error is measured on
the same GELU operand distribution.

Paper numbers for reference (TSMC 28 nm): Bernstein 4/5/6-term ADP =
4769/6254/7506 um^2*ns with MAE 0.0548/0.0413/0.0355; ours 2/4/8-bit ADP =
342/710/1420 um^2*ns with MAE 0.0410/0.0252/0.0155.  The claims checked here
are the relative ones: ours at 8 bits cuts ADP by >= 2x against every
Bernstein variant while also cutting MAE, and both metrics improve
monotonically along each family.
"""

import numpy as np
from conftest import emit

from repro.core.gelu_si import GeluSIBlock
from repro.hw.synthesis import synthesize
from repro.nn.functional_math import gelu_exact
from repro.sc.bernstein import BernsteinPolynomialUnit

BERNSTEIN_BSL = 1024
BERNSTEIN_INPUT_RANGE = 3.0


def _table3_rows(samples):
    reference = gelu_exact(samples)
    rows = []
    for terms in (4, 5, 6):
        unit = BernsteinPolynomialUnit(gelu_exact, num_terms=terms, input_range=BERNSTEIN_INPUT_RANGE)
        report = synthesize(unit.build_hardware(BERNSTEIN_BSL))
        out = unit.evaluate(samples[:2000], BERNSTEIN_BSL, seed=0)
        mae = float(np.mean(np.abs(out - reference[:2000])))
        rows.append((f"Bernstein {terms}-term poly [18]", report.area_um2, report.delay_ns, report.adp, mae))
    for bsl in (2, 4, 8):
        block = GeluSIBlock(output_length=bsl, calibration_samples=samples)
        report = synthesize(block.build_hardware())
        mae = float(np.mean(np.abs(block.evaluate(samples) - reference)))
        rows.append((f"Ours {bsl}b BSL", report.area_um2, report.delay_ns, report.adp, mae))
    return rows


def test_table3_gelu_blocks(benchmark, gelu_test_vectors):
    rows = benchmark(_table3_rows, gelu_test_vectors)
    emit("table3_gelu_blocks", ["Design", "Area (um2)", "Delay (ns)", "ADP (um2*ns)", "MAE"], rows)

    bernstein = rows[:3]
    ours = {2: rows[3], 4: rows[4], 8: rows[5]}

    # ADP and MAE improve monotonically with the output BSL for our block...
    assert ours[2][3] < ours[4][3] < ours[8][3]
    assert ours[2][4] > ours[4][4] > ours[8][4]
    # ...and the Bernstein approximation error shrinks with the term count.
    assert bernstein[0][4] >= bernstein[2][4]

    # Headline claims: the 8-bit gate-assisted SI block reduces ADP against
    # every Bernstein variant while also reducing MAE.
    for _, _, _, adp, mae in bernstein:
        assert adp / ours[8][3] > 2.0
        assert (mae - ours[8][4]) / mae > 0.25
