"""Table IV — area / delay / ADP / MAE of the softmax blocks (m = 64).

Rows: the FSM + binary-unit baseline of [17] at 128/256/1024-bit BSLs, and
the iterative approximate softmax circuit with Bx = 4 at By = 4/8/16.  Test
vectors are attention-logit rows sampled from the overall distribution, the
paper's methodology.

Paper numbers for reference: FSM ADP = 4.14e6/8.28e6/3.31e7 um^2*ns at MAE
0.108/0.103/0.099; ours ADP = 6.81e5/2.62e6/1.42e7 at MAE 0.106/0.0766/0.0427.
Claims checked: our MAE falls monotonically with By, the By = 8 block cuts
both MAE and ADP against the 1024-bit FSM design, and the FSM design's MAE
stays roughly flat while its ADP grows linearly with the BSL.

The rows are produced by :class:`repro.runner.tasks.Table4Task` through the
sweep runner (shared with ``python -m repro tables``):
``REPRO_BENCH_WORKERS=N`` parallelises the six rows,
``REPRO_BENCH_CACHE=dir`` reuses stored results; the default serial path is
byte-identical to the historical bench.
"""

from conftest import bench_cache, bench_workers, emit

from repro.runner.tasks import table4_rows

M = 64
BX = 4
S1, S2, ITERATIONS = 32, 8, 3


def _table4_rows(logits):
    return table4_rows(
        logits,
        workers=bench_workers(),
        cache=bench_cache(),
        m=M,
        bx=BX,
        s1=S1,
        s2=S2,
        iterations=ITERATIONS,
    )


def test_table4_softmax_blocks(benchmark, softmax_test_vectors):
    rows = benchmark(_table4_rows, softmax_test_vectors)
    emit("table4_softmax_blocks", ["Design", "Area (um2)", "Delay (ns)", "ADP (um2*ns)", "MAE"], rows)

    fsm = rows[:3]
    ours = {4: rows[3], 8: rows[4], 16: rows[5]}

    # FSM: area constant, delay (and ADP) grow linearly with the BSL, MAE
    # stays roughly flat — longer streams cannot remove the systematic error.
    assert fsm[2][1] < 1.2 * fsm[0][1]
    assert fsm[2][3] > 5 * fsm[0][3]
    assert fsm[2][4] > 0.5 * fsm[0][4]

    # Ours: MAE falls monotonically with By, ADP grows.
    assert ours[4][4] > ours[8][4] > ours[16][4]
    assert ours[4][3] < ours[8][3] < ours[16][3]

    # Headline: By = 8 improves both ADP and MAE against the 1024-bit FSM design.
    assert fsm[2][3] / ours[8][3] > 1.5
    assert ours[8][4] < fsm[2][4]
