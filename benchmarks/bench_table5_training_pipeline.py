"""Table V — accuracy of the two-stage SC-friendly training pipeline.

Rows (per dataset): the FP LN-ViT reference, the baseline low-precision
BN-ViT (direct one-shot W2-A2-R16 quantisation with KD), then the ASCEND
pipeline: + progressive quantisation, + approximate softmax (no fine-tune),
+ approximate-softmax-aware fine-tuning.

Substitutions relative to the paper (documented in DESIGN.md): CIFAR-10/100
are replaced by the synthetic 10-/100-class datasets and the compact ViT is
scaled down so the numpy substrate can train it in minutes; stage lengths
are scaled accordingly.  The claims checked are therefore the *relative*
ones: progressive quantisation recovers a large part of the FP accuracy and
beats direct quantisation, and the approximate-softmax-aware fine-tuning
recovers (at least part of) the drop caused by swapping in the approximate
softmax.

``REPRO_BENCH_SCALE=small`` runs a toy version; ``full`` uses a deeper model
and longer schedules.
"""

from conftest import bench_scale, emit

from repro.nn.vit import ViTConfig
from repro.training.datasets import synthetic_cifar10, synthetic_cifar100
from repro.training.pipeline import AscendTrainingPipeline, PipelineConfig, train_baseline_low_precision

SIZES = {
    "small": dict(train=512, test=256, layers=3, dim=32, fp=3, prog=2, ft=1),
    "default": dict(train=1536, test=512, layers=4, dim=48, fp=10, prog=6, ft=3),
    "full": dict(train=8192, test=2048, layers=7, dim=64, fp=40, prog=25, ft=10),
}


def _run_dataset(name, train, test, sizes):
    vit = ViTConfig(
        image_size=16,
        patch_size=4,
        embed_dim=sizes["dim"],
        num_layers=sizes["layers"],
        num_heads=4,
        num_classes=int(train.labels.max()) + 1,
        norm="bn",
        seed=0,
    )
    config = PipelineConfig(
        vit=vit,
        fp_epochs=sizes["fp"],
        progressive_epochs=sizes["prog"],
        finetune_epochs=sizes["ft"],
        batch_size=128,
        learning_rate=1e-3,
    )
    pipeline = AscendTrainingPipeline(train, test, config)
    result = pipeline.run()
    baseline = train_baseline_low_precision(train, test, config, teacher=pipeline._ln_model)
    accuracies = {
        "FP LN-ViT": result.accuracy_of("fp_ln_vit"),
        "Baseline low-precision BN-ViT": baseline.accuracy,
        "BN-ViT + progressive quant": result.accuracy_of("progressive_W2-A2-R16"),
        "BN-ViT + progressive quant + appr": result.accuracy_of("approximate_softmax"),
        "BN-ViT + progressive quant + appr-aware ft": result.accuracy_of("approx_aware_finetune"),
    }
    return name, accuracies


def test_table5_training_pipeline(benchmark):
    sizes = SIZES[bench_scale()]

    def run():
        results = []
        train10, test10 = synthetic_cifar10(train_size=sizes["train"], test_size=sizes["test"])
        results.append(_run_dataset("Synthetic-10", train10, test10, sizes))
        train100, test100 = synthetic_cifar100(train_size=sizes["train"], test_size=sizes["test"])
        results.append(_run_dataset("Synthetic-100", train100, test100, sizes))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    row_names = [
        "FP LN-ViT",
        "Baseline low-precision BN-ViT",
        "BN-ViT + progressive quant",
        "BN-ViT + progressive quant + appr",
        "BN-ViT + progressive quant + appr-aware ft",
    ]
    table = []
    columns = {name: acc for name, acc in results}
    for row in row_names:
        table.append((row,) + tuple(round(columns[col][row], 2) for col in columns))
    emit("table5_training_pipeline", ["Model"] + list(columns), table)

    for dataset, acc in results:
        num_classes = 10 if dataset == "Synthetic-10" else 100
        chance = 100.0 / num_classes
        # Every row is a valid accuracy and nothing beats the FP reference by
        # more than noise.
        assert all(0.0 <= value <= 100.0 for value in acc.values())
        if bench_scale() == "small":
            # The small scale is a smoke run: the schedules are too short for
            # any model to learn, so only the sanity bounds above apply.
            continue
        if num_classes > 10:
            # The 100-class variant needs the `full` schedule (and far more
            # samples per class) before the comparison is meaningful; at the
            # default scale only a sanity bound is enforced.
            assert acc["FP LN-ViT"] >= chance
            continue
        # The FP model clearly learns the 10-class task.
        assert acc["FP LN-ViT"] > 3 * chance
        # Progressive quantisation produces a usable low-precision model:
        # well above chance and competitive with direct quantisation (the
        # paper's 30-point collapse of the direct baseline does not reproduce
        # on the synthetic substitute; see EXPERIMENTS.md).
        assert acc["BN-ViT + progressive quant"] > 2 * chance
        assert acc["BN-ViT + progressive quant"] >= acc["Baseline low-precision BN-ViT"] - 12.0
        # Approximate-softmax-aware fine-tuning does not lose accuracy
        # relative to dropping the approximation in untrained.
        assert (
            acc["BN-ViT + progressive quant + appr-aware ft"]
            >= acc["BN-ViT + progressive quant + appr"] - 3.0
        )
