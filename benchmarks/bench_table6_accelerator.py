"""Table VI — accelerator-level area and accuracy across softmax configurations.

The paper selects four softmax-block configurations [By, s1, s2, k] along the
Pareto front, instantiates k parallel blocks in the accelerator and reports
the softmax area, the total accelerator area and the resulting CIFAR-10/100
accuracy.  The recommendation ([8, 32, 8, 3]) is the smallest configuration
whose accuracy stays above the 90% band.

This bench reproduces the structure: the four configurations are evaluated
for (a) softmax-block area and total accelerator area through the hardware
model sized for the paper's 7-layer/4-head ViT, and (b) accuracy by running
the trained SC-friendly ViT (shared fixture) with the softmax circuit
emulated bit-accurately inside every attention head.

Expected shape: the softmax block is a small fraction of the accelerator for
the smallest configuration and grows by more than an order of magnitude
towards the largest one, while accuracy improves only modestly — which is
exactly why the intermediate configuration is the recommended one.
"""

import numpy as np
from conftest import bench_cache, bench_scale, bench_workers, emit

from repro.core.accelerator import AcceleratorConfig, ViTArchitecture, recommend_configuration
from repro.runner.runner import ParallelSweepRunner
from repro.runner.tasks import Table6Task

#: The four Table VI configurations: [By, s1, s2, k].
CONFIGURATIONS = ((4, 128, 2, 2), (8, 32, 8, 3), (16, 128, 16, 4), (32, 128, 16, 4))


def test_table6_accelerator(benchmark, trained_pipeline_result):
    result = trained_pipeline_result["result"]
    test = trained_pipeline_result["test"]
    model = result.final_model
    max_images = {"small": 64, "default": 256, "full": len(test)}[bench_scale()]

    def run():
        # The per-configuration evaluation (hardware model + bit-accurate
        # SC-ViT inference) runs through the sweep runner; the cache keys
        # digest the trained weights, so results survive across bench runs
        # but never alias across retrainings.
        task = Table6Task(
            model=model,
            images=test.images,
            labels=test.labels,
            calibration_images=test.images[:32],
            max_images=max_images,
        )
        runner = ParallelSweepRunner(task, workers=bench_workers(), cache=bench_cache())
        configs = [{"by": by, "s1": s1, "s2": s2, "k": k} for by, s1, s2, k in CONFIGURATIONS]
        outcomes = runner.run(configs)

        rows = []
        accuracies = []
        accel_configs = []
        for (by, s1, s2, k), config, outcome in zip(CONFIGURATIONS, configs, outcomes):
            accel_configs.append(
                AcceleratorConfig(architecture=ViTArchitecture(), softmax=task.softmax_config(config))
            )
            accuracies.append(outcome["accuracy"])
            rows.append(
                (
                    f"[{by}, {s1}, {s2}, {k}]",
                    outcome["block_area"],
                    outcome["total"],
                    round(100 * outcome["softmax_fraction"], 2),
                    round(outcome["accuracy"], 2),
                )
            )
        recommended = recommend_configuration(accel_configs, accuracies, accuracy_floor=np.median(accuracies))
        return rows, recommended

    rows, recommended = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table6_accelerator",
        ["[By, s1, s2, k]", "Softmax area (um2)", "Accelerator area (um2)", "Softmax share (%)", "Accuracy (%)"],
        rows,
        extra={"recommended_index": recommended, "recommended_config": rows[recommended][0]},
    )

    softmax_areas = [row[1] for row in rows]
    totals = [row[2] for row in rows]
    fractions = [row[3] for row in rows]

    # Softmax block area grows by more than an order of magnitude across the
    # Pareto configurations, dragging the total accelerator area with it.
    assert softmax_areas == sorted(softmax_areas)
    assert softmax_areas[-1] / softmax_areas[0] > 10
    assert totals == sorted(totals)
    # The smallest configuration keeps softmax a minor cost; the largest does not.
    assert fractions[0] < 15.0
    assert fractions[-1] > 30.0
    # The recommended configuration is never the most expensive one.
    assert recommended < len(rows) - 1
