"""Shared fixtures and helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it prints rows
shaped like the paper's artefact (so the output can be compared side by side
with EXPERIMENTS.md) and stores a JSON copy under ``benchmarks/results/``.

Scale knobs: the training-based benches (Table V, Table VI, the training
ablations) read ``REPRO_BENCH_SCALE`` from the environment:

* ``small``  — quick smoke versions (a couple of minutes in total),
* ``default`` — the sizes used for the numbers recorded in EXPERIMENTS.md,
* ``full``   — closer to the paper's training budget (slow; hours).
"""

import os
from pathlib import Path

import pytest

from repro.evaluation.reporting import format_table, save_json_report

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if scale not in ("small", "default", "full"):
        raise ValueError(f"unknown REPRO_BENCH_SCALE={scale!r}")
    return scale


def bench_workers() -> int:
    """Worker processes for the sweep-based benches (REPRO_BENCH_WORKERS).

    Defaults to 1 — the serial in-process path, byte-identical to the
    historical bench behaviour.  Any other value shards the sweep across
    processes through :class:`repro.runner.ParallelSweepRunner` (0 = all
    CPUs); results are bit-identical either way.
    """
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def bench_cache():
    """Optional on-disk result cache for the sweep benches (REPRO_BENCH_CACHE).

    Unset by default so benches keep timing real evaluations.  Point it at
    a directory to resume interrupted full-grid sweeps or share results
    with ``python -m repro`` runs.
    """
    path = os.environ.get("REPRO_BENCH_CACHE")
    if not path:
        return None
    from repro.runner.cache import ResultCache

    return ResultCache(path)


def emit(name: str, headers, rows, extra=None) -> None:
    """Print a table and persist it as JSON under benchmarks/results/."""
    print(f"\n=== {name} ===")
    print(format_table(headers, rows))
    payload = {"headers": list(headers), "rows": [list(r) for r in rows]}
    if extra:
        payload.update(extra)
    save_json_report(RESULTS_DIR / f"{name}.json", payload)


@pytest.fixture(scope="session")
def gelu_test_vectors():
    """GELU operand samples (the paper collects them from the ViT layers)."""
    from repro.evaluation.vectors import gelu_input_vectors

    return gelu_input_vectors(8000, seed=2024)


@pytest.fixture(scope="session")
def softmax_test_vectors():
    """Attention-logit rows with m = 64, as used for Table IV / Fig. 8."""
    from repro.evaluation.vectors import attention_logit_vectors

    return attention_logit_vectors(200, 64, seed=2024)


@pytest.fixture(scope="session")
def trained_pipeline_result():
    """A trained SC-friendly ViT shared by the accelerator-level benches."""
    from repro.nn.vit import ViTConfig
    from repro.training.datasets import synthetic_cifar10
    from repro.training.pipeline import AscendTrainingPipeline, PipelineConfig

    scale = bench_scale()
    sizes = {
        "small": dict(train=512, test=256, layers=3, dim=32, fp=3, prog=2, ft=1),
        "default": dict(train=1024, test=384, layers=3, dim=48, fp=8, prog=5, ft=2),
        "full": dict(train=8192, test=2048, layers=7, dim=64, fp=30, prog=20, ft=8),
    }[scale]
    train, test = synthetic_cifar10(train_size=sizes["train"], test_size=sizes["test"])
    vit = ViTConfig(
        image_size=16,
        patch_size=4,
        embed_dim=sizes["dim"],
        num_layers=sizes["layers"],
        num_heads=4,
        num_classes=10,
        norm="bn",
        seed=0,
    )
    config = PipelineConfig(
        vit=vit,
        fp_epochs=sizes["fp"],
        progressive_epochs=sizes["prog"],
        finetune_epochs=sizes["ft"],
        batch_size=128,
        learning_rate=1e-3,
    )
    pipeline = AscendTrainingPipeline(train, test, config)
    result = pipeline.run(include_ln_reference=False)
    return {"result": result, "train": train, "test": test, "config": config}
