"""Scenario: configuring the end-to-end accelerator (Table VI / Fig. 3).

Given a trained SC-friendly ViT (trained here quickly, or loaded from the
checkpoint written by ``train_sc_friendly_vit.py``), the script walks the
accelerator-level trade-off of Table VI:

1. for each softmax configuration [By, s1, s2, k] along the Pareto front it
   reports the softmax block area, the full accelerator area and the share
   of the accelerator spent on softmax,
2. it evaluates the trained model with the softmax circuit emulated
   bit-accurately inside every attention head to get the accuracy column,
3. it applies the paper's recommendation rule (smallest area meeting the
   accuracy band) and prints the chosen configuration.

Run with:  python examples/accelerator_configuration.py [--quick]
"""

import argparse
from pathlib import Path

import numpy as np

from repro.core import (
    AcceleratorConfig,
    AscendAccelerator,
    ScViTEvaluator,
    SoftmaxCircuitConfig,
    ViTArchitecture,
    calibrate_alpha_y,
    recommend_configuration,
)
from repro.nn.serialization import load_model
from repro.nn.vit import CompactVisionTransformer, ViTConfig
from repro.training.datasets import synthetic_cifar10
from repro.training.pipeline import AscendTrainingPipeline, PipelineConfig

CHECKPOINT = Path(__file__).parent / "sc_friendly_vit.npz"
CONFIGURATIONS = ((4, 128, 2, 2), (8, 32, 8, 3), (16, 128, 16, 4), (32, 128, 16, 4))


def obtain_model(quick: bool):
    """Load the example checkpoint if present, otherwise train a small model."""
    vit = ViTConfig(image_size=16, patch_size=4, embed_dim=48, num_layers=4, num_heads=4, num_classes=10, norm="bn")
    train, test = synthetic_cifar10(train_size=512 if quick else 1536, test_size=384)
    if CHECKPOINT.exists():
        from repro.nn.quantization import PrecisionScheme

        model = CompactVisionTransformer(vit)
        model.apply_precision(PrecisionScheme.parse("W2-A2-R16"))
        model.set_softmax_mode("iterative", 3)
        try:
            load_model(CHECKPOINT, model, strict=False)
            print(f"loaded checkpoint {CHECKPOINT}")
            return model, test
        except Exception as error:  # pragma: no cover - depends on local files
            print(f"could not load checkpoint ({error}); training instead")
    config = PipelineConfig(
        vit=vit,
        fp_epochs=3 if quick else 8,
        progressive_epochs=2 if quick else 5,
        finetune_epochs=1 if quick else 2,
        learning_rate=1e-3,
    )
    result = AscendTrainingPipeline(train, test, config).run(include_ln_reference=False)
    return result.final_model, test


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use smoke-test sizes")
    parser.add_argument("--max-images", type=int, default=256, help="test images per accuracy evaluation")
    args = parser.parse_args()

    model, test = obtain_model(args.quick)

    rows = []
    accel_configs = []
    accuracies = []
    for by, s1, s2, k in CONFIGURATIONS:
        softmax = SoftmaxCircuitConfig(
            m=64, iterations=k, bx=4, alpha_x=2.0, by=by, alpha_y=calibrate_alpha_y(by, 64), s1=s1, s2=s2
        )
        accel_config = AcceleratorConfig(architecture=ViTArchitecture(), softmax=softmax)
        accelerator = AscendAccelerator(accel_config)
        breakdown = accelerator.area_breakdown()
        evaluator = ScViTEvaluator(model, softmax, calibration_images=test.images[:32])
        accuracy = evaluator.evaluate(test, max_images=min(args.max_images, len(test))).accuracy

        accel_configs.append(accel_config)
        accuracies.append(accuracy)
        rows.append((f"[{by}, {s1}, {s2}, {k}]", accelerator.softmax_block_report().area_um2,
                     breakdown["total"], 100 * breakdown["softmax_fraction"], accuracy))

    print("\nTable VI — accelerator-level evaluation:")
    print(f"{'[By, s1, s2, k]':18s} {'softmax um^2':>14s} {'accel um^2':>14s} {'softmax %':>10s} {'accuracy %':>10s}")
    for name, block_area, total, fraction, accuracy in rows:
        print(f"{name:18s} {block_area:14.3g} {total:14.3g} {fraction:10.2f} {accuracy:10.2f}")

    floor = float(np.median(accuracies))
    index = recommend_configuration(accel_configs, accuracies, accuracy_floor=floor)
    print(f"\nrecommended configuration (accuracy floor {floor:.1f}%): {rows[index][0]}")


if __name__ == "__main__":
    main()
