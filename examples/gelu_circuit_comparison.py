"""Scenario: choosing a GELU circuit for an SC accelerator (Fig. 2 / Table III).

A hardware designer wants a GELU unit for an end-to-end SC ViT accelerator
and compares the three published families against ASCEND's gate-assisted SI
on the operand distribution of a real (trained or untrained) compact ViT:

* FSM-based unit — saturates at zero over the negative range,
* Bernstein-polynomial unit — approximation error + random fluctuation,
* naive selective interconnect — monotone envelope only,
* gate-assisted SI — deterministic, exact up to the output grid.

The script prints the Fig. 2-style error summary over the plotted range and
the Table III-style cost/error table, then emits the transfer curves as CSV
so they can be plotted with any tool.

Run with:  python examples/gelu_circuit_comparison.py
"""

import csv
from pathlib import Path

import numpy as np

from repro.blocks import build
from repro.evaluation import gelu_input_vectors
from repro.nn.functional_math import gelu_exact

OUTPUT_CSV = Path(__file__).parent / "gelu_transfer_curves.csv"


def transfer_curves(sweep):
    """Compute every design's transfer curve over ``sweep`` (Fig. 2).

    Every family is built through the :mod:`repro.blocks` registry and
    evaluated through the uniform ``evaluate(values)`` protocol — the
    stochastic lifecycle parameters (BSL, seed, input scale) live in the
    block's spec instead of per-call arguments.
    """
    curves = {"input": sweep, "exact_gelu": gelu_exact(sweep)}
    for bsl in (128, 1024):
        fsm = build("gelu/fsm", bitstream_length=bsl, seed=0, input_scale=4.0)
        curves[f"fsm_{bsl}b"] = fsm.evaluate(sweep)
    for bsl in (128, 1024):
        bernstein = build("gelu/bernstein", num_terms=4, input_range=3.0, bitstream_length=bsl, seed=0)
        curves[f"bernstein4_{bsl}b"] = bernstein.evaluate(sweep)
    for bsl in (4, 8):
        naive = build("gelu/naive-si", output_length=bsl)
        curves[f"naive_si_{bsl}b"] = naive.evaluate(sweep)
    for bsl in (4, 8):
        ours = build("gelu/si", output_length=bsl, calibration_samples=sweep)
        curves[f"gate_assisted_si_{bsl}b"] = ours.evaluate(sweep)
    return curves


def cost_error_table(samples):
    """Table III: synthesis cost and MAE on the ViT operand distribution."""
    reference = gelu_exact(samples)
    rows = []
    for terms in (4, 5, 6):
        unit = build("gelu/bernstein", num_terms=terms, input_range=3.0, bitstream_length=1024, seed=terms)
        cost = unit.hardware_summary()
        mae = np.mean(np.abs(unit.evaluate(samples[:2000]) - reference[:2000]))
        rows.append((f"Bernstein {terms}-term @1024b", cost["area_um2"], cost["delay_ns"], cost["adp"], mae))
    for bsl in (2, 4, 8):
        block = build("gelu/si", output_length=bsl, calibration_samples=samples)
        cost = block.hardware_summary()
        mae = np.mean(np.abs(block.evaluate(samples) - reference))
        rows.append((f"Gate-assisted SI {bsl}b", cost["area_um2"], cost["delay_ns"], cost["adp"], mae))
    return rows


def main():
    sweep = np.linspace(-3.0, 0.5, 141)
    curves = transfer_curves(sweep)
    reference = curves["exact_gelu"]
    print("Fig. 2 — mean |error| against exact GELU on x in [-3, 0.5]:")
    for name, values in curves.items():
        if name in ("input", "exact_gelu"):
            continue
        print(f"  {name:24s} {np.mean(np.abs(values - reference)):.4f}")

    with OUTPUT_CSV.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(curves))
        for idx in range(len(sweep)):
            writer.writerow([f"{curves[c][idx]:.6f}" for c in curves])
    print(f"\ntransfer curves written to {OUTPUT_CSV}")

    samples = gelu_input_vectors(8000, seed=3)
    print("\nTable III — cost and error on the ViT GELU operand distribution:")
    print(f"{'design':28s} {'area um^2':>10s} {'delay ns':>9s} {'ADP':>10s} {'MAE':>8s}")
    for name, area, delay, adp, mae in cost_error_table(samples):
        print(f"{name:28s} {area:10.1f} {delay:9.3f} {adp:10.1f} {mae:8.4f}")


if __name__ == "__main__":
    main()
