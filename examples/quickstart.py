"""Quickstart: the ASCEND building blocks in five minutes.

Walks through the public API bottom-up:

1. thermometer-coded stochastic computing (encode, multiply, add, re-scale),
2. the gate-assisted SI GELU block (Fig. 4) and its hardware cost,
3. the iterative approximate softmax — algorithm, circuit, and cost,
4. a peek at the accelerator-level area breakdown.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    AscendAccelerator,
    GeluSIBlock,
    IterativeSoftmax,
    IterativeSoftmaxCircuit,
    SoftmaxCircuitConfig,
    TernaryGeluBlock,
    calibrate_alpha_x,
    calibrate_alpha_y,
)
from repro.evaluation import attention_logit_vectors, gelu_input_vectors
from repro.hw import synthesize
from repro.nn.functional_math import gelu_exact, softmax_exact
from repro.sc import ThermometerStream, bsn_add, rescale, thermometer_multiply


def section(title):
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}")


def demo_thermometer_sc():
    section("1. Deterministic SC with thermometer bitstreams")
    a = ThermometerStream.encode(np.array([0.75, -0.5]), length=8, scale=0.25)
    b = ThermometerStream.encode(np.array([0.5, 0.5]), length=8, scale=0.25)
    product = thermometer_multiply(a, b)
    total = bsn_add([a, b])
    shortened = rescale(total, 4)
    print("a          =", a.decode())
    print("b          =", b.decode())
    print("a * b      =", product.decode(), f"(exact, {product.length}-bit stream)")
    print("a + b      =", total.decode(), f"(exact, BSN over {total.length} bits)")
    print("re-scaled  =", shortened.decode(), f"({shortened.length}-bit stream, scale x4)")


def demo_gelu_block():
    section("2. Gate-assisted SI GELU (Section IV-A)")
    ternary = TernaryGeluBlock()
    sweep = np.linspace(-3, 3, 9)
    print("ternary GELU levels over a [-3, 3] sweep:", ternary.process(
        ThermometerStream.encode(sweep, ternary.input_length, ternary.input_scale)
    ).signed_levels())

    samples = gelu_input_vectors(4000, seed=0)
    for bsl in (2, 4, 8):
        block = GeluSIBlock(output_length=bsl, calibration_samples=samples)
        report = synthesize(block.build_hardware())
        mae = np.mean(np.abs(block.evaluate(samples) - gelu_exact(samples)))
        print(
            f"  {bsl}b BSL: area={report.area_um2:8.1f} um^2  delay={report.delay_ns:5.3f} ns  "
            f"ADP={report.adp:8.1f}  MAE={mae:.4f}"
        )


def demo_softmax():
    section("3. Iterative approximate softmax (Section IV-B)")
    logits = attention_logit_vectors(64, 64, seed=1)
    algorithm = IterativeSoftmax(iterations=3)
    print("float recurrence MAE vs exact softmax (k=3):", round(algorithm.error_vs_exact(logits), 5))

    config = SoftmaxCircuitConfig(
        m=64,
        iterations=3,
        bx=4,
        alpha_x=calibrate_alpha_x(logits, 4),
        by=8,
        alpha_y=calibrate_alpha_y(8, 64),
        s1=32,
        s2=8,
    )
    circuit = IterativeSoftmaxCircuit(config)
    report = synthesize(circuit.build_hardware())
    print(f"circuit {config.describe()}: area={report.area_um2:.3g} um^2, delay={report.delay_ns:.1f} ns, "
          f"ADP={report.adp:.3g}, MAE={circuit.mean_absolute_error(logits):.4f}")
    row = logits[0]
    print("exact softmax   :", np.round(softmax_exact(row)[:6], 3))
    print("circuit output  :", np.round(circuit.forward(row[None, :])[0][:6], 3))


def demo_accelerator():
    section("4. Accelerator-level area breakdown (Table VI)")
    accelerator = AscendAccelerator()
    breakdown = accelerator.area_breakdown()
    for name, value in breakdown.items():
        if name in ("total", "softmax_fraction"):
            continue
        print(f"  {name:22s} {value:12.0f} um^2")
    print(f"  {'total':22s} {breakdown['total']:12.0f} um^2")
    print(f"  softmax share: {100 * breakdown['softmax_fraction']:.2f}%")


if __name__ == "__main__":
    demo_thermometer_sc()
    demo_gelu_block()
    demo_softmax()
    demo_accelerator()
    print("\nDone. See examples/ for the deeper scenario walkthroughs.")
