"""Scenario: picking a softmax block along the Pareto front (Table IV / Fig. 8).

An accelerator architect needs an attention-softmax block for m = 64 tokens
and wants the cheapest design that stays within an error budget.  The script

1. compares the FSM baseline against the iterative approximate softmax at
   the Table IV operating points,
2. sweeps the Table II parameter grid (a reduced grid by default; pass
   ``--full`` for the paper's 2916-design sweep),
3. extracts the Pareto front, prints it, and picks a design under an MAE
   budget.

Run with:  python examples/softmax_design_space.py [--full] [--budget 0.08]
"""

import argparse


from repro.core import (
    FsmSoftmaxBaseline,
    IterativeSoftmaxCircuit,
    SoftmaxCircuitConfig,
    SoftmaxDesignSpace,
    calibrate_alpha_x,
    calibrate_alpha_y,
)
from repro.evaluation import attention_logit_vectors
from repro.hw import synthesize


def table4_comparison(logits):
    print("Table IV — softmax block comparison (m = 64):")
    print(f"{'design':20s} {'area um^2':>12s} {'delay ns':>9s} {'ADP':>12s} {'MAE':>8s}")
    for bsl in (128, 256, 1024):
        baseline = FsmSoftmaxBaseline(m=64, bitstream_length=bsl, seed=bsl)
        report = synthesize(baseline.build_hardware())
        print(f"{'FSM ' + str(bsl) + 'b':20s} {report.area_um2:12.3g} {report.delay_ns:9.1f} "
              f"{report.adp:12.3g} {baseline.mean_absolute_error(logits):8.4f}")
    alpha_x = calibrate_alpha_x(logits, 4)
    for by in (4, 8, 16):
        config = SoftmaxCircuitConfig(
            m=64, iterations=3, bx=4, alpha_x=alpha_x, by=by, alpha_y=calibrate_alpha_y(by, 64), s1=32, s2=8
        )
        circuit = IterativeSoftmaxCircuit(config)
        report = synthesize(circuit.build_hardware())
        print(f"{'Ours By=' + str(by):20s} {report.area_um2:12.3g} {report.delay_ns:9.1f} "
              f"{report.adp:12.3g} {circuit.mean_absolute_error(logits):8.4f}")


def explore(logits, full, budget):
    if full:
        space = SoftmaxDesignSpace(bx=4, test_vectors=logits[:100])
    else:
        space = SoftmaxDesignSpace(
            bx=4,
            test_vectors=logits[:64],
            by_choices=(4, 8, 16, 32),
            iteration_choices=(2, 3),
            s1_choices=(8, 32, 128),
            s2_choices=(2, 8, 32),
            alpha_y_multipliers=(0.5, 1.0),
        )
    print(f"\nFig. 8 — exploring {space.grid_size()} candidate designs (Bx = 4)...")
    points = space.explore()
    pareto = space.pareto_points(points)
    print(f"feasible designs: {sum(p.feasible for p in points)}, Pareto optima: {len(pareto)}")
    print(f"{'[By, s1, s2, k]':18s} {'ADP':>12s} {'MAE':>8s}")
    for point in pareto:
        print(f"{point.config.describe():18s} {point.adp:12.3g} {point.mae:8.4f}")

    within = [p for p in pareto if p.mae <= budget]
    if within:
        chosen = min(within, key=lambda p: p.adp)
        print(f"\nchosen design under MAE budget {budget}: {chosen.config.describe()} "
              f"(ADP {chosen.adp:.3g}, MAE {chosen.mae:.4f})")
    else:
        chosen = min(pareto, key=lambda p: p.mae)
        print(f"\nno design meets the MAE budget {budget}; most accurate is {chosen.config.describe()}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="sweep the full 2916-design grid")
    parser.add_argument("--budget", type=float, default=0.08, help="MAE budget for the design choice")
    args = parser.parse_args()

    logits = attention_logit_vectors(200, 64, seed=7)
    table4_comparison(logits)
    explore(logits, args.full, args.budget)


if __name__ == "__main__":
    main()
