"""Scenario: producing an SC-friendly low-precision ViT (Section V / Table V).

Runs the two-stage ASCEND training pipeline on the synthetic 10-class
dataset and prints every Table V row: the FP reference, the direct
quantisation baseline, and the progressive + approximate-softmax-aware
stages.  The trained SC-friendly model is saved as an ``.npz`` checkpoint so
the accelerator-evaluation example can reuse it without retraining.

Sizes are deliberately modest so the script finishes in a few minutes on a
laptop; pass ``--fast`` for a smoke run or ``--epochs-scale 3`` for a longer,
more faithful schedule.

Run with:  python examples/train_sc_friendly_vit.py [--fast]
"""

import argparse
import time
from pathlib import Path

from repro.nn.serialization import save_model
from repro.nn.vit import ViTConfig
from repro.training.datasets import synthetic_cifar10
from repro.training.pipeline import AscendTrainingPipeline, PipelineConfig, train_baseline_low_precision

CHECKPOINT = Path(__file__).parent / "sc_friendly_vit.npz"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="tiny smoke-test sizes")
    parser.add_argument("--epochs-scale", type=float, default=1.0, help="multiply every stage length")
    args = parser.parse_args()

    if args.fast:
        train, test = synthetic_cifar10(train_size=512, test_size=256)
        vit = ViTConfig(image_size=16, patch_size=4, embed_dim=32, num_layers=3, num_heads=4, num_classes=10, norm="bn")
        config = PipelineConfig(vit=vit, fp_epochs=3, progressive_epochs=2, finetune_epochs=1, learning_rate=1e-3)
    else:
        scale = args.epochs_scale
        train, test = synthetic_cifar10(train_size=2048, test_size=512)
        vit = ViTConfig(image_size=16, patch_size=4, embed_dim=48, num_layers=4, num_heads=4, num_classes=10, norm="bn")
        config = PipelineConfig(
            vit=vit,
            fp_epochs=max(1, int(10 * scale)),
            progressive_epochs=max(1, int(6 * scale)),
            finetune_epochs=max(1, int(3 * scale)),
            learning_rate=1e-3,
        )

    start = time.time()
    pipeline = AscendTrainingPipeline(train, test, config)
    result = pipeline.run()
    baseline = train_baseline_low_precision(train, test, config, teacher=pipeline._ln_model)

    print("\nTable V — accuracy on Synthetic-10 (CIFAR-10 stand-in):")
    print(f"{'model':50s} {'accuracy %':>10s}")
    rows = [
        ("FP LN-ViT", result.accuracy_of("fp_ln_vit")),
        ("Baseline low-precision BN-ViT (direct W2-A2-R16)", baseline.accuracy),
        ("BN-ViT + progressive quant", result.accuracy_of("progressive_W2-A2-R16")),
        ("BN-ViT + progressive quant + appr softmax", result.accuracy_of("approximate_softmax")),
        ("BN-ViT + progressive quant + appr-aware ft", result.accuracy_of("approx_aware_finetune")),
    ]
    for name, acc in rows:
        print(f"{name:50s} {acc:10.2f}")

    save_model(CHECKPOINT, result.final_model)
    print(f"\nSC-friendly ViT checkpoint written to {CHECKPOINT}")
    print(f"total time: {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
