"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this shim exists so
that editable installs also work on minimal environments that lack the
``wheel`` package (where PEP 660 editable wheels cannot be built).
"""

from setuptools import setup

setup()
