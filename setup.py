"""Setuptools entry point.

The project is fully described by ``pyproject.toml`` (including the
``repro`` console script that fronts the sweep orchestrator); this shim
exists so that editable installs also work on minimal environments that
lack the ``wheel`` package (where PEP 660 editable wheels cannot be
built).  The explicit arguments below mirror the pyproject metadata for
ancient setuptools that ignores it.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="repro-ascend",
    version=_VERSION,
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
