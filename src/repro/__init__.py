"""ASCEND reproduction: end-to-end stochastic-computing acceleration of ViTs.

The package mirrors the structure of the paper (DATE 2024):

* :mod:`repro.blocks` — the unified circuit-block API: the
  ``NonlinearBlock`` protocol, frozen JSON-round-trippable block specs, the
  string-keyed block registry (``build("softmax/iterative", ...)``) and the
  declarative ``ExperimentSpec`` files behind ``python -m repro run``,
* :mod:`repro.sc` — the stochastic-computing substrate (encodings, bitstream
  arithmetic, sorting networks, baseline nonlinear units),
* :mod:`repro.hw` — the hardware cost model standing in for the paper's
  Synopsys/TSMC 28 nm synthesis flow,
* :mod:`repro.core` — ASCEND's contribution: the gate-assisted SI GELU, the
  iterative approximate softmax circuit, the design-space exploration, the
  accelerator model and the SC-friendly ViT,
* :mod:`repro.nn` — a numpy autograd + ViT + LSQ quantisation substrate,
* :mod:`repro.training` — datasets, trainer, knowledge distillation and the
  two-stage training pipeline,
* :mod:`repro.evaluation` — test vectors, error metrics, Pareto analysis and
  report formatting,
* :mod:`repro.runner` — sweep orchestration: the parallel sweep executor,
  the content-addressed on-disk result cache and the per-experiment sweep
  tasks behind the ``python -m repro`` CLI,
* :mod:`repro.eval_pipeline` — the batched end-to-end SC-ViT evaluation
  subsystem: streaming whole-split evaluation with chunk-invariant
  numerics, packed-bitplane fault injection and the ``EvalTask`` sweep
  registration (``python -m repro eval``),
* :mod:`repro.serve` — the async dynamic-batching inference service:
  bounded request queue, micro-batcher, worker-pool engine, per-request
  result cache and stdio/HTTP transports (``python -m repro serve``),
* :mod:`repro.fabric` — the bitstream-configurable accelerator-fabric
  simulator: a tile grid hosting registry blocks, deterministic
  place-and-route, configure-then-compile execution on the packed SC
  engine, golden bit-identity cross-checks and Table VI cost
  reconciliation (``python -m repro fabric``),
* :mod:`repro.telemetry` — the unified observability plane: span tracing
  with cross-process context propagation (Chrome-trace/Perfetto export),
  Prometheus-text metrics, per-kernel profiling at the SC backend seam and
  structured logging (``python -m repro trace``; off by default and
  provably inert — see ``docs/observability.md``).

See ``DESIGN.md`` for the system inventory and the per-experiment index, and
``EXPERIMENTS.md`` for measured-vs-paper results.
"""

__version__ = "1.0.0"

__all__ = [
    "blocks",
    "core",
    "sc",
    "hw",
    "nn",
    "training",
    "evaluation",
    "eval_pipeline",
    "runner",
    "serve",
    "fabric",
    "telemetry",
    "utils",
    "__version__",
]
