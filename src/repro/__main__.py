"""``python -m repro`` — the unified reproduction CLI (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

sys.exit(main())
