"""Unified circuit-block API: protocol, serialisable specs, registry.

The paper's core comparison is between *families* of SC nonlinear designs —
the iterative softmax circuit, the FSM softmax baseline, gate-assisted SI
GELU, the FSM/Bernstein/naive-SI units.  This package gives every family
one composable abstraction:

* :mod:`repro.blocks.protocol` — :class:`NonlinearBlock`, the uniform
  lifecycle (``from_spec``/``to_spec``, ``evaluate``, ``reference``,
  ``process``, ``build_hardware``) with declared input/output encodings;
* :mod:`repro.blocks.specs` — frozen, JSON-round-trippable
  :class:`BlockSpec` dataclasses for every family (including
  :class:`SoftmaxCircuitConfig`, which now lives here) plus the ``alpha``
  calibration helpers;
* :mod:`repro.blocks.registry` — the string-keyed registry:
  ``build("softmax/iterative", by=8)``, the :func:`register_block`
  decorator for new families, and :func:`capability_matrix` regenerating
  Table I from registry metadata;
* :mod:`repro.blocks.experiment` — declarative :class:`ExperimentSpec`
  JSON files consumed by ``python -m repro run``.

Importing this package is cheap and pulls in **no** circuit
implementations: builtin families resolve lazily on first ``build``.  That
lazy indirection is what breaks the old ``repro.core`` ↔
``repro.eval_pipeline`` import cycle.
"""

from repro.blocks.experiment import ExperimentSpec, RUNNABLE_TASKS
from repro.blocks.protocol import NonlinearBlock, StreamProcessingUnsupported
from repro.blocks.registry import (
    BlockEntry,
    CapabilityInfo,
    ScDesignCapability,
    build,
    capability_matrix,
    default_spec,
    get,
    names,
    register_block,
)
from repro.blocks.specs import (
    BernsteinGeluSpec,
    BlockSpec,
    FsmGeluSpec,
    FsmReluSpec,
    FsmSoftmaxSpec,
    FsmTanhSpec,
    GeluSISpec,
    IterativeSoftmaxSpec,
    NaiveSIGeluSpec,
    SoftmaxCircuitConfig,
    TernaryGeluSpec,
    calibrate_alpha_x,
    calibrate_alpha_y,
    spec_families,
    spec_from_dict,
    spec_from_json,
)

__all__ = [
    "NonlinearBlock",
    "StreamProcessingUnsupported",
    "BlockSpec",
    "BlockEntry",
    "CapabilityInfo",
    "ScDesignCapability",
    "ExperimentSpec",
    "RUNNABLE_TASKS",
    "register_block",
    "build",
    "get",
    "names",
    "default_spec",
    "capability_matrix",
    "spec_families",
    "spec_from_dict",
    "spec_from_json",
    "SoftmaxCircuitConfig",
    "IterativeSoftmaxSpec",
    "FsmSoftmaxSpec",
    "GeluSISpec",
    "TernaryGeluSpec",
    "NaiveSIGeluSpec",
    "FsmGeluSpec",
    "FsmTanhSpec",
    "FsmReluSpec",
    "BernsteinGeluSpec",
    "calibrate_alpha_x",
    "calibrate_alpha_y",
]
