"""Declarative experiment files: :class:`ExperimentSpec` and ``repro run``.

An experiment file is a JSON document naming a task, its parameter/block
grid, and runner options::

    {
      "name": "fig8-smoke",
      "description": "reduced Fig. 8 DSE slice",
      "task": "dse",
      "params": {"grid": "tiny", "max_designs": 32, "rows": 16, "bx": [4]},
      "runner": {"workers": 2, "cache_dir": ".repro-cache"}
    }

``python -m repro run spec.json`` executes it through exactly the same code
path as the equivalent hand-typed subcommand (``python -m repro dse
--grid tiny --max-designs 32 ...``), so a spec run and a CLI run share
sweep-cache entries byte for byte — sweeps and evals are data, not code.

* ``task`` — one of the sweep subcommands: ``dse``, ``gelu-sweep``,
  ``tables``, ``eval``.
* ``params`` — the subcommand's options with underscores for dashes
  (``max_designs`` for ``--max-designs``).  Lists become multi-value
  options, booleans become flags.  For the grid-shaped tasks these entries
  *are* the block-spec grid: ``eval``'s ``by_grid``/``s1``/``s2``/``k``
  axes enumerate ``softmax/iterative`` specs, ``gelu_bsl`` selects the
  ``gelu/si`` spec, and ``dse``'s ``grid`` preset names the
  :class:`~repro.blocks.specs.SoftmaxCircuitConfig` grid.
* ``runner`` — shared sweep options (``workers``, ``cache_dir``,
  ``no_cache``, ``out``, ``quiet``); kept separate from ``params`` so the
  experiment's identity and its execution knobs don't mix.

Keys are validated against the CLI parser up front, so a typo in a spec
file fails with the list of known options instead of an argparse usage
dump.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["ExperimentSpec", "RUNNABLE_TASKS"]

#: Subcommands an experiment file may name (the sweep-shaped ones; ``bench``
#: and ``verify`` take no experiment-identity parameters).
RUNNABLE_TASKS = ("dse", "gelu-sweep", "tables", "eval")

_TOP_LEVEL_KEYS = {"name", "description", "task", "params", "runner"}


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment: a task, its grid, and runner options."""

    task: str
    name: str = ""
    description: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    runner: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.task not in RUNNABLE_TASKS:
            raise ValueError(
                f"unknown experiment task {self.task!r} (runnable: {', '.join(RUNNABLE_TASKS)})"
            )
        overlap = set(self.params) & set(self.runner)
        if overlap:
            raise ValueError(f"keys appear in both params and runner: {sorted(overlap)}")

    # -------------------------------------------------------------- round-trip
    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"experiment spec must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - _TOP_LEVEL_KEYS
        if unknown:
            raise ValueError(
                f"unknown experiment keys {sorted(unknown)} (expected {sorted(_TOP_LEVEL_KEYS)})"
            )
        if "task" not in payload:
            raise ValueError("experiment spec needs a 'task' entry")
        return cls(
            task=str(payload["task"]),
            name=str(payload.get("name", "")),
            description=str(payload.get("description", "")),
            params=dict(payload.get("params", {})),
            runner=dict(payload.get("runner", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ExperimentSpec":
        path = Path(path)
        try:
            spec = cls.from_json(path.read_text())
        except (ValueError, KeyError) as exc:
            raise ValueError(f"{path}: {exc}") from exc
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    # ------------------------------------------------------------- execution
    def to_argv(self, overrides: Optional[Dict[str, Any]] = None) -> List[str]:
        """The equivalent CLI invocation, e.g. ``["dse", "--rows", "16"]``.

        ``overrides`` (same key convention) replace runner entries — this is
        how ``repro run --workers 8 spec.json`` retargets a spec without
        editing the file.
        """
        merged = dict(self.params)
        merged.update(self.runner)
        if overrides:
            merged.update(overrides)
        argv = [self.task]
        for key, value in merged.items():
            option = "--" + str(key).replace("_", "-")
            if value is None or value is False:
                continue
            if value is True:
                argv.append(option)
                continue
            argv.append(option)
            if isinstance(value, (list, tuple)):
                argv.extend(str(v) for v in value)
            else:
                argv.append(str(value))
        return argv

    def validate_options(self, parser: Any) -> None:
        """Check every params/runner key against the task's CLI options.

        ``parser`` is the root ``argparse`` parser of the repro CLI (the
        caller passes it in; this module never imports the CLI, which keeps
        ``repro.blocks`` importable from anywhere).
        """
        import argparse

        subparser = None
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                subparser = action.choices.get(self.task)
        if subparser is None:  # pragma: no cover - RUNNABLE_TASKS guards this
            raise ValueError(f"CLI has no {self.task!r} subcommand")
        known = {
            option[2:].replace("-", "_")
            for option in subparser._option_string_actions
            if option.startswith("--")
        }
        unknown = [key for key in (*self.params, *self.runner) if str(key) not in known]
        if unknown:
            raise ValueError(
                f"unknown option(s) {sorted(map(str, unknown))} for task {self.task!r} "
                f"(known: {', '.join(sorted(known))})"
            )

    def describe(self) -> str:
        label = self.name or self.task
        return f"{label}: repro {' '.join(self.to_argv())}"
