"""Builtin block families: protocol adapters over the circuit implementations.

Each adapter wraps the historical implementation class *by composition* and
delegates to it, so the new API is bit-identical to the old one (the golden
equivalence tests assert exactly that).  This module is imported lazily by
the registry — never at ``import repro.blocks`` time — so it may import
:mod:`repro.core` and :mod:`repro.sc` freely without re-creating the import
cycle the registry exists to break.

The adapters are also where the historical ``evaluate`` signature drift is
retired: stochastic lifecycle parameters (``bitstream_length``, ``seed``,
``input_scale``) live in the spec, and every family exposes the same
``evaluate(values)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blocks.protocol import NonlinearBlock
from repro.blocks.registry import get as _get_entry
from repro.blocks.specs import (
    BernsteinGeluSpec,
    FsmGeluSpec,
    FsmReluSpec,
    FsmSoftmaxSpec,
    FsmTanhSpec,
    GeluSISpec,
    NaiveSIGeluSpec,
    SoftmaxCircuitConfig,
    TernaryGeluSpec,
)
from repro.core.baselines import FsmSoftmaxBaseline
from repro.core.gelu_si import GeluSIBlock, TernaryGeluBlock
from repro.core.softmax_circuit import IterativeSoftmaxCircuit
from repro.nn.functional_math import gelu_exact, softmax_exact
from repro.sc.backends import use_backend
from repro.sc.bernstein import BernsteinPolynomialUnit
from repro.sc.fsm import FsmGeluUnit, FsmNonlinearUnit, FsmReluUnit, FsmTanhUnit
from repro.sc.selective_interconnect import NaiveSelectiveInterconnect

__all__ = [
    "IterativeSoftmaxBlock",
    "FsmSoftmaxBlock",
    "SIGeluBlock",
    "TernarySIGeluBlock",
    "NaiveSIGeluBlock",
    "FsmGeluBlock",
    "FsmTanhBlock",
    "FsmReluBlock",
    "BernsteinGeluBlock",
]


def _bind(cls: type) -> type:
    """Attach registry metadata (family, spec_cls, encodings) to an adapter."""
    entry = _get_entry(cls._family_name)
    cls.family = entry.name
    cls.spec_cls = entry.spec_cls
    cls.input_encoding = entry.input_encoding
    cls.output_encoding = entry.output_encoding
    entry.block_cls = cls
    return cls


# ---------------------------------------------------------------------------
# Softmax families
# ---------------------------------------------------------------------------


@_bind
class IterativeSoftmaxBlock(NonlinearBlock):
    """ASCEND's iterative approximate softmax circuit (``softmax/iterative``)."""

    _family_name = "softmax/iterative"

    def __init__(self, spec: SoftmaxCircuitConfig) -> None:
        self.circuit = IterativeSoftmaxCircuit(spec)

    @property
    def config(self) -> SoftmaxCircuitConfig:
        return self.circuit.config

    def to_spec(self) -> SoftmaxCircuitConfig:
        return self.circuit.config

    def forward(self, x: np.ndarray, stream_hook=None) -> np.ndarray:
        """The circuit dataflow; see :meth:`IterativeSoftmaxCircuit.forward`."""
        return self.circuit.forward(x, stream_hook=stream_hook)

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        return self.circuit.forward(values)

    def reference(self, values: np.ndarray) -> np.ndarray:
        return softmax_exact(np.asarray(values, dtype=float), axis=-1)

    def build_hardware(self):
        return self.circuit.build_hardware()


@_bind
class FsmSoftmaxBlock(NonlinearBlock):
    """The FSM + binary-unit softmax baseline of [17] (``softmax/fsm``)."""

    _family_name = "softmax/fsm"

    def __init__(self, spec: FsmSoftmaxSpec) -> None:
        self._spec = spec
        self.baseline = FsmSoftmaxBaseline(
            m=spec.m,
            bitstream_length=spec.bitstream_length,
            num_states=spec.num_states,
            seed=spec.seed,
            bit_level=spec.bit_level,
        )

    def to_spec(self) -> FsmSoftmaxSpec:
        return self._spec

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        with use_backend(self._spec.backend):
            return self.baseline.forward(values)

    def reference(self, values: np.ndarray) -> np.ndarray:
        return softmax_exact(np.asarray(values, dtype=float), axis=-1)

    def build_hardware(self):
        return self.baseline.build_hardware()


# ---------------------------------------------------------------------------
# GELU families
# ---------------------------------------------------------------------------


class _ThermometerFormats:
    """Declared stream formats of a thermometer-coded block (``self.block``).

    Part of the public adapter surface: consumers (the eval pipeline, fault
    injection) encode against these instead of reaching into the wrapped
    implementation.
    """

    @property
    def input_length(self) -> int:
        return self.block.input_length

    @property
    def input_scale(self) -> float:
        return self.block.input_scale

    @property
    def output_length(self) -> int:
        return self.block.output_length

    @property
    def output_scale(self) -> float:
        return self.block.output_scale


@_bind
class SIGeluBlock(_ThermometerFormats, NonlinearBlock):
    """ASCEND's gate-assisted SI GELU (``gelu/si``)."""

    _family_name = "gelu/si"
    supports_stream_process = True

    def __init__(self, spec: GeluSISpec, calibration_samples: Optional[np.ndarray] = None) -> None:
        self.block = GeluSIBlock(
            output_length=spec.output_length,
            input_length=spec.input_length,
            input_scale=spec.input_scale,
            output_scale=spec.output_scale,
            calibration_samples=calibration_samples,
            input_range=spec.input_range,
        )
        self._spec = GeluSISpec(
            output_length=self.block.output_length,
            input_length=self.block.input_length,
            input_scale=self.block.input_scale,
            output_scale=self.block.output_scale,
            input_range=spec.input_range,
        )

    def to_spec(self) -> GeluSISpec:
        return self._spec

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        return self.block.evaluate(values)

    def reference(self, values: np.ndarray) -> np.ndarray:
        return gelu_exact(np.asarray(values, dtype=float))

    def process(self, stream):
        return self.block.process(stream)

    def build_hardware(self):
        return self.block.build_hardware()


@_bind
class TernarySIGeluBlock(_ThermometerFormats, NonlinearBlock):
    """The Fig. 4(b) worked ternary example (``gelu/si-ternary``)."""

    _family_name = "gelu/si-ternary"
    supports_stream_process = True

    def __init__(self, spec: TernaryGeluSpec) -> None:
        self._spec = spec
        self.block = TernaryGeluBlock(input_scale=spec.input_scale, output_scale=spec.output_scale)

    def to_spec(self) -> TernaryGeluSpec:
        return self._spec

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        return self.block.evaluate(values)

    def reference(self, values: np.ndarray) -> np.ndarray:
        return gelu_exact(np.asarray(values, dtype=float))

    def process(self, stream):
        return self.block.process(stream)

    def build_hardware(self):
        return self.block.build_hardware()


@_bind
class NaiveSIGeluBlock(_ThermometerFormats, NonlinearBlock):
    """Selection-only SI GELU — the monotone envelope (``gelu/naive-si``)."""

    _family_name = "gelu/naive-si"
    supports_stream_process = True

    def __init__(self, spec: NaiveSIGeluSpec) -> None:
        # Resolve the Fig. 2 defaults: 32x input expansion, [-8, 8] input
        # grid, 1.2 output range.
        input_length = spec.input_length
        if input_length is None:
            input_length = 32 * spec.output_length
        input_scale = spec.input_scale
        if input_scale is None:
            input_scale = 8.0 / input_length
        output_scale = spec.output_scale
        if output_scale is None:
            output_scale = 1.2 / spec.output_length
        self._spec = NaiveSIGeluSpec(
            output_length=spec.output_length,
            input_length=input_length,
            input_scale=input_scale,
            output_scale=output_scale,
        )
        self.block = NaiveSelectiveInterconnect(
            gelu_exact,
            input_length=input_length,
            input_scale=input_scale,
            output_length=spec.output_length,
            output_scale=output_scale,
        )

    def to_spec(self) -> NaiveSIGeluSpec:
        return self._spec

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        return self.block.evaluate(values)

    def reference(self, values: np.ndarray) -> np.ndarray:
        return gelu_exact(np.asarray(values, dtype=float))

    def process(self, stream):
        return self.block.process(stream)

    def build_hardware(self):
        return self.block.build_hardware()


class _FsmUnitBlock(NonlinearBlock):
    """Shared adapter plumbing of the saturating-counter FSM families."""

    supports_stream_process = True

    def __init__(self, spec) -> None:
        self._spec = spec
        self.unit: FsmNonlinearUnit = self._make_unit(spec)

    def _make_unit(self, spec) -> FsmNonlinearUnit:
        raise NotImplementedError

    def to_spec(self):
        return self._spec

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        with use_backend(self._spec.backend):
            return self.unit.evaluate(
                values,
                self._spec.bitstream_length,
                seed=self._spec.seed,
                input_scale=self._spec.input_scale,
            )

    def process(self, stream):
        with use_backend(self._spec.backend):
            return self.unit.process(stream)

    def build_hardware(self):
        return self.unit.build_hardware(self._spec.bitstream_length)


@_bind
class FsmGeluBlock(_FsmUnitBlock):
    """FSM GELU baseline — saturates at zero on negatives (``gelu/fsm``)."""

    _family_name = "gelu/fsm"

    def _make_unit(self, spec: FsmGeluSpec) -> FsmNonlinearUnit:
        return FsmGeluUnit(num_states=spec.num_states)

    def reference(self, values: np.ndarray) -> np.ndarray:
        return gelu_exact(np.asarray(values, dtype=float))


@_bind
class FsmTanhBlock(_FsmUnitBlock):
    """Classic stanh FSM unit (``tanh/fsm``)."""

    _family_name = "tanh/fsm"

    def _make_unit(self, spec: FsmTanhSpec) -> FsmNonlinearUnit:
        return FsmTanhUnit(num_states=spec.num_states)

    def reference(self, values: np.ndarray) -> np.ndarray:
        return self.unit.reference(values, input_scale=self._spec.input_scale)


@_bind
class FsmReluBlock(_FsmUnitBlock):
    """FSM ReLU unit (``relu/fsm``)."""

    _family_name = "relu/fsm"

    def _make_unit(self, spec: FsmReluSpec) -> FsmNonlinearUnit:
        return FsmReluUnit(num_states=spec.num_states)

    def reference(self, values: np.ndarray) -> np.ndarray:
        return FsmReluUnit.reference(values)


@_bind
class BernsteinGeluBlock(NonlinearBlock):
    """ReSC-style Bernstein-polynomial GELU of [18] (``gelu/bernstein``)."""

    _family_name = "gelu/bernstein"

    def __init__(self, spec: BernsteinGeluSpec) -> None:
        self._spec = spec
        self.unit = BernsteinPolynomialUnit(
            gelu_exact, num_terms=spec.num_terms, input_range=spec.input_range
        )

    def to_spec(self) -> BernsteinGeluSpec:
        return self._spec

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        with use_backend(self._spec.backend):
            return self.unit.evaluate(values, self._spec.bitstream_length, seed=self._spec.seed)

    def reference(self, values: np.ndarray) -> np.ndarray:
        return gelu_exact(np.asarray(values, dtype=float))

    def polynomial(self, values: np.ndarray) -> np.ndarray:
        """Deterministic (infinite-BSL) output of the fitted polynomial."""
        return self.unit.polynomial(values)

    def build_hardware(self):
        return self.unit.build_hardware(self._spec.bitstream_length)
