"""The uniform circuit-block protocol: :class:`NonlinearBlock`.

Every nonlinear SC design family the paper compares (Tables I/III/IV) is
exposed through one lifecycle, whatever its internal calling convention:

* ``from_spec(spec)`` / ``to_spec()`` — build from / serialise to a frozen
  :class:`~repro.blocks.specs.BlockSpec` (``to_spec()`` is fully resolved:
  re-building from it reproduces the block bit-for-bit);
* ``evaluate(values)`` — end-to-end real-valued evaluation: encode, run the
  circuit model, decode.  Stochastic parameters (BSL, seed, input scale)
  come from the spec, never from per-call arguments — the uniform
  replacement for the historical per-family ``evaluate`` signature drift;
* ``reference(values)`` — the mathematical function the block approximates;
* ``process(stream)`` — the stream-level datapath, for block families that
  expose one (``supports_stream_process``);
* ``build_hardware()`` — the structural model for the :mod:`repro.hw` cost
  flow.

Blocks also declare their input/output encodings (``"thermometer"``,
``"bipolar"``, ``"unipolar"``, ``"value"``) — the registry renders these in
``python -m repro blocks`` and uses the registry metadata to regenerate the
Table I capability matrix.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, ClassVar, Dict, Type

import numpy as np

from repro.blocks.specs import BlockSpec

if TYPE_CHECKING:  # structural types only; keeps this layer import-light
    from repro.hw.netlist import HardwareModule

__all__ = ["NonlinearBlock", "StreamProcessingUnsupported"]


class StreamProcessingUnsupported(NotImplementedError):
    """Raised by ``process`` on block families without a stream datapath."""


class NonlinearBlock(abc.ABC):
    """Abstract base of every registered circuit block family."""

    #: Registry family name; set on each concrete adapter.
    family: ClassVar[str] = ""
    #: Spec dataclass this block family is built from.
    spec_cls: ClassVar[Type[BlockSpec]] = BlockSpec
    #: Encoding of the block input: "thermometer" | "bipolar" | "unipolar"
    #: | "value" (binary/real interface, e.g. the FSM softmax normaliser).
    input_encoding: ClassVar[str] = "value"
    #: Encoding of the block output.
    output_encoding: ClassVar[str] = "value"
    #: Whether :meth:`process` is implemented for this family.
    supports_stream_process: ClassVar[bool] = False

    # -------------------------------------------------------------- lifecycle
    @classmethod
    def from_spec(cls, spec: BlockSpec, **build_options: Any) -> "NonlinearBlock":
        """Build a block from its spec.

        ``build_options`` carries non-serialisable build inputs (e.g.
        ``calibration_samples``); everything they influence must land in the
        resolved spec so ``from_spec(block.to_spec())`` reproduces the block
        without them.
        """
        if not isinstance(spec, cls.spec_cls):
            raise TypeError(
                f"{cls.__name__} builds from {cls.spec_cls.__name__}, got {type(spec).__name__}"
            )
        return cls(spec, **build_options)

    @abc.abstractmethod
    def to_spec(self) -> BlockSpec:
        """The fully resolved spec of this block instance."""

    # -------------------------------------------------------------- behaviour
    @abc.abstractmethod
    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """End-to-end: encode real values, run the block, decode the outputs."""

    @abc.abstractmethod
    def reference(self, values: np.ndarray) -> np.ndarray:
        """The mathematical function the block approximates."""

    def process(self, stream: Any) -> Any:
        """Map an input bitstream through the block's stream datapath."""
        raise StreamProcessingUnsupported(
            f"{type(self).__name__} ({self.family or 'unregistered'}) has no "
            "stream-level datapath; use evaluate(values)"
        )

    @abc.abstractmethod
    def build_hardware(self) -> "HardwareModule":
        """Structural model of the block for the hardware cost flow."""

    # ------------------------------------------------------------ conveniences
    def mean_absolute_error(self, values: np.ndarray) -> float:
        """MAE of the block against its reference on a batch of values."""
        values = np.asarray(values, dtype=float)
        return float(np.mean(np.abs(self.evaluate(values) - self.reference(values))))

    def hardware_summary(self, library: Any = None) -> Dict[str, float]:
        """Synthesis cost of the block: area / delay / ADP."""
        from repro.hw.synthesis import synthesize

        report = synthesize(self.build_hardware(), library)
        return {
            "area_um2": float(report.area_um2),
            "delay_ns": float(report.delay_ns),
            "adp": float(report.adp),
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_spec()!r})"
