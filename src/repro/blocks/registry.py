"""String-keyed registry of circuit-block families.

The registry is the one place that knows every block family the repro
implements: ``build("softmax/iterative", by=8, s1=32)`` constructs a block
from keyword parameters (or a ready :class:`~repro.blocks.specs.BlockSpec`),
``names()`` enumerates the families, and :func:`capability_matrix`
regenerates the paper's Table I from per-entry metadata instead of a
hand-maintained list.

Builtin entries are declared *lazily* — each holds the dotted path of its
adapter class in :mod:`repro.blocks.families` and only imports it on first
``build``/``load``.  That keeps ``import repro.blocks`` free of any
dependency on :mod:`repro.core` / :mod:`repro.sc`, which is what breaks the
historical ``repro.core`` ↔ ``repro.eval_pipeline`` import cycle: the eval
pipeline imports the registry at module level and resolves circuit
implementations only at run time.

New families register with the :func:`register_block` decorator::

    @register_block("sigmoid/my-design", spec=MySpec, function="sigmoid",
                    method="FSM", description="...")
    class MySigmoidBlock(NonlinearBlock):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.blocks.protocol import NonlinearBlock
from repro.blocks.specs import (
    BernsteinGeluSpec,
    BlockSpec,
    FsmGeluSpec,
    FsmReluSpec,
    FsmSoftmaxSpec,
    FsmTanhSpec,
    GeluSISpec,
    NaiveSIGeluSpec,
    SoftmaxCircuitConfig,
    TernaryGeluSpec,
)

__all__ = [
    "BlockEntry",
    "CapabilityInfo",
    "ScDesignCapability",
    "register_block",
    "build",
    "get",
    "names",
    "default_spec",
    "capability_matrix",
]


@dataclass(frozen=True)
class CapabilityInfo:
    """Table I metadata of the published design a registry entry models."""

    design: str
    supported_model: str
    encoding_format: str
    supported_functions: Tuple[str, ...]
    implementation_method: str
    order: int


@dataclass(frozen=True)
class ScDesignCapability:
    """One row of Table I (regenerated from the registry)."""

    design: str
    supported_model: str
    encoding_format: str
    supported_functions: Tuple[str, ...]
    implementation_method: str

    def supports(self, function: str) -> bool:
        """Case-insensitive membership test used by the capability bench."""
        return function.lower() in (f.lower() for f in self.supported_functions)


@dataclass
class BlockEntry:
    """One registered block family."""

    name: str
    spec_cls: Type[BlockSpec]
    function: str  # nonlinear function computed ("gelu", "softmax", ...)
    method: str  # implementation method, Table I wording
    description: str
    input_encoding: str = "value"
    output_encoding: str = "value"
    capability: Optional[CapabilityInfo] = None
    #: "module:ClassName" for lazily imported builtin adapters.
    loader: Optional[str] = None
    #: Resolved adapter class (filled on first load, or at registration).
    block_cls: Optional[Type[NonlinearBlock]] = field(default=None, repr=False)

    def load(self) -> Type[NonlinearBlock]:
        """Resolve (importing on demand) the adapter class of this family."""
        if self.block_cls is None:
            assert self.loader is not None, f"entry {self.name} has no loader"
            module_name, _, attr = self.loader.partition(":")
            self.block_cls = getattr(import_module(module_name), attr)
        return self.block_cls


_REGISTRY: Dict[str, BlockEntry] = {}


def _builtin(entry: BlockEntry) -> None:
    _REGISTRY[entry.name] = entry


def register_block(
    name: str,
    *,
    spec: Type[BlockSpec],
    function: str,
    method: str,
    description: str = "",
    input_encoding: str = "value",
    output_encoding: str = "value",
    capability: Optional[CapabilityInfo] = None,
    replace: bool = False,
):
    """Class decorator registering a :class:`NonlinearBlock` family."""

    def register(cls: Type[NonlinearBlock]) -> Type[NonlinearBlock]:
        if name in _REGISTRY and not replace:
            existing = _REGISTRY[name]
            # Re-registration of the same builtin adapter (module re-import)
            # is harmless; anything else is a real collision.
            if existing.loader != f"{cls.__module__}:{cls.__name__}":
                raise ValueError(f"block family {name!r} is already registered")
        cls.family = name
        cls.spec_cls = spec
        cls.input_encoding = input_encoding
        cls.output_encoding = output_encoding
        doc_first_line = next(iter((cls.__doc__ or "").strip().splitlines()), "")
        _REGISTRY[name] = BlockEntry(
            name=name,
            spec_cls=spec,
            function=function,
            method=method,
            description=description or doc_first_line or name,
            input_encoding=input_encoding,
            output_encoding=output_encoding,
            capability=capability,
            loader=f"{cls.__module__}:{cls.__name__}",
            block_cls=cls,
        )
        return cls

    return register


# ---------------------------------------------------------------------------
# Registry API
# ---------------------------------------------------------------------------


def get(name: str) -> BlockEntry:
    """The registry entry for ``name``; raises ``KeyError`` with the catalog."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown block family {name!r} (registered: {known})") from None


def names() -> List[str]:
    """Registered family names, sorted."""
    return sorted(_REGISTRY)


def default_spec(name: str) -> BlockSpec:
    """The all-defaults spec of a family."""
    return get(name).spec_cls()


def build(
    name: str,
    spec: Optional[BlockSpec] = None,
    **params: Any,
) -> NonlinearBlock:
    """Construct a block: ``build("softmax/iterative", by=8)``.

    Either pass a ready ``spec`` or keyword spec fields (not both).
    Non-spec build options (currently ``calibration_samples`` for the
    calibrated SI/Bernstein families) are forwarded to ``from_spec``.
    """
    entry = get(name)
    build_options = {}
    if "calibration_samples" in params:
        build_options["calibration_samples"] = params.pop("calibration_samples")
    if spec is None:
        spec = entry.spec_cls(**params)
    elif params:
        raise TypeError(f"pass either spec= or keyword parameters to build({name!r}), not both")
    return entry.load().from_spec(spec, **build_options)


# ---------------------------------------------------------------------------
# Table I — generated from registry metadata
# ---------------------------------------------------------------------------


def capability_matrix() -> List[ScDesignCapability]:
    """The rows of Table I, ASCEND last, from the registry's metadata.

    Entries sharing a design label merge into one row (ASCEND's GELU and
    softmax blocks are two registry entries but one published design):
    functions concatenate in entry order, implementation methods join with
    ``", "``.  Entries without capability metadata (internal baselines that
    are not rows of the paper's table) are skipped.
    """
    grouped: Dict[str, Dict[str, Any]] = {}
    with_capability = sorted(
        (entry for entry in _REGISTRY.values() if entry.capability is not None),
        key=lambda entry: entry.capability.order,
    )
    for entry in with_capability:
        cap = entry.capability
        row = grouped.setdefault(
            cap.design,
            {
                "order": cap.order,
                "model": cap.supported_model,
                "encoding": cap.encoding_format,
                "functions": [],
                "methods": [],
            },
        )
        row["order"] = min(row["order"], cap.order)
        for function in cap.supported_functions:
            if function not in row["functions"]:
                row["functions"].append(function)
        if cap.implementation_method not in row["methods"]:
            row["methods"].append(cap.implementation_method)
    rows = []
    for design, row in sorted(grouped.items(), key=lambda item: item[1]["order"]):
        rows.append(
            ScDesignCapability(
                design=design,
                supported_model=row["model"],
                encoding_format=row["encoding"],
                supported_functions=tuple(row["functions"]),
                implementation_method=", ".join(row["methods"]),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Builtin families (adapters in repro.blocks.families, imported on demand)
# ---------------------------------------------------------------------------

_FAMILIES = "repro.blocks.families"

_builtin(
    BlockEntry(
        name="softmax/iterative",
        spec_cls=SoftmaxCircuitConfig,
        function="softmax",
        method="BSN",
        description="ASCEND's iterative approximate softmax circuit (Fig. 5 / Alg. 1)",
        input_encoding="thermometer",
        output_encoding="thermometer",
        capability=CapabilityInfo(
            design="ASCEND (ours)",
            supported_model="ViT",
            encoding_format="deterministic",
            supported_functions=("softmax",),
            implementation_method="BSN",
            order=6,
        ),
        loader=f"{_FAMILIES}:IterativeSoftmaxBlock",
    )
)
_builtin(
    BlockEntry(
        name="softmax/fsm",
        spec_cls=FsmSoftmaxSpec,
        function="softmax",
        method="FSM, binary units",
        description="FSM + binary-unit softmax baseline of [17] (Table IV)",
        input_encoding="unipolar",
        output_encoding="value",
        capability=CapabilityInfo(
            design="Yuan'17 / Hu'18 [16], [17]",
            supported_model="CNN",
            encoding_format="stochastic",
            supported_functions=("softmax",),
            implementation_method="FSM, binary units",
            order=3,
        ),
        loader=f"{_FAMILIES}:FsmSoftmaxBlock",
    )
)
_builtin(
    BlockEntry(
        name="gelu/si",
        spec_cls=GeluSISpec,
        function="gelu",
        method="Gate-Assisted SI",
        description="ASCEND's gate-assisted SI GELU block (Fig. 4, Table III)",
        input_encoding="thermometer",
        output_encoding="thermometer",
        capability=CapabilityInfo(
            design="ASCEND (ours)",
            supported_model="ViT",
            encoding_format="deterministic",
            supported_functions=("gelu",),
            implementation_method="Gate-Assisted SI",
            order=5,
        ),
        loader=f"{_FAMILIES}:SIGeluBlock",
    )
)
_builtin(
    BlockEntry(
        name="gelu/si-ternary",
        spec_cls=TernaryGeluSpec,
        function="gelu",
        method="Gate-Assisted SI",
        description="the Fig. 4(b) worked example: 8-bit input, ternary output",
        input_encoding="thermometer",
        output_encoding="thermometer",
        loader=f"{_FAMILIES}:TernarySIGeluBlock",
    )
)
_builtin(
    BlockEntry(
        name="gelu/naive-si",
        spec_cls=NaiveSIGeluSpec,
        function="gelu",
        method="SI",
        description="selection-only SI GELU (monotone envelope, Fig. 2c)",
        input_encoding="thermometer",
        output_encoding="thermometer",
        # The published naive-SI designs this family models support the
        # monotone activations; the registered GELU instance exists to show
        # the envelope error, hence the capability row lists relu/sigmoid.
        capability=CapabilityInfo(
            design="Zhang'20 / Hu'23 [5], [15]",
            supported_model="CNN",
            encoding_format="deterministic",
            supported_functions=("relu", "sigmoid"),
            implementation_method="SI",
            order=4,
        ),
        loader=f"{_FAMILIES}:NaiveSIGeluBlock",
    )
)
_builtin(
    BlockEntry(
        name="gelu/fsm",
        spec_cls=FsmGeluSpec,
        function="gelu",
        method="FSM",
        description="FSM GELU baseline (saturates at zero on the negative range, Fig. 2a)",
        input_encoding="bipolar",
        output_encoding="bipolar",
        loader=f"{_FAMILIES}:FsmGeluBlock",
    )
)
_builtin(
    BlockEntry(
        name="gelu/bernstein",
        spec_cls=BernsteinGeluSpec,
        function="gelu",
        method="Bernstein polynomial",
        description="ReSC-style Bernstein-polynomial GELU of [18] (Table III / Fig. 7)",
        input_encoding="unipolar",
        output_encoding="unipolar",
        loader=f"{_FAMILIES}:BernsteinGeluBlock",
    )
)
_builtin(
    BlockEntry(
        name="tanh/fsm",
        spec_cls=FsmTanhSpec,
        function="tanh",
        method="FSM",
        description="classic stanh FSM unit (Brown & Card), tanh/sigmoid family",
        input_encoding="bipolar",
        output_encoding="bipolar",
        capability=CapabilityInfo(
            design="Kim'16 / SC-DCNN / Li'17 [6]-[8]",
            supported_model="CNN",
            encoding_format="stochastic",
            supported_functions=("tanh", "sigmoid"),
            implementation_method="FSM",
            order=1,
        ),
        loader=f"{_FAMILIES}:FsmTanhBlock",
    )
)
_builtin(
    BlockEntry(
        name="relu/fsm",
        spec_cls=FsmReluSpec,
        function="relu",
        method="FSM",
        description="FSM ReLU unit (the SC-DCNN / HEIF style design)",
        input_encoding="bipolar",
        output_encoding="bipolar",
        capability=CapabilityInfo(
            design="HEIF [9]",
            supported_model="CNN",
            encoding_format="stochastic",
            supported_functions=("relu",),
            implementation_method="FSM",
            order=2,
        ),
        loader=f"{_FAMILIES}:FsmReluBlock",
    )
)
