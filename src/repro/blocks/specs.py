"""Frozen, JSON-round-trippable specs for every circuit-block family.

A *spec* is the serialisable identity of one nonlinear circuit block: a
frozen dataclass whose fields are plain JSON types, validated on
construction.  Specs are the bottom layer of the block API — this module
imports nothing from :mod:`repro.core`, :mod:`repro.sc` or
:mod:`repro.eval_pipeline`, which is what lets every other layer (the
evaluation pipeline, the sweep tasks, the CLI) exchange block identities
without importing circuit implementations.

The contract, enforced for every family by the hypothesis round-trip tests:

* ``spec == type(spec)(**dataclasses.asdict(spec))`` — specs are pure data;
* ``spec == spec_from_json(spec.to_json())`` — JSON round-trips exactly
  (floats serialise via ``repr``, which is lossless);
* ``block.to_spec()`` of a block built from a spec is *fully resolved*: any
  ``None`` field a builder fills in (calibrated scales, derived lengths)
  comes back as its concrete value, so re-building from ``to_spec()``
  reproduces the block bit-for-bit.

:class:`SoftmaxCircuitConfig` — historically defined in
:mod:`repro.core.softmax_circuit` and still re-exported from there — now
lives here as the spec of the ``softmax/iterative`` family, together with
its ``alpha_x`` / ``alpha_y`` calibration helpers.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, ClassVar, Dict, Optional

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = [
    "BlockSpec",
    "SoftmaxCircuitConfig",
    "IterativeSoftmaxSpec",
    "FsmSoftmaxSpec",
    "GeluSISpec",
    "TernaryGeluSpec",
    "NaiveSIGeluSpec",
    "FsmGeluSpec",
    "FsmTanhSpec",
    "FsmReluSpec",
    "BernsteinGeluSpec",
    "spec_from_dict",
    "spec_from_json",
    "spec_families",
    "calibrate_alpha_x",
    "calibrate_alpha_y",
]


#: family name -> spec class; populated by :func:`_spec_family`.
_SPEC_FAMILIES: Dict[str, type] = {}


def _spec_family(name: str):
    """Class decorator registering a spec dataclass under its family name."""

    def register(cls):
        cls.family = name
        _SPEC_FAMILIES[name] = cls
        return cls

    return register


def spec_families() -> Dict[str, type]:
    """Mapping of family name -> spec class (a copy; mutation-safe)."""
    return dict(_SPEC_FAMILIES)


class BlockSpec:
    """Mixin giving a frozen spec dataclass its serialisation lifecycle.

    Subclasses are frozen dataclasses; the mixin adds the family tag and the
    exact JSON round-trip (``to_dict``/``to_json`` paired with the
    module-level :func:`spec_from_dict` / :func:`spec_from_json`).
    """

    #: Registry family this spec builds (set by the ``_spec_family`` decorator).
    family: ClassVar[str] = ""

    # ------------------------------------------------------------ round-trip
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form: ``{"family": ..., "params": {field: value}}``."""
        return {"family": self.family, "params": asdict(self)}

    def to_json(self, indent: Optional[int] = None) -> str:
        """Exact JSON serialisation (floats round-trip via ``repr``)."""
        return json.dumps(self.to_dict(), indent=indent)

    def with_updates(self, **kwargs) -> "BlockSpec":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def field_defaults(cls) -> Dict[str, Any]:
        """Parameter schema: field name -> default (``...`` when required)."""
        import dataclasses

        out: Dict[str, Any] = {}
        for f in fields(cls):
            if f.default is not dataclasses.MISSING:
                out[f.name] = f.default
            elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                out[f.name] = f.default_factory()  # type: ignore[misc]
            else:
                out[f.name] = ...
        return out


def spec_from_dict(payload: Dict[str, Any]) -> BlockSpec:
    """Inverse of :meth:`BlockSpec.to_dict`."""
    try:
        family = payload["family"]
        params = payload.get("params", {})
    except (TypeError, KeyError) as exc:
        raise ValueError(f"not a block-spec payload: {payload!r}") from exc
    spec_cls = _SPEC_FAMILIES.get(family)
    if spec_cls is None:
        known = ", ".join(sorted(_SPEC_FAMILIES))
        raise KeyError(f"unknown block family {family!r} (known: {known})")
    return spec_cls(**params)


def spec_from_json(text: str) -> BlockSpec:
    """Inverse of :meth:`BlockSpec.to_json`."""
    return spec_from_dict(json.loads(text))


def _check_positive_scale(value: Optional[float], name: str) -> None:
    if value is not None and value <= 0:
        raise ValueError(f"{name} must be positive")


def _check_backend_name(value: Optional[str]) -> None:
    """Type-check the optional SC kernel-backend name.

    Only the *type* is validated here: this module must not import
    :mod:`repro.sc` (the layering contract in the module docstring), so
    whether the name resolves to a real backend is checked at build time by
    ``repro.sc.backends.use_backend``.
    """
    if value is not None and not isinstance(value, str):
        raise ValueError("backend must be a backend name (str) or None")


# ---------------------------------------------------------------------------
# softmax/iterative — the ASCEND circuit of Fig. 5 (Table II parameters)
# ---------------------------------------------------------------------------


@_spec_family("softmax/iterative")
@dataclass(frozen=True)
class SoftmaxCircuitConfig(BlockSpec):
    """Parameters of the iterative softmax circuit block (Table II).

    Attributes
    ----------
    m:
        Length of the softmax row vector (64 for the evaluated ViT).
    iterations:
        Iteration count ``k`` of Algorithm 1.
    bx, alpha_x:
        Bitstream length and scaling factor of the input ``x``.
    by, alpha_y:
        Bitstream length and scaling factor of the output ``y``.
    s1:
        Sub-sample rate applied to ``sum(z)`` after BSN ①.
    s2:
        Sub-sample rate applied to ``y * sum(z)`` after MUL ②.
    """

    m: int = 64
    iterations: int = 3
    bx: int = 4
    alpha_x: float = 2.0
    by: int = 8
    alpha_y: float = 0.03125
    s1: int = 32
    s2: int = 8

    def __post_init__(self) -> None:
        check_positive_int(self.m, "m")
        check_positive_int(self.iterations, "iterations")
        check_positive_int(self.bx, "bx")
        check_positive_int(self.by, "by")
        check_positive_int(self.s1, "s1")
        check_positive_int(self.s2, "s2")
        if self.alpha_x <= 0 or self.alpha_y <= 0:
            raise ValueError("scaling factors must be positive")

    # ------------------------------------------------------------ geometry
    @property
    def z_length(self) -> int:
        """BSL of each product ``z_i = x_i * y_i``."""
        return self.bx * self.by // 2

    @property
    def sum_length_raw(self) -> int:
        """BSL of ``sum(z)`` before sub-sampling (concatenation of m products)."""
        return self.m * self.z_length

    @property
    def sum_length(self) -> int:
        """BSL of ``sum(z)`` after the ``s1`` sub-sampling.

        When ``s1`` does not divide the raw length the stream is padded up to
        the next multiple (constant bits cost nothing in a sorted stream), so
        the result is the ceiling division.
        """
        return max(1, -(-self.sum_length_raw // self.s1))

    @property
    def prod_length_raw(self) -> int:
        """BSL of ``y_i * sum(z)`` before the ``s2`` sub-sampling."""
        return max(1, self.by * self.sum_length // 2)

    @property
    def prod_length(self) -> int:
        """BSL of ``y_i * sum(z)`` after the ``s2`` sub-sampling."""
        return max(1, -(-self.prod_length_raw // self.s2))

    def is_feasible(self) -> bool:
        """True when the configuration can be built.

        Only configurations whose multiplier output widths collapse to
        nothing (odd ``Bx * By`` products) or whose sub-sample rates exceed
        the streams they shorten are rejected; sub-sample rates that do not
        divide a stream exactly are handled by padding, as in the hardware.
        """
        if self.bx * self.by % 2 != 0:
            return False
        if self.s1 > self.sum_length_raw:
            return False
        if self.s2 > self.prod_length_raw:
            return False
        return True

    def clamped_to_vector_length(self, m: int) -> "SoftmaxCircuitConfig":
        """Retarget the block to vectors of length ``m``.

        The sub-sample rates are upper-bounded by the streams they shorten:
        a smaller attention matrix (fewer tokens) produces shorter ``sum(z)``
        streams, so the Table VI parameters saturate at full sub-sampling
        rather than becoming unbuildable.
        """
        check_positive_int(m, "m")
        retargeted = self.with_updates(m=m)
        s1 = min(self.s1, retargeted.sum_length_raw)
        retargeted = retargeted.with_updates(s1=s1)
        s2 = min(self.s2, retargeted.prod_length_raw)
        return retargeted.with_updates(s2=s2)

    def describe(self) -> str:
        """Short form used by the benches: ``[By, s1, s2, k]`` as in Table VI."""
        return f"[{self.by}, {self.s1}, {self.s2}, {self.iterations}]"


#: Preferred name for new code; the historical name stays the class name so
#: reprs, pickles and cache keys are unchanged.
IterativeSoftmaxSpec = SoftmaxCircuitConfig


# ---------------------------------------------------------------------------
# softmax/fsm — the FSM + binary-unit baseline of [17]
# ---------------------------------------------------------------------------


@_spec_family("softmax/fsm")
@dataclass(frozen=True)
class FsmSoftmaxSpec(BlockSpec):
    """Parameters of the FSM softmax baseline (Table IV rows of [17])."""

    m: int = 64
    bitstream_length: int = 256
    num_states: int = 32
    seed: int = 0
    bit_level: bool = False
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive_int(self.m, "m")
        check_positive_int(self.bitstream_length, "bitstream_length")
        check_positive_int(self.num_states, "num_states")
        _check_backend_name(self.backend)


# ---------------------------------------------------------------------------
# gelu/si — ASCEND's gate-assisted selective interconnect GELU
# ---------------------------------------------------------------------------


@_spec_family("gelu/si")
@dataclass(frozen=True)
class GeluSISpec(BlockSpec):
    """Parameters of the gate-assisted SI GELU block (Table III).

    ``input_length`` / ``input_scale`` / ``output_scale`` may be ``None`` in
    a hand-written spec, in which case the builder derives or calibrates
    them exactly as :class:`repro.core.gelu_si.GeluSIBlock` always has; the
    built block's ``to_spec()`` returns the resolved values.
    """

    output_length: int = 8
    input_length: Optional[int] = None
    input_scale: Optional[float] = None
    output_scale: Optional[float] = None
    input_range: float = 4.0

    def __post_init__(self) -> None:
        check_positive_int(self.output_length, "output_length")
        if self.input_length is not None:
            check_positive_int(self.input_length, "input_length")
        _check_positive_scale(self.input_scale, "input_scale")
        _check_positive_scale(self.output_scale, "output_scale")
        _check_positive_scale(self.input_range, "input_range")


@_spec_family("gelu/si-ternary")
@dataclass(frozen=True)
class TernaryGeluSpec(BlockSpec):
    """The Fig. 4(b) worked example: 8-bit input, ternary (2-bit) output."""

    input_scale: float = 0.75
    output_scale: float = 0.2

    def __post_init__(self) -> None:
        _check_positive_scale(self.input_scale, "input_scale")
        _check_positive_scale(self.output_scale, "output_scale")


@_spec_family("gelu/naive-si")
@dataclass(frozen=True)
class NaiveSIGeluSpec(BlockSpec):
    """Naive (selection-only) SI GELU — the monotone-envelope baseline.

    Defaults mirror the Fig. 2 protocol: the input stream is ``32x`` the
    output BSL, its grid covers ``[-8, 8]`` and the output step is
    ``1.2 / output_length``.  ``None`` fields resolve at build time.
    """

    output_length: int = 8
    input_length: Optional[int] = None
    input_scale: Optional[float] = None
    output_scale: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive_int(self.output_length, "output_length")
        if self.input_length is not None:
            check_positive_int(self.input_length, "input_length")
        _check_positive_scale(self.input_scale, "input_scale")
        _check_positive_scale(self.output_scale, "output_scale")


# ---------------------------------------------------------------------------
# FSM nonlinear units (tanh / relu / gelu) — stochastic baselines
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _FsmUnitSpec(BlockSpec):
    """Shared fields of the saturating-counter FSM units.

    The stochastic lifecycle parameters (bitstream length, encode seed,
    input scale) live in the spec so the uniform ``evaluate(values)``
    protocol needs no extra arguments — the fix for the historical
    ``evaluate`` signature drift between the block families.
    """

    num_states: int = 16
    bitstream_length: int = 256
    seed: int = 0
    input_scale: float = 1.0
    #: Optional SC kernel-backend name (``"numpy"``/``"threaded"``/``"numba"``)
    #: the block's stochastic simulation runs under; ``None`` keeps the
    #: process-wide selection.  Backends are bit-identical, so this field
    #: changes wall-clock only — never results.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_states, "num_states")
        if self.num_states < 2:
            raise ValueError("an FSM unit needs at least 2 states")
        check_positive_int(self.bitstream_length, "bitstream_length")
        _check_positive_scale(self.input_scale, "input_scale")
        _check_backend_name(self.backend)


@_spec_family("gelu/fsm")
@dataclass(frozen=True)
class FsmGeluSpec(_FsmUnitSpec):
    """FSM GELU baseline (Fig. 2a); inputs span roughly ``[-4, 4]``."""

    input_scale: float = 4.0


@_spec_family("tanh/fsm")
@dataclass(frozen=True)
class FsmTanhSpec(_FsmUnitSpec):
    """Classic stanh FSM: approximates ``tanh(num_states / 2 * x)``."""

    num_states: int = 8


@_spec_family("relu/fsm")
@dataclass(frozen=True)
class FsmReluSpec(_FsmUnitSpec):
    """FSM ReLU (the SC-DCNN / HEIF style design)."""

    num_states: int = 16


# ---------------------------------------------------------------------------
# gelu/bernstein — the ReSC-style polynomial baseline of [18]
# ---------------------------------------------------------------------------


@_spec_family("gelu/bernstein")
@dataclass(frozen=True)
class BernsteinGeluSpec(BlockSpec):
    """Bernstein-polynomial GELU (Table III / Fig. 7 baseline)."""

    num_terms: int = 4
    input_range: float = 3.0
    bitstream_length: int = 1024
    seed: int = 0
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_terms, "num_terms")
        if self.num_terms < 2:
            raise ValueError("a Bernstein unit needs at least 2 terms")
        check_positive_int(self.bitstream_length, "bitstream_length")
        _check_positive_scale(self.input_range, "input_range")
        _check_backend_name(self.backend)


# ---------------------------------------------------------------------------
# Calibration helpers (spec-parameter fitting; pure numpy)
# ---------------------------------------------------------------------------


def calibrate_alpha_x(logits: np.ndarray, bx: int, coverage: float = 0.999) -> float:
    """Choose the input scaling factor so the given coverage of logits fits.

    The attention logits collected from the ViT have a heavy-tailed
    distribution; clipping the extreme tail (rather than covering the
    absolute max) gives a finer grid and lower overall MAE, the usual
    calibration practice for post-training quantisation.
    """
    check_positive_int(bx, "bx")
    logits = np.abs(np.asarray(logits, dtype=float)).reshape(-1)
    if logits.size == 0:
        raise ValueError("need at least one logit sample")
    bound = float(np.quantile(logits, coverage))
    bound = max(bound, 1e-6)
    return 2.0 * bound / bx


def calibrate_alpha_y(by: int, m: int, headroom: float = 2.0) -> float:
    """Choose the output scaling factor for softmax values.

    Softmax outputs over an ``m``-long row concentrate around ``1/m`` with a
    few dominant entries, so the representable range is set to a small
    multiple of ``8/m`` and widened slowly (fourth root) as the BSL grows:
    longer streams spend most of their extra levels on resolution, which is
    what minimises MAE on realistic attention rows.  The DSE sweep of Fig. 8
    additionally treats a multiplier on this value as a free parameter.
    """
    check_positive_int(by, "by")
    check_positive_int(m, "m")
    if headroom <= 0:
        raise ValueError("headroom must be positive")
    base_range = min(0.5, headroom * 8.0 / m)
    target_max = base_range * (by / 8.0) ** 0.25
    return 2.0 * target_max / by
