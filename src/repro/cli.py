"""Unified reproduction CLI — ``python -m repro <subcommand>``.

Every paper artifact is reachable from one entry point, driven through the
sweep orchestrator (:mod:`repro.runner`), so any sweep can be parallelised
(``--workers N``), resumed (``--cache-dir``), and reproduced byte-for-byte
against the serial path (``--workers 1``):

* ``dse``        — the Fig. 8 softmax design-space exploration + Pareto front,
* ``gelu-sweep`` — the Fig. 7 GELU BSL/degree sweep,
* ``tables``     — the table benches (currently Table IV),
* ``eval``       — batched end-to-end SC-ViT dataset evaluation (accuracy vs
  BSL / fault-rate grids through :mod:`repro.eval_pipeline`),
* ``serve``      — the async dynamic-batching inference service
  (:mod:`repro.serve`): JSON-lines-on-stdio or localhost-HTTP transports
  over a micro-batching, result-cached SC-ViT engine — in-process thread
  pool or sharded worker processes, described declaratively by a
  :class:`repro.serve.ServeSpec` file (``--spec deployment.json``),
* ``run``        — execute declarative spec files
  (:class:`repro.blocks.ExperimentSpec`, ``serve/deployment``,
  ``serve/scenario``, ``fabric/design`` or ``fabric/run`` JSON, routed by
  their ``kind`` tag; see ``examples/specs/``),
* ``scenario``   — declarative resilience scenarios (:mod:`repro.scenarios`):
  replay a deterministic or recorded request stream against a deployment
  while firing timed degradations (shard kills, cache loss, fault storms,
  queue bursts) and judging declarative assertions (bit-identity vs
  offline eval, SLO ceilings, recovery deadlines),
* ``fabric``     — the bitstream-configurable accelerator-fabric simulator
  (:mod:`repro.fabric`): place-and-route a block schedule onto a tile
  grid, compile the configured routing graph and execute it on the packed
  SC engine, cross-checked bit-for-bit against the golden block path
  (``fabric/design`` summaries, ``fabric/run`` cached executions),
* ``blocks``     — list the registered circuit-block families
  (:mod:`repro.blocks`), their encodings, parameter schemas, hardware
  cost and fabric mappability, or regenerate the Table I capability
  matrix,
* ``bench``      — the packed-engine perf regression harness (+ floor check),
* ``trace``      — summarize an exported telemetry trace
  (:mod:`repro.telemetry`): span stats by name and by process, instant
  events and the top-N kernel-profile rows from a Chrome-trace/Perfetto
  JSON or JSONL export,
* ``verify``     — self-checks: parallel == serial, cache round-trip,
  batched eval == per-image eval, served == offline (the batcher
  invariant).

Global ``--log-level``/``--log-json`` configure the structured ``repro``
logger (:mod:`repro.telemetry.logging`) — all diagnostic chatter goes to
stderr through it, stdout stays reserved for results and transports.

Test vectors default to the same sizes/seeds the ``benchmarks/`` scripts
use, so CLI runs and bench runs share cache entries.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path
from typing import Any, List, Optional, Sequence

__all__ = ["main", "build_parser"]

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: DSE grid presets.  ``full`` is the paper's 2916-design grid; ``small``
#: matches the reduced grid of the Fig. 8 bench; ``tiny`` is an 8-design
#: grid for CI smoke runs and tests.
DSE_GRIDS = {
    "full": {},
    "small": {
        "by_choices": (4, 8, 16),
        "iteration_choices": (2, 3),
        "s1_choices": (8, 32, 128),
        "s2_choices": (2, 8, 32),
        "alpha_y_multipliers": (0.5, 1.0),
    },
    "tiny": {
        "by_choices": (4, 8),
        "iteration_choices": (2,),
        "s1_choices": (16, 64),
        "s2_choices": (4, 16),
        "alpha_y_multipliers": (1.0,),
    },
}


# ---------------------------------------------------------------------------
# Shared option plumbing
# ---------------------------------------------------------------------------


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial in-process fallback, 0 = all CPUs)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    parser.add_argument("--out", type=Path, default=None, help="write results as JSON to this path")
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")


def _make_cache(args: argparse.Namespace) -> Optional[Any]:
    if args.no_cache:
        return None
    from repro.runner.cache import ResultCache

    return ResultCache(args.cache_dir)


def _make_reporter(args: argparse.Namespace, label: str) -> Any:
    from repro.evaluation.reporting import ProgressReporter

    return ProgressReporter(label, quiet=args.quiet)


def _print_table(name: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
    from repro.evaluation.reporting import format_table

    print(f"\n=== {name} ===")
    print(format_table(headers, rows))


def _write_json(out: Optional[Path], payload: dict) -> None:
    if out is None:
        return
    from repro.evaluation.reporting import save_json_report

    save_json_report(out, payload)
    print(f"wrote {out}")


def _print_cache_counters(cache: Optional[Any]) -> None:
    """One result-cache accounting line (hits/misses/stores) per command."""
    counters = getattr(cache, "counters", None)
    if not callable(counters):
        return
    c = counters()
    print(
        f"result cache: {c['hits']} hits, {c['misses']} misses, "
        f"{c['stores']} stores"
    )


# ---------------------------------------------------------------------------
# dse — Fig. 8 design-space exploration
# ---------------------------------------------------------------------------


def cmd_dse(args: argparse.Namespace) -> int:
    from repro.core.dse import SoftmaxDesignSpace
    from repro.evaluation.vectors import attention_logit_vectors

    cache = _make_cache(args)
    # Generate the bench's full 200-row vector set and slice it, rather than
    # generating ``rows`` vectors directly: attention_logit_vectors is not
    # prefix-stable across sizes, and the Fig. 8 bench evaluates on
    # ``vectors(200)[:100]`` — slicing the same way is what makes CLI and
    # bench runs share cache entries.
    base_rows = max(args.rows, 200)
    logits = attention_logit_vectors(base_rows, args.m, seed=args.vectors_seed)[: args.rows]
    grid_kwargs = DSE_GRIDS[args.grid]

    payload: dict = {"grid": args.grid, "rows": args.rows, "spaces": {}}
    summary_rows = []
    pareto_rows = []
    for bx in args.bx:
        space = SoftmaxDesignSpace(bx=bx, test_vectors=logits, **grid_kwargs)
        reporter = _make_reporter(args, f"dse Bx={bx}")
        points = space.explore(
            max_designs=args.max_designs,
            workers=args.workers,
            cache=cache,
            reporter=reporter,
        )
        stats = space.last_run_stats
        pareto = space.pareto_points(points)
        feasible = [p for p in points if p.feasible]
        summary_rows.append(
            (
                f"Bx={bx}",
                space.grid_size(),
                len(points),
                len(feasible),
                len(pareto),
                stats.evaluated,
                stats.cache_hits,
            )
        )
        for point in pareto:
            pareto_rows.append((f"Bx={bx}", *point.as_row()))
        payload["spaces"][str(bx)] = {
            "grid_size": space.grid_size(),
            "explored": len(points),
            "feasible": len(feasible),
            "evaluated": stats.evaluated,
            "cache_hits": stats.cache_hits,
            "workers": stats.workers,
            "seconds": stats.seconds,
            "pareto": [list(point.as_row()) for point in pareto],
        }

    _print_table(
        "dse summary",
        ["Space", "Grid size", "Explored", "Feasible", "Pareto", "Evaluated", "Cache hits"],
        summary_rows,
    )
    if pareto_rows:
        _print_table(
            "dse pareto front",
            ["Space", "By", "s1", "s2", "k", "Area (um2)", "Delay (ns)", "ADP", "MAE"],
            pareto_rows,
        )
    _print_cache_counters(cache)
    _write_json(args.out, payload)
    return 0


# ---------------------------------------------------------------------------
# gelu-sweep — Fig. 7
# ---------------------------------------------------------------------------


def cmd_gelu_sweep(args: argparse.Namespace) -> int:
    from repro.evaluation.vectors import gelu_input_vectors
    from repro.runner.tasks import fig7_gelu_rows

    samples = gelu_input_vectors(args.samples, seed=args.vectors_seed)
    cache = _make_cache(args)
    rows = fig7_gelu_rows(
        samples,
        workers=args.workers,
        cache=cache,
        reporter=_make_reporter(args, "gelu-sweep"),
    )
    stats = fig7_gelu_rows.last_run_stats
    headers = ["Series", "BSL", "ADP (um2*ns)", "MAE"]
    _print_table("fig7 gelu sweep", headers, rows)
    print(f"[{stats.summary()}]")
    _print_cache_counters(cache)
    _write_json(args.out, {"headers": headers, "rows": [list(r) for r in rows]})
    return 0


# ---------------------------------------------------------------------------
# tables — the table benches
# ---------------------------------------------------------------------------


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.evaluation.vectors import attention_logit_vectors
    from repro.runner.tasks import table4_rows

    if args.table != "table4":  # future-proofing; argparse already restricts
        raise SystemExit(f"unknown table {args.table!r}")
    # Slice from the bench's 200-row set (see cmd_dse) so reduced-row runs
    # still evaluate on a prefix of the exact vectors the bench uses.
    base_rows = max(args.rows, 200)
    logits = attention_logit_vectors(base_rows, 64, seed=args.vectors_seed)[: args.rows]
    cache = _make_cache(args)
    rows = table4_rows(
        logits,
        workers=args.workers,
        cache=cache,
        reporter=_make_reporter(args, "table4"),
    )
    stats = table4_rows.last_run_stats
    headers = ["Design", "Area (um2)", "Delay (ns)", "ADP (um2*ns)", "MAE"]
    _print_table("table4 softmax blocks", headers, rows)
    print(f"[{stats.summary()}]")
    _print_cache_counters(cache)
    _write_json(args.out, {"headers": headers, "rows": [list(r) for r in rows]})
    return 0


# ---------------------------------------------------------------------------
# eval — batched end-to-end SC-ViT dataset evaluation
# ---------------------------------------------------------------------------


def _build_eval_model(args: argparse.Namespace, num_classes: int):
    from repro.nn.vit import CompactVisionTransformer, ViTConfig

    vit = ViTConfig(
        image_size=16,
        patch_size=4,
        embed_dim=args.embed_dim,
        num_layers=args.layers,
        num_heads=args.heads,
        num_classes=num_classes,
        norm="bn",
        seed=args.model_seed,
    )
    model = CompactVisionTransformer(vit)
    if args.checkpoint is not None:
        from repro.nn.serialization import load_model

        load_model(args.checkpoint, model)
        print(f"loaded checkpoint {args.checkpoint}")
    return model


def cmd_eval(args: argparse.Namespace) -> int:
    from repro.eval_pipeline import EvalTask, eval_grid, run_eval_grid
    from repro.training.datasets import synthetic_cifar10, synthetic_cifar100

    dataset_fn = {"cifar10": synthetic_cifar10, "cifar100": synthetic_cifar100}[args.dataset]
    num_classes = {"cifar10": 10, "cifar100": 100}[args.dataset]
    train, test = dataset_fn(
        train_size=args.train_size, test_size=args.test_size, seed=args.data_seed
    )
    available = {"train": (train.images, train.labels), "test": (test.images, test.labels)}
    model = _build_eval_model(args, num_classes)

    task = EvalTask(
        model=model,
        splits={name: available[name] for name in args.splits},
        calibration_images=train.images[: args.calibration_images],
        max_images=args.max_images,
        batch_size=args.batch_size,
        backend=args.backend,
    )
    configs = eval_grid(
        by_grid=args.by_grid,
        s1=args.s1,
        s2=args.s2,
        k=args.k,
        gelu_bsl=args.gelu_bsl,
        flip_probs=args.flip_probs,
        splits=args.splits,
        fault_seed=args.fault_seed,
    )
    reporter = _make_reporter(args, "eval")
    cache = _make_cache(args)
    results = run_eval_grid(
        task,
        configs,
        workers=args.workers,
        cache=cache,
        reporter=reporter,
    )
    stats = run_eval_grid.last_run_stats

    headers = ["Split", "[By, s1, s2, k]", "GELU BSL", "Flip prob", "Accuracy (%)", "Images"]
    rows = []
    for config, result in zip(configs, results):
        rows.append(
            (
                result.split,
                result.softmax_config.describe(),
                "exact" if result.gelu_output_bsl is None else result.gelu_output_bsl,
                config["flip_prob"],
                round(result.accuracy, 2),
                result.num_images,
            )
        )
    _print_table("eval accuracy grid", headers, rows)
    print(f"[{stats.summary()}]")
    print(f"re-evaluations: {stats.evaluated} ({stats.cache_hits} served from cache)")
    _print_cache_counters(cache)
    # Wall-clock throughput over the whole grid, from the reporter's timer
    # (the same span the progress line covered).  Cache hits count images
    # too: serving a split from cache is the throughput the user got.
    total_images = sum(result.num_images for result in results)
    elapsed = reporter.elapsed_seconds
    throughput = total_images / elapsed if elapsed > 0 else float("inf")
    print(
        f"throughput: {throughput:.1f} images/s "
        f"({total_images} images across {stats.total} configs in {elapsed:.2f}s wall-clock)"
    )

    exit_code = 0
    if args.verify_batched:
        # Cover every distinct fault rate, not just the (fault-free) first
        # grid entry: the fault path is exactly where batched/per-image
        # divergence risk lives (per-image mask seeding, site sequencing).
        seen_flips = set()
        for config, result in zip(configs, results):
            if config["flip_prob"] in seen_flips:
                continue
            seen_flips.add(config["flip_prob"])
            exit_code |= _verify_batched_against_per_image(task, config, result)

    _write_json(
        args.out,
        {
            "dataset": args.dataset,
            "headers": headers,
            "rows": [list(r) for r in rows],
            "stats": {
                "total": stats.total,
                "evaluated": stats.evaluated,
                "cache_hits": stats.cache_hits,
                "workers": stats.workers,
                "seconds": stats.seconds,
                "total_images": total_images,
                "wall_seconds": elapsed,
                "throughput_img_per_s": None if elapsed <= 0 else throughput,
            },
        },
    )
    return exit_code


def _verify_batched_against_per_image(task, config, batched_result) -> int:
    """Re-run one grid config through the per-image shim and compare bits."""
    import numpy as np

    from repro.core.sc_vit import ScViTEvaluator
    from repro.training.datasets import DatasetSplit

    evaluator = ScViTEvaluator(
        task.model,
        task.softmax_config(config),
        gelu_output_bsl=config.get("gelu_bsl"),
        calibration_logits=task._calibration(),
        flip_prob=float(config.get("flip_prob", 0.0)),
        fault_seed=int(config.get("fault_seed", 0)),
    )
    images, labels = task.splits[config["split"]]
    split = DatasetSplit(images=images, labels=labels)
    per_image = evaluator.pipeline.evaluate(split, max_images=task.max_images, batch_size=1)
    if (
        np.array_equal(per_image.predictions, batched_result.predictions)
        and per_image.accuracy == batched_result.accuracy
    ):
        print(
            f"PASS batched == per-image ({per_image.num_images} images, "
            f"config {config['split']}/{task.softmax_config(config).describe()}, "
            f"flip_prob={config.get('flip_prob', 0.0)})"
        )
        return 0
    print("FAIL batched evaluation differs from the serial per-image path", file=sys.stderr)
    return 1


# ---------------------------------------------------------------------------
# run — declarative spec files (experiments, deployments, scenarios)
# ---------------------------------------------------------------------------


def _load_serve_run_spec(path: Path, payload: dict) -> Any:
    from repro.serve.specs import ServeSpec

    return ServeSpec.from_dict(payload)


def _serve_run_argv(path: Path, spec: Any, overrides: dict) -> List[str]:
    return ["serve", "--spec", str(path)]


def _load_scenario_run_spec(path: Path, payload: dict) -> Any:
    from repro.scenarios import ScenarioSpec

    return ScenarioSpec.from_dict(payload)


def _scenario_run_argv(path: Path, spec: Any, overrides: dict) -> List[str]:
    argv = ["scenario", str(path)]
    if overrides.get("cache_dir") is not None:
        argv += ["--cache-dir", str(overrides["cache_dir"])]
    if overrides.get("out") is not None:
        argv += ["--out", str(overrides["out"])]
    if overrides.get("quiet"):
        argv.append("--quiet")
    return argv


def _load_fabric_design_run_spec(path: Path, payload: dict) -> Any:
    from repro.fabric import FabricSpec

    return FabricSpec.from_dict(payload)


def _load_fabric_run_spec(path: Path, payload: dict) -> Any:
    from repro.fabric import FabricRunSpec

    return FabricRunSpec.from_dict(payload)


def _fabric_run_argv(path: Path, spec: Any, overrides: dict) -> List[str]:
    argv = ["fabric", str(path)]
    if overrides.get("cache_dir") is not None:
        argv += ["--cache-dir", str(overrides["cache_dir"])]
    if overrides.get("out") is not None:
        argv += ["--out", str(overrides["out"])]
    if overrides.get("quiet"):
        argv.append("--quiet")
    return argv


#: The ``repro run`` sniff table: JSON ``kind`` tag -> (loader, argv builder).
#: Adding another kind is one entry here, not another if/elif chain — and
#: the unknown-kind error enumerates this table, so new kinds appear in it
#: automatically; files without a ``kind`` tag are classic
#: :class:`ExperimentSpec` documents.
RUN_SPEC_KINDS = {
    "serve/deployment": (_load_serve_run_spec, _serve_run_argv),
    "serve/scenario": (_load_scenario_run_spec, _scenario_run_argv),
    "fabric/design": (_load_fabric_design_run_spec, _fabric_run_argv),
    "fabric/run": (_load_fabric_run_spec, _fabric_run_argv),
}


def cmd_run(args: argparse.Namespace) -> int:
    from repro.blocks.experiment import ExperimentSpec

    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.cache_dir is not None:
        overrides["cache_dir"] = args.cache_dir
    if args.out is not None:
        overrides["out"] = args.out
    if args.quiet:
        overrides["quiet"] = True

    if args.out is not None and len(args.spec) > 1:
        raise SystemExit(
            "--out overrides a single spec's output path and would be overwritten "
            "per spec; with multiple spec files set runner.out inside each file"
        )

    parser = build_parser()
    # Load and validate every spec before running any: a typo in the third
    # file should not surface after an hour of sweeping the first two.  The
    # kind tag routes through RUN_SPEC_KINDS; untagged files are
    # ExperimentSpec documents, and an unknown tag is an explicit error
    # (silently treating it as an experiment would bury the typo).
    entries: List[Any] = []  # (spec, argv_builder or None)
    try:
        for path in args.spec:
            payload = json.loads(Path(path).read_text())
            kind = payload.get("kind") if isinstance(payload, dict) else None
            if kind in RUN_SPEC_KINDS:
                loader, argv_builder = RUN_SPEC_KINDS[kind]
                entries.append((loader(path, payload), argv_builder))
            elif kind is not None:
                known = ", ".join(sorted(RUN_SPEC_KINDS))
                raise ValueError(
                    f"{path}: unknown spec kind {kind!r}; expected one of "
                    f"{known}, or an experiment spec without a kind tag"
                )
            else:
                entries.append((ExperimentSpec.from_file(path), None))
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    for path, (spec, argv_builder) in zip(args.spec, entries):
        if argv_builder is not None:
            continue
        try:
            spec.validate_options(parser)
        except ValueError as exc:
            raise SystemExit(f"{path}: {exc}") from exc

    exit_code = 0
    for path, (spec, argv_builder) in zip(args.spec, entries):
        if argv_builder is not None:
            argv = argv_builder(path, spec, overrides)
        else:
            argv = spec.to_argv(overrides)
        print(f"== {spec.name or getattr(spec, 'task', 'serve')} ({path}) ==")
        if spec.description:
            print(spec.description)
        print(f"-> repro {' '.join(argv)}")
        run_args = parser.parse_args(argv)
        exit_code |= int(run_args.func(run_args) or 0)
    return exit_code


# ---------------------------------------------------------------------------
# scenario — declarative resilience scenarios over the serving tier
# ---------------------------------------------------------------------------


def cmd_scenario(args: argparse.Namespace) -> int:
    from repro.runner.runner import ParallelSweepRunner
    from repro.runner.tasks import ScenarioTask
    from repro.scenarios import ScenarioSpec

    specs = []
    try:
        for path in args.spec:
            spec = ScenarioSpec.from_file(path)
            if args.engine is not None and args.engine != spec.deployment.engine:
                # An explicit engine override is a different deployment and
                # therefore a different cache identity — exactly right: the
                # CI matrix runs the same scenario file per engine family.
                spec = spec.with_updates(
                    deployment=spec.deployment.with_updates(engine=args.engine)
                )
            specs.append(spec)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc

    cache = _make_cache(args)
    trace_dir = None if args.trace_dir is None else str(args.trace_dir)
    results = []
    evaluated = cache_hits = 0
    exit_code = 0
    for path, spec in zip(args.spec, specs):
        label = spec.name or Path(path).stem
        print(f"== scenario {label} ({path}) ==")
        if spec.description:
            print(spec.description)
        # Scenarios drive a whole service (often multi-process) each, so
        # the sweep runs serially; the runner still provides the shared
        # content-addressed cache and its hit accounting.
        runner = ParallelSweepRunner(
            ScenarioTask(base_dir=str(Path(path).parent), trace_dir=trace_dir),
            workers=1,
            cache=cache,
            reporter=_make_reporter(args, f"scenario {label}"),
        )
        result = runner.run([spec.to_dict()])[0]
        evaluated += runner.stats.evaluated
        cache_hits += runner.stats.cache_hits
        results.append(result)
        _print_scenario_result(result, cached=runner.stats.cache_hits > 0)
        if trace_dir is not None:
            # The exported trace is a side artifact (never part of the
            # cached payload); a cached result produces no new trace.
            stem = (spec.name or "scenario").replace("/", "_")
            trace_path = Path(trace_dir) / f"{stem}.trace.json"
            if trace_path.exists():
                print(f"trace: {trace_path}")
        if not result["ok"]:
            exit_code = 1
    _print_cache_counters(cache)
    _write_scenario_job_summary(results)
    _write_json(
        args.out,
        {
            "scenarios": results,
            "stats": {"evaluated": evaluated, "cache_hits": cache_hits},
        },
    )
    return exit_code


def _print_scenario_result(result: dict, cached: bool = False) -> None:
    requests = result["requests"]
    latency = result["latency"]
    source = " (cached result)" if cached else ""
    print(
        f"{result['workload']['arrival']} x{result['workload']['requests']}: "
        f"{requests['completed']} completed, {requests['rejected']} rejected, "
        f"{requests['timeouts']} timeouts, {requests['errors']} errors in "
        f"{result['elapsed_s']:.2f}s ({result['throughput_per_s']:.1f} req/s){source}"
    )
    if latency["p99_ms"] is not None:
        print(
            f"latency p50/p95/p99: {latency['p50_ms']:.2f}/"
            f"{latency['p95_ms']:.2f}/{latency['p99_ms']:.2f} ms"
        )
    rows = [
        (
            v["check"],
            "-" if v["value"] is None else f"{v['value']:g}",
            "-" if v["measured"] is None else f"{v['measured']:.2f}",
            "pass" if v["passed"] else "FAIL",
        )
        for v in result["assertions"]
    ]
    _print_table("assertions", ["check", "bound", "measured", "status"], rows)
    verdict = "PASS" if result["ok"] else "FAIL"
    print(f"scenario {result['name'] or '<unnamed>'}: {verdict}")


def _write_scenario_job_summary(results: Sequence[dict]) -> None:
    """One job-summary section per scenario: verdicts + the stats timeline."""
    import os

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path or not results:
        return
    from repro.evaluation.reporting import format_markdown_table

    with open(summary_path, "a") as handle:
        for result in results:
            verdict = "all assertions pass" if result["ok"] else "ASSERTIONS FAILED"
            handle.write(f"### Scenario `{result['name'] or 'unnamed'}` — {verdict}\n\n")
            requests = result["requests"]
            handle.write(
                f"- {result['workload']['arrival']} arrivals x"
                f"{result['workload']['requests']}: {requests['completed']} completed, "
                f"{requests['rejected']} rejected, {requests['timeouts']} timeouts, "
                f"{requests['errors']} errors, {requests['bit_mismatches']} bit mismatches\n"
            )
            if result["deaths"] or result["recoveries_ms"]:
                recoveries = ", ".join(
                    "never" if r is None else f"{r:.0f}ms" for r in result["recoveries_ms"]
                )
                handle.write(
                    f"- deaths: {result['deaths']}, recoveries: {recoveries or 'n/a'}, "
                    f"autoscale actions: {result['scale_actions']}\n"
                )
            handle.write("\n")
            assertion_rows = [
                (
                    v["check"],
                    "-" if v["value"] is None else f"{v['value']:g}",
                    "-" if v["measured"] is None else f"{v['measured']:.2f}",
                    "pass" if v["passed"] else "**FAIL**",
                )
                for v in result["assertions"]
            ]
            handle.write(
                format_markdown_table(
                    ["check", "bound", "measured", "status"], assertion_rows
                )
            )
            handle.write("\n\n")
            timeline_rows = [
                (
                    entry["label"],
                    entry["at_request"],
                    f"{entry['t_s']:.2f}",
                    entry["completed"],
                    entry["rejected"],
                    entry["timeouts"],
                    entry["queue_depth"],
                    "-" if entry["p99_ms"] is None else f"{entry['p99_ms']:.1f}",
                )
                for entry in result["timeline"]
            ]
            handle.write(
                format_markdown_table(
                    ["phase", "at req", "t (s)", "completed", "rejected",
                     "timeouts", "queue", "p99 (ms)"],
                    timeline_rows,
                )
            )
            handle.write("\n\n")
            per_shard = result.get("final_stats", {}).get("engine", {})
            if isinstance(per_shard, dict) and "per_shard" in per_shard:
                shard_rows = [
                    (
                        shard,
                        snap["requests"]["completed"],
                        snap["batching"]["batches"],
                        "-" if snap["latency"]["p99_ms"] is None
                        else f"{snap['latency']['p99_ms']:.1f}",
                    )
                    for shard, snap in sorted(per_shard["per_shard"].items())
                ]
                merged = per_shard.get("merged")
                if merged:
                    shard_rows.append(
                        (
                            "merged",
                            merged["requests"]["completed"],
                            merged["batching"]["batches"],
                            "-" if merged["latency"]["p99_ms"] is None
                            else f"{merged['latency']['p99_ms']:.1f}",
                        )
                    )
                handle.write(
                    format_markdown_table(
                        ["shard", "completed", "batches", "p99 (ms)"], shard_rows
                    )
                )
                handle.write("\n\n")


# ---------------------------------------------------------------------------
# fabric — the bitstream-configurable accelerator-fabric simulator
# ---------------------------------------------------------------------------


def cmd_fabric(args: argparse.Namespace) -> int:
    from repro.fabric import FabricRunSpec, FabricSpec, mappable_families
    from repro.runner.runner import ParallelSweepRunner
    from repro.runner.tasks import FabricTask

    designs = []
    runs = []
    try:
        for path in args.spec:
            payload = json.loads(Path(path).read_text())
            if FabricSpec.sniff(payload):
                designs.append((path, FabricSpec.from_dict(payload)))
            elif FabricRunSpec.sniff(payload):
                runs.append((path, FabricRunSpec.from_dict(payload)))
            else:
                kind = payload.get("kind") if isinstance(payload, dict) else None
                raise ValueError(
                    f"{path}: expected a fabric/design or fabric/run spec, got kind {kind!r}"
                )
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(str(exc)) from exc

    exit_code = 0
    out_payload: dict = {"designs": [], "runs": []}

    for path, design in designs:
        families = sorted(name for name, ok in mappable_families(design).items() if ok)
        print(f"== fabric design {design.name or Path(path).stem} ({path}) ==")
        if design.description:
            print(design.description)
        print(
            f"grid {design.rows}x{design.cols} ({design.mem_cols} memory column(s), "
            f"{len(design.pe_tiles)} PE tiles), word {design.word_bits} bits, "
            f"payload capacity {design.payload_capacity_bytes} bytes/tile"
        )
        print(f"mappable families ({len(families)}): {', '.join(families)}")
        out_payload["designs"].append(
            {
                "spec": design.to_dict(),
                "pe_tiles": len(design.pe_tiles),
                "payload_capacity_bytes": design.payload_capacity_bytes,
                "mappable_families": list(families),
            }
        )

    cache = _make_cache(args) if runs else None
    evaluated = cache_hits = 0
    for path, spec in runs:
        label = spec.name or Path(path).stem
        print(f"== fabric run {label} ({path}) ==")
        if spec.description:
            print(spec.description)
        # Each run drives a full place-and-route + configure + compile +
        # execute cycle, so the sweep runs serially; the runner still
        # provides the shared content-addressed cache and hit accounting.
        runner = ParallelSweepRunner(
            FabricTask(),
            workers=1,
            cache=cache,
            reporter=_make_reporter(args, f"fabric {label}"),
        )
        result = runner.run([spec.to_dict()])[0]
        evaluated += runner.stats.evaluated
        cache_hits += runner.stats.cache_hits
        _print_fabric_result(result, cached=runner.stats.cache_hits > 0)
        out_payload["runs"].append(result)
        if not result["bit_identical"]:
            exit_code = 1
    if runs:
        out_payload["stats"] = {"evaluated": evaluated, "cache_hits": cache_hits}
        _print_cache_counters(cache)
    _write_json(args.out, out_payload)
    return exit_code


def _print_fabric_result(result: dict, cached: bool = False) -> None:
    source = " (cached result)" if cached else ""
    bitstream = result["bitstream"]
    timings = result["timings_ms"]
    print(
        f"grid {result['grid']}: {len(result['slots'])} slot(s), "
        f"{bitstream['writes']} config writes ({bitstream['bytes']} bytes, "
        f"digest {bitstream['digest'][:12]}...){source}"
    )
    print(
        f"timings: place+route {timings['place_route']:.2f} ms, "
        f"configure+compile {timings['configure_compile']:.2f} ms, "
        f"execute {timings['execute']:.2f} ms"
    )
    rows = [
        (
            slot["slot"],
            slot["tile"],
            slot["family"],
            slot["rows"],
            slot["output_digest"][:12] + "...",
            "pass" if slot["bit_identical"] else "FAIL",
        )
        for slot in result["slots"]
    ]
    _print_table(
        "fabric slots vs golden blocks.build path",
        ["slot", "tile", "family", "rows", "output digest", "bit-identity"],
        rows,
    )
    area = result.get("area_um2")
    if area is not None:
        print(f"synthesized fabric area: {area:.1f} um2")
    verdict = "PASS" if result["bit_identical"] else "FAIL"
    print(f"fabric run {result['name'] or '<unnamed>'}: bit-identity {verdict}")


# ---------------------------------------------------------------------------
# serve — the async dynamic-batching inference service
# ---------------------------------------------------------------------------


def _serve_spec_from_args(args: argparse.Namespace):
    """A :class:`ServeSpec` equivalent to the legacy flag set.

    The flags are a documented-deprecated shim: every deployment is a spec
    internally, flags just fill one in.  ``--spec`` wins wholesale — a
    deployment file is the complete description, so mixing it with model
    or engine flags would make the running service diverge from the
    artifact that claims to describe it.
    """
    from repro.serve.specs import ServeSpec

    if args.spec is not None:
        return ServeSpec.from_file(args.spec)
    return ServeSpec(
        dataset=args.dataset,
        train_size=args.train_size,
        data_seed=args.data_seed,
        layers=args.layers,
        embed_dim=args.embed_dim,
        heads=args.heads,
        model_seed=args.model_seed,
        checkpoint=None if args.checkpoint is None else str(args.checkpoint),
        calibration_images=args.calibration_images,
        by=args.by,
        s1=args.s1,
        s2=args.s2,
        k=args.k,
        gelu_bsl=args.gelu_bsl,
        flip_prob=args.flip_prob,
        fault_seed=args.fault_seed,
        backend=args.backend,
        engine=args.engine,
        workers=args.serve_workers,
        max_shards=args.max_shards,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        timeout_s=args.timeout_s,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        transport=args.transport,
        host=args.host,
        port=args.port,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.deploy import build_deployment
    from repro.serve.transport import serve_http, serve_stdio
    from repro.telemetry.logging import get_logger

    # Structured logging to stderr: stdout belongs to the JSON-lines
    # transport, so operator chatter must never interleave with protocol
    # responses.  ``repro --log-level``/``--log-json`` control the format.
    log = get_logger("serve")

    try:
        spec = _serve_spec_from_args(args)
        deployment = build_deployment(spec)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    if args.spec is not None:
        log.info("deployment_spec", path=str(args.spec))
    if spec.checkpoint is not None:
        log.info("checkpoint_loaded", path=spec.checkpoint)
    service = deployment.service
    cache = deployment.cache

    async def run() -> None:
        async with service:
            log.info(
                "serving",
                dataset=spec.dataset,
                engine=spec.engine,
                workers=spec.workers,
                max_shards=spec.max_shards,
                flip_prob=spec.flip_prob,
                backend=spec.backend or "default",
                max_batch=spec.max_batch,
                max_wait_ms=spec.max_wait_ms,
                queue=spec.max_queue,
                cache="off" if cache is None else spec.cache_dir,
                telemetry=spec.telemetry,
            )
            if spec.transport == "http":
                server = await serve_http(service, spec.host, spec.port)
                address = server.sockets[0].getsockname()
                log.info(
                    "http_listening",
                    url=f"http://{address[0]}:{address[1]}",
                    routes="POST /predict, GET /stats, GET /healthz, GET /metrics",
                )
                try:
                    await server.serve_forever()
                except asyncio.CancelledError:
                    # Ctrl-C cancels this task; absorb it here so shutdown
                    # continues to the final stats summary below and the
                    # service drains cleanly on the way out.
                    pass
                finally:
                    server.close()
                    await server.wait_closed()
            else:
                log.info("stdio_listening", protocol="one request object per line; EOF stops")
                await serve_stdio(service)
            snapshot = service.stats_snapshot()
            log.info(
                "served",
                requests=snapshot["requests"]["completed"],
                cache_hits=snapshot["cache"]["hits"],
                batches=snapshot["batching"]["batches"],
                mean_batch_size=round(snapshot["batching"]["mean_batch_size"], 1),
            )

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        log.info("interrupted")
    return 0


# ---------------------------------------------------------------------------
# blocks — the circuit-block registry catalog
# ---------------------------------------------------------------------------


def _format_default(value: Any) -> str:
    if value is ...:
        return "<required>"
    if value is None:
        return "auto"
    return repr(value)


def cmd_blocks(args: argparse.Namespace) -> int:
    import repro.blocks as blocks
    from repro.fabric import fabric_mappable

    if args.table1:
        # fabric_mappable is derived per design from the registry — a design
        # maps onto the fabric when every registered family carrying its
        # label does (no hand-maintained list to drift).
        design_mappable: dict = {}
        for name in blocks.names():
            capability = blocks.get(name).capability
            if capability is None:
                continue
            design = capability.design
            design_mappable[design] = design_mappable.get(design, True) and fabric_mappable(name)
        rows = [
            (
                row.design,
                row.supported_model,
                row.encoding_format,
                ", ".join(row.supported_functions),
                row.implementation_method,
                "yes" if design_mappable.get(row.design, False) else "no",
            )
            for row in blocks.capability_matrix()
        ]
        _print_table(
            "table1 capability matrix (from the block registry)",
            ["SC design", "Model", "Encoding", "Functions", "Method", "Fabric-mappable"],
            rows,
        )
        _write_json(
            args.out,
            {"rows": [list(r) for r in rows]},
        )
        return 0

    rows = []
    payload = {"blocks": {}}
    for name in blocks.names():
        entry = blocks.get(name)
        schema = entry.spec_cls.field_defaults()
        params = ", ".join(f"{k}={_format_default(v)}" for k, v in schema.items())
        mappable = fabric_mappable(name)
        # None (not NaN) when synthesis is skipped: NaN is not valid JSON.
        cost = None if args.no_hardware else blocks.build(name).hardware_summary()
        rows.append(
            (
                name,
                entry.function,
                f"{entry.input_encoding} -> {entry.output_encoding}",
                params,
                "n/a" if cost is None else round(cost["area_um2"], 1),
                "n/a" if cost is None else round(cost["delay_ns"], 3),
                "n/a" if cost is None else round(cost["adp"], 1),
                "yes" if mappable else "no",
            )
        )
        payload["blocks"][name] = {
            "function": entry.function,
            "method": entry.method,
            "description": entry.description,
            "input_encoding": entry.input_encoding,
            "output_encoding": entry.output_encoding,
            "parameters": {k: (None if v is ... else v) for k, v in schema.items()},
            "hardware": cost,
            "fabric_mappable": mappable,
            "default_spec": blocks.default_spec(name).to_dict(),
        }
    _print_table(
        "registered circuit blocks (defaults-built hardware cost)",
        ["Family", "Function", "Encoding", "Parameters", "Area (um2)", "Delay (ns)", "ADP", "Fabric"],
        rows,
    )
    _write_json(args.out, payload)
    return 0


# ---------------------------------------------------------------------------
# bench — packed-engine perf regression harness
# ---------------------------------------------------------------------------


def _find_benchmarks_dir(explicit: Optional[Path], required: str = "bench_perf_sc_engine.py") -> Path:
    candidates = []
    if explicit is not None:
        candidates.append(explicit)
    candidates.append(Path.cwd() / "benchmarks")
    import repro

    candidates.append(Path(repro.__file__).resolve().parents[2] / "benchmarks")
    for candidate in candidates:
        if (candidate / required).exists():
            return candidate
    raise SystemExit(f"cannot locate benchmarks/{required}; pass --benchmarks-dir")


def _load_bench_module(benchmarks_dir: Path, filename: str):
    spec = importlib.util.spec_from_file_location(
        filename.rsplit(".", 1)[0], benchmarks_dir / filename
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def cmd_bench(args: argparse.Namespace) -> int:
    exit_code = 0
    if args.suite in ("engine", "all"):
        exit_code |= _bench_engine(args)
    if args.suite in ("serve", "all"):
        exit_code |= _bench_serve(args)
    if args.suite in ("fabric", "all"):
        exit_code |= _bench_fabric(args)
    return exit_code


def _engine_floor_groups(payload: dict) -> list:
    """``(backend, floors, rows_by_name, host)`` groups from any payload shape.

    Handles the three layouts ``--check-floor`` can see: a merged schema-2
    results file (one group per recorded backend), a fresh single-backend
    schema-2 run, and a legacy schema-1 file (treated as the numpy backend).
    """
    if isinstance(payload.get("backends"), dict):
        return [
            (
                name,
                entry.get("floors") or {},
                {row["name"]: row for row in entry.get("benchmarks", [])},
                entry.get("host") or {},
            )
            for name, entry in sorted(payload["backends"].items())
        ]
    backend = payload.get("backend", "numpy")
    return [
        (
            backend,
            payload.get("floors") or {},
            {row["name"]: row for row in payload.get("benchmarks", [])},
            payload.get("host") or {},
        )
    ]


def _bench_engine(args: argparse.Namespace) -> int:
    benchmarks_dir = _find_benchmarks_dir(args.benchmarks_dir)
    harness = _load_bench_module(benchmarks_dir, "bench_perf_sc_engine.py")
    results_path = benchmarks_dir / "results" / "BENCH_sc_engine.json"

    if args.no_run:
        if not results_path.exists():
            raise SystemExit(f"--no-run: no recorded results at {results_path}")
        payload = json.loads(results_path.read_text())
        print(f"checking recorded results at {results_path}")
    else:
        backend = getattr(args, "backend", None)
        if backend is not None:
            # Force the selection so the run measures the backend it claims
            # to, overriding REPRO_SC_BACKEND and any spec-level contexts.
            from repro.sc.backends import set_backend

            previous = set_backend(backend, force=True)
        try:
            payload = harness.run_benchmarks()
        finally:
            if backend is not None:
                set_backend(previous, force=True)
        harness._print_report(payload)
        saved = harness.save_report(payload)
        print(f"\nsaved {saved}")

    if not args.check_floor:
        return 0

    groups = _engine_floor_groups(payload)
    failures = []
    summary_rows = []
    host_lines = []
    for backend_name, floors, by_name, host in groups:
        if host:
            host_lines.append(
                f"`{backend_name}`: {host.get('cpu_count')} cpus, "
                f"numpy {host.get('numpy')}, numba {host.get('numba') or 'absent'}"
            )
        for name, floor in floors.items():
            label = f"{backend_name}/{name}" if len(groups) > 1 else name
            row = by_name.get(name)
            if row is None:
                failures.append(f"{label}: no measurement recorded (floor {floor:.1f}x)")
                summary_rows.append((label, "n/a", f"{floor:.1f}x", "n/a", "FAIL (missing)"))
                continue
            measured = float(row["speedup"])
            delta = measured - floor
            margin = 100.0 * delta / floor
            detail = (
                f"{label}: measured {measured:.1f}x vs floor {floor:.1f}x "
                f"(delta {delta:+.1f}x, margin {margin:+.0f}%)"
            )
            status = "ok" if measured >= floor else "FAIL"
            summary_rows.append(
                (label, f"{measured:.1f}x", f"{floor:.1f}x", f"{delta:+.1f}x", status)
            )
            if measured < floor:
                failures.append(detail)
            else:
                print(f"floor ok: {detail}")
    _write_floor_job_summary(summary_rows, failures, host_lines=host_lines)
    if failures:
        # Every regression line carries the measured-vs-floor numbers so a
        # red CI job shows the magnitude of the regression, not just that
        # one happened.
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("perf floors: all pass")
    return 0


def _lookup_metric(payload: dict, dotted: str) -> Optional[float]:
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def _bench_serve(args: argparse.Namespace) -> int:
    """Serve-latency harness: run (or check) the load generator + its floors.

    Floor entries are ``{"min": x}`` and/or ``{"max": y}`` per dotted metric
    path — throughput gates from below, tail latency from above.
    """
    benchmarks_dir = _find_benchmarks_dir(args.benchmarks_dir, required="bench_serve_latency.py")
    results_path = benchmarks_dir / "results" / "BENCH_serve.json"

    if args.no_run:
        if not results_path.exists():
            raise SystemExit(f"--no-run: no recorded results at {results_path}")
        payload = json.loads(results_path.read_text())
        print(f"checking recorded serve results at {results_path}")
    else:
        harness = _load_bench_module(benchmarks_dir, "bench_serve_latency.py")
        payload = harness.run_benchmarks()
        harness.print_report(payload)
        saved = harness.save_report(payload)
        print(f"\nsaved {saved}")

    if not args.check_floor:
        return 0

    failures = []
    summary_rows = []
    host_cpus = payload.get("host", {}).get("cpu_count")
    for metric, bounds in sorted(payload.get("floors", {}).items()):
        bounds = dict(bounds)
        # A floor can declare the parallelism it needs to be meaningful:
        # the 2-shard scaling floor cannot physically hold on a 1-CPU host,
        # so it gates only where the host can exhibit scaling.  The
        # measurement is still recorded either way.
        requires_cpus = bounds.pop("requires_cpus", None)
        if requires_cpus is not None and host_cpus is not None and host_cpus < requires_cpus:
            measured = _lookup_metric(payload, metric)
            shown = "n/a" if measured is None else f"{measured:.2f}"
            print(
                f"floor skipped: {metric} (measured {shown}) needs >= {requires_cpus} CPUs; "
                f"host has {host_cpus}"
            )
            summary_rows.append((metric, shown, str(bounds), f"skipped (<{requires_cpus} cpus)"))
            continue
        measured = _lookup_metric(payload, metric)
        if measured is None:
            failures.append(f"{metric}: no measurement recorded (bounds {bounds})")
            summary_rows.append((metric, "n/a", str(bounds), "FAIL (missing)"))
            continue
        bound_text = ", ".join(f"{op} {value:g}" for op, value in sorted(bounds.items()))
        ok = True
        if "min" in bounds and measured < float(bounds["min"]):
            ok = False
        if "max" in bounds and measured > float(bounds["max"]):
            ok = False
        detail = f"{metric}: measured {measured:.2f} vs bounds ({bound_text})"
        summary_rows.append((metric, f"{measured:.2f}", bound_text, "ok" if ok else "FAIL"))
        if ok:
            print(f"floor ok: {detail}")
        else:
            failures.append(detail)
    _write_floor_job_summary(
        [(name, measured, bounds, "", status) for name, measured, bounds, status in summary_rows],
        failures,
        title="Serve latency/throughput floors",
    )
    if failures:
        for failure in failures:
            print(f"SERVE PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("serve floors: all pass")
    return 0


def _bench_fabric(args: argparse.Namespace) -> int:
    """Fabric harness: compile-time + executed-throughput floors.

    Same floor grammar as the serve suite: ``{"min": x}`` / ``{"max": y}``
    bounds per dotted metric path, so place-and-route + compile latency
    gates from above and compiled softmax throughput from below.
    """
    benchmarks_dir = _find_benchmarks_dir(args.benchmarks_dir, required="bench_fabric.py")
    results_path = benchmarks_dir / "results" / "BENCH_fabric.json"

    if args.no_run:
        if not results_path.exists():
            raise SystemExit(f"--no-run: no recorded results at {results_path}")
        payload = json.loads(results_path.read_text())
        print(f"checking recorded fabric results at {results_path}")
    else:
        harness = _load_bench_module(benchmarks_dir, "bench_fabric.py")
        payload = harness.run_benchmarks()
        harness.print_report(payload)
        saved = harness.save_report(payload)
        print(f"\nsaved {saved}")

    if not args.check_floor:
        return 0

    failures = []
    summary_rows = []
    for metric, bounds in sorted(payload.get("floors", {}).items()):
        bounds = dict(bounds)
        measured = _lookup_metric(payload, metric)
        if measured is None:
            failures.append(f"{metric}: no measurement recorded (bounds {bounds})")
            summary_rows.append((metric, "n/a", str(bounds), "", "FAIL (missing)"))
            continue
        bound_text = ", ".join(f"{op} {value:g}" for op, value in sorted(bounds.items()))
        ok = True
        if "min" in bounds and measured < float(bounds["min"]):
            ok = False
        if "max" in bounds and measured > float(bounds["max"]):
            ok = False
        detail = f"{metric}: measured {measured:.2f} vs bounds ({bound_text})"
        summary_rows.append((metric, f"{measured:.2f}", bound_text, "", "ok" if ok else "FAIL"))
        if ok:
            print(f"floor ok: {detail}")
        else:
            failures.append(detail)
    _write_floor_job_summary(summary_rows, failures, title="Fabric compile/throughput floors")
    if failures:
        for failure in failures:
            print(f"FABRIC PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("fabric floors: all pass")
    return 0


def _write_floor_job_summary(
    rows: Sequence[Sequence[str]],
    failures: Sequence[str],
    title: str = "Packed-engine perf floors",
    host_lines: Sequence[str] = (),
) -> None:
    """Append a measured-vs-floor table to the GitHub Actions job summary.

    ``GITHUB_STEP_SUMMARY`` points at the job-summary file inside Actions and
    is unset elsewhere, so local runs skip this silently.  ``host_lines``
    (one per measured backend: CPU count, numpy/numba versions) precede the
    table so a tripped floor is attributable to the machine that ran it.
    """
    import os

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    from repro.evaluation.reporting import format_markdown_table

    verdict = "all floors pass" if not failures else f"{len(failures)} floor(s) violated"
    table = format_markdown_table(
        ["benchmark", "measured", "floor", "delta", "status"], rows
    )
    with open(summary_path, "a") as handle:
        handle.write(f"### {title} — {verdict}\n\n")
        for line in host_lines:
            handle.write(f"- {line}\n")
        if host_lines:
            handle.write("\n")
        handle.write(f"{table}\n\n")


# ---------------------------------------------------------------------------
# trace — summarize exported telemetry traces
# ---------------------------------------------------------------------------


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import load_trace, summarize_trace

    exit_code = 0
    payload: dict = {"traces": {}}
    for path in args.trace:
        try:
            document = load_trace(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise SystemExit(str(exc)) from exc
        summary = summarize_trace(document, top=args.top)
        payload["traces"][str(path)] = summary
        other = document.get("otherData", {})
        scenario = other.get("scenario") if isinstance(other, dict) else None
        label = f" (scenario {scenario})" if scenario else ""
        print(
            f"== trace {path}{label}: {summary['events']} events, "
            f"{summary['spans']} spans, {summary['instants']} instants, "
            f"{summary['traces']} request traces across "
            f"{len(summary['processes'])} process(es) =="
        )
        _print_table(
            "spans by name",
            ["span", "count", "total (ms)", "mean (ms)", "max (ms)"],
            [
                (
                    row["key"],
                    row["count"],
                    f"{row['total_ms']:.2f}",
                    f"{row['mean_ms']:.3f}",
                    f"{row['max_ms']:.3f}",
                )
                for row in summary["by_name"][: args.top]
            ],
        )
        if len(summary["processes"]) > 1:
            _print_table(
                "spans by process (shard workers)",
                ["pid", "count", "total (ms)", "mean (ms)", "max (ms)"],
                [
                    (
                        row["key"],
                        row["count"],
                        f"{row['total_ms']:.2f}",
                        f"{row['mean_ms']:.3f}",
                        f"{row['max_ms']:.3f}",
                    )
                    for row in summary["by_process"]
                ],
            )
        if summary["instant_names"]:
            print(f"instant events: {', '.join(summary['instant_names'])}")
        if summary["kernel_top"]:
            _print_table(
                f"kernel profile (top {args.top} of {summary['kernels_total']} by time)",
                ["backend", "kernel", "calls", "words", "seconds"],
                [
                    (
                        row.get("backend", "?"),
                        row.get("kernel", "?"),
                        row.get("calls", 0),
                        row.get("words", 0),
                        f"{float(row.get('seconds', 0.0)):.4f}",
                    )
                    for row in summary["kernel_top"]
                ],
            )
        if summary["events"] == 0:
            print("trace is empty (was telemetry enabled for the run?)", file=sys.stderr)
            exit_code = 1
    _write_json(args.out, payload)
    return exit_code


# ---------------------------------------------------------------------------
# verify — orchestrator self-checks
# ---------------------------------------------------------------------------


def cmd_verify(args: argparse.Namespace) -> int:
    import math
    import tempfile

    from repro.core.dse import SoftmaxDesignSpace
    from repro.evaluation.vectors import attention_logit_vectors
    from repro.runner.cache import ResultCache

    def points_equal(a, b) -> bool:
        if a.config != b.config or a.feasible != b.feasible:
            return False
        for fld in ("area_um2", "delay_ns", "adp", "mae"):
            x, y = getattr(a, fld), getattr(b, fld)
            if not (x == y or (math.isnan(x) and math.isnan(y))):
                return False
        return True

    logits = attention_logit_vectors(16, 64, seed=11)
    space = SoftmaxDesignSpace(bx=4, test_vectors=logits, **DSE_GRIDS["tiny"])
    failures = []

    serial = space.explore()
    parallel = space.explore(workers=args.workers)
    if all(points_equal(a, b) for a, b in zip(serial, parallel)) and len(serial) == len(parallel):
        print(f"PASS parallel == serial ({len(serial)} designs, {args.workers} workers)")
    else:
        failures.append("parallel != serial")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        space.explore(workers=args.workers, cache=cache)
        first = space.last_run_stats
        cached = space.explore(workers=args.workers, cache=cache)
        second = space.last_run_stats
        if second.evaluated == 0 and second.cache_hits == first.total:
            print(f"PASS cache round-trip ({second.cache_hits} hits, 0 re-evaluations)")
        else:
            failures.append(
                f"cache round-trip: {second.evaluated} re-evaluations, {second.cache_hits} hits"
            )
        if all(points_equal(a, b) for a, b in zip(serial, cached)):
            print("PASS cached results identical to serial")
        else:
            failures.append("cached results differ from serial")

    failures.extend(_verify_eval_pipeline())
    failures.extend(_verify_serve())
    failures.extend(_verify_serve_sharded())
    failures.extend(_verify_fabric())

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


def _tiny_verify_fixture():
    """The tiny model/dataset/softmax shared by the eval + serve self-checks.

    One construction site so both verify sections (and their PASS lines)
    measure the same configuration.
    """
    from repro.core.softmax_circuit import SoftmaxCircuitConfig
    from repro.nn.vit import CompactVisionTransformer, ViTConfig
    from repro.training.datasets import SyntheticImageDataset

    config = ViTConfig(
        image_size=8, patch_size=4, num_classes=4, embed_dim=16, num_layers=2,
        num_heads=2, norm="bn", seed=3,
    )
    model = CompactVisionTransformer(config)
    dataset = SyntheticImageDataset(num_classes=4, image_size=8, seed=5)
    train, test = dataset.splits(train_size=16, test_size=12)
    softmax = SoftmaxCircuitConfig(m=64, iterations=2, bx=4, alpha_x=1.0, by=8, alpha_y=0.03, s1=16, s2=4)
    return model, train, test, softmax


def _verify_eval_pipeline() -> List[str]:
    """Self-checks of the batched eval pipeline on a tiny model/dataset."""
    import numpy as np

    from repro.eval_pipeline import ScViTEvalPipeline

    failures: List[str] = []
    model, train, test, softmax = _tiny_verify_fixture()

    for flip_prob in (0.0, 0.05):
        pipeline = ScViTEvalPipeline(
            model, softmax, gelu_output_bsl=4, flip_prob=flip_prob, fault_seed=11,
            calibration_images=train.images[:4],
        )
        batched = pipeline.evaluate(test, batch_size=12)
        per_image = pipeline.evaluate(test, batch_size=1)
        if np.array_equal(batched.predictions, per_image.predictions):
            print(
                f"PASS eval batched == per-image (flip_prob={flip_prob}, "
                f"{batched.num_images} images)"
            )
        else:
            failures.append(f"eval batched != per-image at flip_prob={flip_prob}")
    return failures


def _verify_serve() -> List[str]:
    """Self-checks of the serving subsystem: the batching invariant online.

    Staggered concurrent submissions (so the dynamic batcher forms mixed
    batch sizes) must reproduce offline per-image evaluation bit for bit,
    fault-free and under fault injection; a second identical pass must be
    served entirely from the prediction cache.
    """
    import asyncio

    import numpy as np

    from repro.eval_pipeline import ScViTEvalPipeline
    from repro.evaluation.vectors import collect_softmax_inputs
    from repro.serve import InferenceService, PredictionCache, build_engine

    failures: List[str] = []
    model, train, test, softmax = _tiny_verify_fixture()
    calibration = collect_softmax_inputs(model, train.images[:4], max_rows=512)
    num_images = int(test.images.shape[0])

    for flip_prob in (0.0, 0.05):
        pipeline = ScViTEvalPipeline(
            model, softmax, gelu_output_bsl=4, flip_prob=flip_prob, fault_seed=11,
            calibration_logits=calibration,
        )
        offline = pipeline.evaluate(test, batch_size=1)

        async def session():
            engine = build_engine(
                model, softmax, gelu_output_bsl=4, flip_prob=flip_prob, fault_seed=11,
                calibration_logits=calibration, workers=2,
            )
            service = InferenceService(engine, max_batch=5, max_wait_ms=4.0, cache=PredictionCache())
            async with service:
                async def one(i: int):
                    await asyncio.sleep(0.001 * (i % 4))  # ragged arrivals
                    return await service.submit(test.images[i], index=i)

                cold = await asyncio.gather(*[one(i) for i in range(num_images)])
                warm = await asyncio.gather(
                    *[service.submit(test.images[i], index=i) for i in range(num_images)]
                )
                return cold, warm, service.stats_snapshot()

        cold, warm, snapshot = asyncio.run(session())
        served = np.array([r.prediction for r in cold], dtype=np.int64)
        if np.array_equal(served, offline.predictions):
            print(
                f"PASS serve == offline per-image (flip_prob={flip_prob}, "
                f"{num_images} requests, mean batch "
                f"{snapshot['batching']['mean_batch_size']:.1f})"
            )
        else:
            failures.append(f"served predictions differ from offline at flip_prob={flip_prob}")
        if all(r.cached for r in warm):
            print(f"PASS serve warm pass 100% cache hits (flip_prob={flip_prob})")
        else:
            misses = sum(1 for r in warm if not r.cached)
            failures.append(f"serve warm pass had {misses} cache misses at flip_prob={flip_prob}")
    return failures


def _verify_serve_sharded() -> List[str]:
    """The batching invariant across worker *processes*, with fault injection.

    Ragged concurrent arrivals over a 2-shard :class:`ShardedProcessEngine`
    must reproduce offline per-image evaluation bit for bit — fault-free
    and with ``flip_prob`` faults — and must keep doing so when one shard
    is SIGKILLed mid-stream (in-flight micro-batches re-dispatch to a
    surviving shard, the slot respawns).
    """
    import asyncio

    import numpy as np

    from repro.eval_pipeline import ScViTEvalPipeline
    from repro.evaluation.vectors import collect_softmax_inputs
    from repro.serve import InferenceService, ShardedPredictionCache
    from repro.serve.sharded import build_sharded_engine

    failures: List[str] = []
    model, train, test, softmax = _tiny_verify_fixture()
    calibration = collect_softmax_inputs(model, train.images[:4], max_rows=512)
    num_images = int(test.images.shape[0])

    for flip_prob, kill in ((0.0, True), (0.05, False)):
        pipeline = ScViTEvalPipeline(
            model, softmax, gelu_output_bsl=4, flip_prob=flip_prob, fault_seed=11,
            calibration_logits=calibration,
        )
        offline = pipeline.evaluate(test, batch_size=1)

        async def session():
            engine = build_sharded_engine(
                model, softmax, gelu_output_bsl=4, flip_prob=flip_prob, fault_seed=11,
                calibration_logits=calibration, shards=2,
            )
            service = InferenceService(
                engine, max_batch=4, max_wait_ms=4.0, cache=ShardedPredictionCache(shards=2)
            )
            async with service:
                async def one(i: int):
                    await asyncio.sleep(0.001 * (i % 4))  # ragged arrivals
                    return await service.submit(test.images[i], index=i)

                tasks = [asyncio.ensure_future(one(i)) for i in range(num_images)]
                if kill:
                    await asyncio.sleep(0.002)
                    engine.kill_shard()
                cold = await asyncio.gather(*tasks)
                return cold, engine.stats_snapshot()

        cold, engine_stats = asyncio.run(session())
        served = np.array([r.prediction for r in cold], dtype=np.int64)
        lifecycle = engine_stats["lifecycle"]
        label = f"flip_prob={flip_prob}" + (", 1 shard killed mid-stream" if kill else "")
        if np.array_equal(served, offline.predictions):
            print(
                f"PASS sharded serve == offline per-image ({label}, "
                f"{num_images} requests, 2 shards, deaths={lifecycle['deaths']}, "
                f"redispatches={lifecycle['redispatches']})"
            )
        else:
            failures.append(f"sharded served predictions differ from offline ({label})")
        if kill and lifecycle["deaths"] < 1:
            failures.append("sharded kill test recorded no worker death (kill_shard no-op?)")
    return failures


def _verify_fabric() -> List[str]:
    """Self-checks of the accelerator-fabric simulator.

    Bit-identity of fabric execution against the golden ``blocks.build``
    path for the iterative softmax and a GELU family, write-count reuse
    across a partial reconfiguration, and the Table VI area
    reconciliation — the same contracts ``tests/test_fabric.py`` gates on,
    sized to run in seconds.
    """
    from repro.fabric import (
        FabricRunSpec,
        FabricSpec,
        reconcile_table6,
        run_fabric,
    )
    import repro.blocks as blocks

    failures: List[str] = []
    fabric = FabricSpec(name="verify")
    softmax = blocks.default_spec("softmax/iterative").with_updates(m=16, s1=4, s2=2)
    gelu = blocks.default_spec("gelu/bernstein")

    spec = FabricRunSpec(
        name="verify", fabric=fabric, schedule=(softmax, gelu), rows=8, seed=7
    )
    result = run_fabric(spec)
    if result["bit_identical"]:
        print(
            f"PASS fabric == golden blocks path ({len(result['slots'])} slots, "
            f"{result['bitstream']['writes']} config writes)"
        )
    else:
        bad = [s["family"] for s in result["slots"] if not s["bit_identical"]]
        failures.append(f"fabric output differs from golden blocks path: {', '.join(bad)}")

    faulted = run_fabric(spec.with_updates(flip_prob=0.05))
    if faulted["bit_identical"]:
        print("PASS fabric == golden blocks path under flip_prob=0.05")
    else:
        failures.append("fabric output differs from golden blocks path under fault injection")

    # Partial reconfiguration: swapping only the second slot must rewrite
    # only that tile's config words, and the re-loaded identical bitstream
    # must write nothing.
    from repro.fabric import Fabric, place_and_route

    live = Fabric(fabric)
    first = live.reconfigure(place_and_route(fabric, [softmax, gelu], seed=0).bitstream())
    swap_bitstream = place_and_route(
        fabric, [softmax, blocks.default_spec("gelu/fsm")], seed=0
    ).bitstream()
    swapped = live.reconfigure(swap_bitstream)
    again = live.reconfigure(swap_bitstream)
    if swapped["skipped"] > 0 and swapped["written"] < first["written"]:
        print(
            f"PASS partial reconfiguration reuses unchanged tiles "
            f"(cold {first['written']} writes, swap {swapped['written']} writes, "
            f"{swapped['skipped']} skipped)"
        )
    else:
        failures.append(
            f"partial reconfiguration rewrote everything: cold {first['written']}, "
            f"swap {swapped['written']} written / {swapped['skipped']} skipped"
        )
    if again["written"] > 0:
        failures.append(
            f"re-loading a previously live schedule wrote {again['written']} words"
        )

    reconcile = reconcile_table6(fabric=fabric)
    if reconcile["reconciles"]:
        print(
            f"PASS fabric tile area reconciles with Table VI "
            f"(ratio {reconcile['ratio']:.3f} <= {reconcile['tolerance']:g})"
        )
    else:
        failures.append(
            f"fabric tile area does not reconcile with Table VI: ratio "
            f"{reconcile['ratio']:.3f} outside [1, {reconcile['tolerance']:g}]"
        )
    return failures


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="reproduce the paper's artifacts through the sweep orchestrator",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error", "critical"],
        default="info",
        help="diagnostic log verbosity (structured, stderr; stdout stays results-only)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit diagnostic logs as JSON lines instead of text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dse = sub.add_parser("dse", help="Fig. 8 softmax design-space exploration")
    p_dse.add_argument("--bx", type=int, nargs="+", default=[2, 4], help="input BSLs to sweep")
    p_dse.add_argument("--max-designs", type=int, default=None, help="evaluate only the first N grid entries (deterministic grid order)")
    p_dse.add_argument("--grid", choices=sorted(DSE_GRIDS), default="full", help="grid preset")
    p_dse.add_argument(
        "--rows",
        type=int,
        default=100,
        help="test-vector rows, sliced from the bench's 200-row set so CLI and "
        "bench runs share cache entries (bench default: 100)",
    )
    p_dse.add_argument("--m", type=int, default=64, help="softmax vector length")
    p_dse.add_argument("--vectors-seed", type=int, default=2024, help="test-vector seed")
    _add_sweep_options(p_dse)
    p_dse.set_defaults(func=cmd_dse)

    p_gelu = sub.add_parser("gelu-sweep", help="Fig. 7 GELU BSL/degree sweep")
    p_gelu.add_argument("--samples", type=int, default=8000, help="GELU operand samples")
    p_gelu.add_argument("--vectors-seed", type=int, default=2024, help="sample seed")
    _add_sweep_options(p_gelu)
    p_gelu.set_defaults(func=cmd_gelu_sweep)

    p_tables = sub.add_parser("tables", help="regenerate a paper table")
    p_tables.add_argument("--table", choices=["table4"], default="table4")
    p_tables.add_argument("--rows", type=int, default=200, help="logit rows (bench default: 200)")
    p_tables.add_argument("--vectors-seed", type=int, default=2024, help="test-vector seed")
    _add_sweep_options(p_tables)
    p_tables.set_defaults(func=cmd_tables)

    p_eval = sub.add_parser("eval", help="batched end-to-end SC-ViT dataset evaluation")
    p_eval.add_argument("--dataset", choices=["cifar10", "cifar100"], default="cifar10", help="synthetic dataset")
    p_eval.add_argument("--splits", nargs="+", choices=["train", "test"], default=["test"], help="dataset splits to evaluate")
    p_eval.add_argument("--train-size", type=int, default=160, help="training split size")
    p_eval.add_argument("--test-size", type=int, default=96, help="test split size")
    p_eval.add_argument("--data-seed", type=int, default=0, help="dataset generator seed")
    p_eval.add_argument("--layers", type=int, default=2, help="ViT depth")
    p_eval.add_argument("--embed-dim", type=int, default=32, help="ViT embedding dim")
    p_eval.add_argument("--heads", type=int, default=4, help="attention heads")
    p_eval.add_argument("--model-seed", type=int, default=0, help="weight-init seed")
    p_eval.add_argument("--checkpoint", type=Path, default=None, help="trained state-dict (.npz) to load")
    p_eval.add_argument("--by-grid", type=int, nargs="+", default=[4, 8, 16], help="softmax output BSLs to sweep")
    p_eval.add_argument("--s1", type=int, default=32, help="softmax s1 sub-sample rate")
    p_eval.add_argument("--s2", type=int, default=8, help="softmax s2 sub-sample rate")
    p_eval.add_argument("--k", type=int, default=3, help="softmax iterations")
    p_eval.add_argument("--gelu-bsl", type=int, default=None, help="route GELU through an SI block of this BSL")
    p_eval.add_argument("--flip-probs", type=float, nargs="+", default=[0.0], help="bit-flip fault rates to sweep")
    p_eval.add_argument("--fault-seed", type=int, default=0, help="fault-injection seed")
    p_eval.add_argument("--max-images", type=int, default=None, help="cap images per split")
    p_eval.add_argument("--batch-size", type=int, default=32, help="eval chunk size (results are chunk-invariant)")
    p_eval.add_argument("--calibration-images", type=int, default=32, help="images for the alpha_x calibration")
    p_eval.add_argument("--backend", choices=["numpy", "threaded", "numba"], default=None, help="SC kernel backend for the forwards (bit-identical; throughput only, excluded from cache keys)")
    p_eval.add_argument("--verify-batched", action="store_true", help="re-run the first config per-image and compare bit-for-bit")
    _add_sweep_options(p_eval)
    p_eval.set_defaults(func=cmd_eval)

    p_run = sub.add_parser("run", help="execute declarative experiment spec files (JSON)")
    p_run.add_argument("spec", nargs="+", type=Path, help="experiment spec file(s); see examples/specs/")
    p_run.add_argument("--workers", type=int, default=None, help="override the specs' worker count")
    p_run.add_argument("--cache-dir", default=None, help="override the specs' cache directory")
    p_run.add_argument("--out", type=Path, default=None, help="override the specs' JSON output path")
    p_run.add_argument("--quiet", action="store_true", help="suppress progress output")
    p_run.set_defaults(func=cmd_run)

    p_scenario = sub.add_parser("scenario", help="declarative resilience scenarios over the serving tier")
    p_scenario.add_argument("spec", nargs="+", type=Path, help="scenario spec file(s) (serve/scenario JSON); see examples/specs/scenario_*.json")
    p_scenario.add_argument("--engine", choices=["thread", "process", "fabric"], default=None, help="override the scenarios' engine family (a different engine is a different deployment and cache identity; the CI matrix runs each scenario per family)")
    p_scenario.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR, help=f"scenario-result cache directory (default: {DEFAULT_CACHE_DIR})")
    p_scenario.add_argument("--no-cache", action="store_true", help="disable the result cache (always drive the service fresh)")
    p_scenario.add_argument("--out", type=Path, default=None, help="write all scenario results as JSON to this path")
    p_scenario.add_argument("--trace-dir", type=Path, default=None, help="export telemetry traces here (Chrome-trace JSON + JSONL per scenario; needs the deployment's telemetry field or REPRO_TELEMETRY=1)")
    p_scenario.add_argument("--quiet", action="store_true", help="suppress progress output")
    p_scenario.set_defaults(func=cmd_scenario)

    p_serve = sub.add_parser("serve", help="async dynamic-batching inference service")
    p_serve.add_argument("--spec", type=Path, default=None, help="deployment spec JSON (serve/deployment); overrides every other flag — the file is the complete deployment description")
    p_serve.add_argument("--transport", choices=["stdio", "http"], default="stdio", help="JSON-lines on stdio or a localhost HTTP server")
    p_serve.add_argument("--host", default="127.0.0.1", help="HTTP bind host")
    p_serve.add_argument("--port", type=int, default=8765, help="HTTP bind port (0 = ephemeral)")
    p_serve.add_argument("--dataset", choices=["cifar10", "cifar100"], default="cifar10", help="synthetic dataset supplying classes + calibration images")
    p_serve.add_argument("--train-size", type=int, default=160, help="training split size (calibration source)")
    p_serve.add_argument("--data-seed", type=int, default=0, help="dataset generator seed")
    p_serve.add_argument("--layers", type=int, default=2, help="ViT depth")
    p_serve.add_argument("--embed-dim", type=int, default=32, help="ViT embedding dim")
    p_serve.add_argument("--heads", type=int, default=4, help="attention heads")
    p_serve.add_argument("--model-seed", type=int, default=0, help="weight-init seed")
    p_serve.add_argument("--checkpoint", type=Path, default=None, help="trained state-dict (.npz) to load")
    p_serve.add_argument("--calibration-images", type=int, default=32, help="images for the alpha_x calibration")
    p_serve.add_argument("--by", type=int, default=8, help="softmax output BSL")
    p_serve.add_argument("--s1", type=int, default=32, help="softmax s1 sub-sample rate")
    p_serve.add_argument("--s2", type=int, default=8, help="softmax s2 sub-sample rate")
    p_serve.add_argument("--k", type=int, default=3, help="softmax iterations")
    p_serve.add_argument("--gelu-bsl", type=int, default=None, help="route GELU through an SI block of this BSL")
    p_serve.add_argument("--flip-prob", type=float, default=0.0, help="bit-flip fault rate (per-request seeds via the 'index' field)")
    p_serve.add_argument("--fault-seed", type=int, default=0, help="fault-injection seed")
    p_serve.add_argument("--max-batch", type=int, default=8, help="micro-batch flush threshold")
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0, help="micro-batch flush deadline after the first request")
    p_serve.add_argument("--max-queue", type=int, default=256, help="bounded queue depth (backpressure)")
    p_serve.add_argument("--timeout-s", type=float, default=30.0, help="per-request deadline")
    p_serve.add_argument("--engine", choices=["thread", "process"], default="thread", help="compute tier: in-process thread pool or sharded worker processes")
    p_serve.add_argument("--serve-workers", type=int, default=1, help="worker threads (thread engine) or worker-process shards (process engine), each owning a model replica")
    p_serve.add_argument("--max-shards", type=int, default=None, help="autoscale ceiling for the process engine (queue-depth scaling between --serve-workers and this)")
    p_serve.add_argument("--backend", choices=["numpy", "threaded", "numba"], default=None, help="SC kernel backend for replica forwards (bit-identical; throughput only)")
    p_serve.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR, help=f"prediction-cache directory (default: {DEFAULT_CACHE_DIR})")
    p_serve.add_argument("--no-cache", action="store_true", help="disable the prediction cache")
    p_serve.set_defaults(func=cmd_serve)

    p_fabric = sub.add_parser("fabric", help="bitstream-configurable accelerator-fabric simulator")
    p_fabric.add_argument("spec", nargs="+", type=Path, help="fabric spec file(s): fabric/design (summary) or fabric/run (place-and-route + execute) JSON; see examples/specs/fabric_*.json")
    p_fabric.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR, help=f"fabric-run result cache directory (default: {DEFAULT_CACHE_DIR})")
    p_fabric.add_argument("--no-cache", action="store_true", help="disable the result cache (always re-execute)")
    p_fabric.add_argument("--out", type=Path, default=None, help="write all design summaries and run results as JSON to this path")
    p_fabric.add_argument("--quiet", action="store_true", help="suppress progress output")
    p_fabric.set_defaults(func=cmd_fabric)

    p_blocks = sub.add_parser("blocks", help="list the registered circuit-block families")
    p_blocks.add_argument("--table1", action="store_true", help="print the Table I capability matrix instead")
    p_blocks.add_argument("--no-hardware", action="store_true", help="skip the hardware-cost synthesis column")
    p_blocks.add_argument("--out", type=Path, default=None, help="write the catalog as JSON to this path")
    p_blocks.set_defaults(func=cmd_blocks)

    p_bench = sub.add_parser("bench", help="perf regression harnesses (packed engine, serving, fabric)")
    p_bench.add_argument("--suite", choices=["engine", "serve", "fabric", "all"], default="engine", help="which harness: the packed-engine microbenches, the serve load generator, the fabric compile/throughput suite, or all of them")
    p_bench.add_argument("--benchmarks-dir", type=Path, default=None, help="path to benchmarks/")
    p_bench.add_argument("--backend", choices=["numpy", "threaded", "numba"], default=None, help="SC kernel backend to measure (engine suite); merged per backend into the results JSON")
    p_bench.add_argument("--check-floor", action="store_true", help="fail if measurements fall outside the recorded floors")
    p_bench.add_argument("--no-run", action="store_true", help="check the recorded results instead of re-running")
    p_bench.set_defaults(func=cmd_bench)

    p_trace = sub.add_parser("trace", help="summarize exported telemetry traces")
    p_trace.add_argument("trace", nargs="+", type=Path, help="trace file(s): Chrome-trace JSON (*.trace.json) or JSONL event stream (*.trace.jsonl)")
    p_trace.add_argument("--top", type=int, default=10, help="rows per table (span names, kernel profile)")
    p_trace.add_argument("--out", type=Path, default=None, help="write the summaries as JSON to this path")
    p_trace.set_defaults(func=cmd_trace)

    p_verify = sub.add_parser("verify", help="orchestrator self-checks")
    p_verify.add_argument("--workers", type=int, default=2)
    p_verify.set_defaults(func=cmd_verify)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.telemetry.logging import configure_logging

    configure_logging(level=args.log_level, json_lines=args.log_json)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
