"""Unified reproduction CLI — ``python -m repro <subcommand>``.

Every paper artifact is reachable from one entry point, driven through the
sweep orchestrator (:mod:`repro.runner`), so any sweep can be parallelised
(``--workers N``), resumed (``--cache-dir``), and reproduced byte-for-byte
against the serial path (``--workers 1``):

* ``dse``        — the Fig. 8 softmax design-space exploration + Pareto front,
* ``gelu-sweep`` — the Fig. 7 GELU BSL/degree sweep,
* ``tables``     — the table benches (currently Table IV),
* ``bench``      — the packed-engine perf regression harness (+ floor check),
* ``verify``     — self-checks: parallel == serial, cache round-trip.

Test vectors default to the same sizes/seeds the ``benchmarks/`` scripts
use, so CLI runs and bench runs share cache entries.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path
from typing import Any, List, Optional, Sequence

__all__ = ["main", "build_parser"]

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: DSE grid presets.  ``full`` is the paper's 2916-design grid; ``small``
#: matches the reduced grid of the Fig. 8 bench; ``tiny`` is an 8-design
#: grid for CI smoke runs and tests.
DSE_GRIDS = {
    "full": {},
    "small": {
        "by_choices": (4, 8, 16),
        "iteration_choices": (2, 3),
        "s1_choices": (8, 32, 128),
        "s2_choices": (2, 8, 32),
        "alpha_y_multipliers": (0.5, 1.0),
    },
    "tiny": {
        "by_choices": (4, 8),
        "iteration_choices": (2,),
        "s1_choices": (16, 64),
        "s2_choices": (4, 16),
        "alpha_y_multipliers": (1.0,),
    },
}


# ---------------------------------------------------------------------------
# Shared option plumbing
# ---------------------------------------------------------------------------


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial in-process fallback, 0 = all CPUs)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    parser.add_argument("--out", type=Path, default=None, help="write results as JSON to this path")
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")


def _make_cache(args: argparse.Namespace) -> Optional[Any]:
    if args.no_cache:
        return None
    from repro.runner.cache import ResultCache

    return ResultCache(args.cache_dir)


def _make_reporter(args: argparse.Namespace, label: str) -> Any:
    from repro.evaluation.reporting import ProgressReporter

    return ProgressReporter(label, quiet=args.quiet)


def _print_table(name: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
    from repro.evaluation.reporting import format_table

    print(f"\n=== {name} ===")
    print(format_table(headers, rows))


def _write_json(out: Optional[Path], payload: dict) -> None:
    if out is None:
        return
    from repro.evaluation.reporting import save_json_report

    save_json_report(out, payload)
    print(f"wrote {out}")


# ---------------------------------------------------------------------------
# dse — Fig. 8 design-space exploration
# ---------------------------------------------------------------------------


def cmd_dse(args: argparse.Namespace) -> int:
    from repro.core.dse import SoftmaxDesignSpace
    from repro.evaluation.vectors import attention_logit_vectors

    cache = _make_cache(args)
    # Generate the bench's full 200-row vector set and slice it, rather than
    # generating ``rows`` vectors directly: attention_logit_vectors is not
    # prefix-stable across sizes, and the Fig. 8 bench evaluates on
    # ``vectors(200)[:100]`` — slicing the same way is what makes CLI and
    # bench runs share cache entries.
    base_rows = max(args.rows, 200)
    logits = attention_logit_vectors(base_rows, args.m, seed=args.vectors_seed)[: args.rows]
    grid_kwargs = DSE_GRIDS[args.grid]

    payload: dict = {"grid": args.grid, "rows": args.rows, "spaces": {}}
    summary_rows = []
    pareto_rows = []
    for bx in args.bx:
        space = SoftmaxDesignSpace(bx=bx, test_vectors=logits, **grid_kwargs)
        reporter = _make_reporter(args, f"dse Bx={bx}")
        points = space.explore(
            max_designs=args.max_designs,
            workers=args.workers,
            cache=cache,
            reporter=reporter,
        )
        stats = space.last_run_stats
        pareto = space.pareto_points(points)
        feasible = [p for p in points if p.feasible]
        summary_rows.append(
            (
                f"Bx={bx}",
                space.grid_size(),
                len(points),
                len(feasible),
                len(pareto),
                stats.evaluated,
                stats.cache_hits,
            )
        )
        for point in pareto:
            pareto_rows.append((f"Bx={bx}", *point.as_row()))
        payload["spaces"][str(bx)] = {
            "grid_size": space.grid_size(),
            "explored": len(points),
            "feasible": len(feasible),
            "evaluated": stats.evaluated,
            "cache_hits": stats.cache_hits,
            "workers": stats.workers,
            "seconds": stats.seconds,
            "pareto": [list(point.as_row()) for point in pareto],
        }

    _print_table(
        "dse summary",
        ["Space", "Grid size", "Explored", "Feasible", "Pareto", "Evaluated", "Cache hits"],
        summary_rows,
    )
    if pareto_rows:
        _print_table(
            "dse pareto front",
            ["Space", "By", "s1", "s2", "k", "Area (um2)", "Delay (ns)", "ADP", "MAE"],
            pareto_rows,
        )
    _write_json(args.out, payload)
    return 0


# ---------------------------------------------------------------------------
# gelu-sweep — Fig. 7
# ---------------------------------------------------------------------------


def cmd_gelu_sweep(args: argparse.Namespace) -> int:
    from repro.evaluation.vectors import gelu_input_vectors
    from repro.runner.tasks import fig7_gelu_rows

    samples = gelu_input_vectors(args.samples, seed=args.vectors_seed)
    rows = fig7_gelu_rows(
        samples,
        workers=args.workers,
        cache=_make_cache(args),
        reporter=_make_reporter(args, "gelu-sweep"),
    )
    stats = fig7_gelu_rows.last_run_stats
    headers = ["Series", "BSL", "ADP (um2*ns)", "MAE"]
    _print_table("fig7 gelu sweep", headers, rows)
    print(f"[{stats.summary()}]")
    _write_json(args.out, {"headers": headers, "rows": [list(r) for r in rows]})
    return 0


# ---------------------------------------------------------------------------
# tables — the table benches
# ---------------------------------------------------------------------------


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.evaluation.vectors import attention_logit_vectors
    from repro.runner.tasks import table4_rows

    if args.table != "table4":  # future-proofing; argparse already restricts
        raise SystemExit(f"unknown table {args.table!r}")
    # Slice from the bench's 200-row set (see cmd_dse) so reduced-row runs
    # still evaluate on a prefix of the exact vectors the bench uses.
    base_rows = max(args.rows, 200)
    logits = attention_logit_vectors(base_rows, 64, seed=args.vectors_seed)[: args.rows]
    rows = table4_rows(
        logits,
        workers=args.workers,
        cache=_make_cache(args),
        reporter=_make_reporter(args, "table4"),
    )
    stats = table4_rows.last_run_stats
    headers = ["Design", "Area (um2)", "Delay (ns)", "ADP (um2*ns)", "MAE"]
    _print_table("table4 softmax blocks", headers, rows)
    print(f"[{stats.summary()}]")
    _write_json(args.out, {"headers": headers, "rows": [list(r) for r in rows]})
    return 0


# ---------------------------------------------------------------------------
# bench — packed-engine perf regression harness
# ---------------------------------------------------------------------------


def _find_benchmarks_dir(explicit: Optional[Path]) -> Path:
    candidates = []
    if explicit is not None:
        candidates.append(explicit)
    candidates.append(Path.cwd() / "benchmarks")
    import repro

    candidates.append(Path(repro.__file__).resolve().parents[2] / "benchmarks")
    for candidate in candidates:
        if (candidate / "bench_perf_sc_engine.py").exists():
            return candidate
    raise SystemExit(
        "cannot locate benchmarks/bench_perf_sc_engine.py; pass --benchmarks-dir"
    )


def _load_perf_harness(benchmarks_dir: Path):
    spec = importlib.util.spec_from_file_location(
        "bench_perf_sc_engine", benchmarks_dir / "bench_perf_sc_engine.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def cmd_bench(args: argparse.Namespace) -> int:
    benchmarks_dir = _find_benchmarks_dir(args.benchmarks_dir)
    harness = _load_perf_harness(benchmarks_dir)
    results_path = benchmarks_dir / "results" / "BENCH_sc_engine.json"

    if args.no_run:
        if not results_path.exists():
            raise SystemExit(f"--no-run: no recorded results at {results_path}")
        payload = json.loads(results_path.read_text())
        print(f"checking recorded results at {results_path}")
    else:
        payload = harness.run_benchmarks()
        harness._print_report(payload)
        saved = harness.save_report(payload)
        print(f"\nsaved {saved}")

    if not args.check_floor:
        return 0

    floors = payload.get("floors") or harness.SPEEDUP_FLOORS
    failures = []
    by_name = {row["name"]: row for row in payload["benchmarks"]}
    for name, floor in floors.items():
        row = by_name.get(name)
        if row is None:
            failures.append(f"{name}: no measurement recorded")
            continue
        if row["speedup"] < floor:
            failures.append(f"{name}: speedup {row['speedup']:.1f}x below floor {floor:.1f}x")
        else:
            print(f"floor ok: {name} {row['speedup']:.1f}x >= {floor:.1f}x")
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("perf floors: all pass")
    return 0


# ---------------------------------------------------------------------------
# verify — orchestrator self-checks
# ---------------------------------------------------------------------------


def cmd_verify(args: argparse.Namespace) -> int:
    import math
    import tempfile

    from repro.core.dse import SoftmaxDesignSpace
    from repro.evaluation.vectors import attention_logit_vectors
    from repro.runner.cache import ResultCache

    def points_equal(a, b) -> bool:
        if a.config != b.config or a.feasible != b.feasible:
            return False
        for fld in ("area_um2", "delay_ns", "adp", "mae"):
            x, y = getattr(a, fld), getattr(b, fld)
            if not (x == y or (math.isnan(x) and math.isnan(y))):
                return False
        return True

    logits = attention_logit_vectors(16, 64, seed=11)
    space = SoftmaxDesignSpace(bx=4, test_vectors=logits, **DSE_GRIDS["tiny"])
    failures = []

    serial = space.explore()
    parallel = space.explore(workers=args.workers)
    if all(points_equal(a, b) for a, b in zip(serial, parallel)) and len(serial) == len(parallel):
        print(f"PASS parallel == serial ({len(serial)} designs, {args.workers} workers)")
    else:
        failures.append("parallel != serial")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        space.explore(workers=args.workers, cache=cache)
        first = space.last_run_stats
        cached = space.explore(workers=args.workers, cache=cache)
        second = space.last_run_stats
        if second.evaluated == 0 and second.cache_hits == first.total:
            print(f"PASS cache round-trip ({second.cache_hits} hits, 0 re-evaluations)")
        else:
            failures.append(
                f"cache round-trip: {second.evaluated} re-evaluations, {second.cache_hits} hits"
            )
        if all(points_equal(a, b) for a, b in zip(serial, cached)):
            print("PASS cached results identical to serial")
        else:
            failures.append("cached results differ from serial")

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="reproduce the paper's artifacts through the sweep orchestrator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dse = sub.add_parser("dse", help="Fig. 8 softmax design-space exploration")
    p_dse.add_argument("--bx", type=int, nargs="+", default=[2, 4], help="input BSLs to sweep")
    p_dse.add_argument("--max-designs", type=int, default=None, help="evaluate only the first N grid entries (deterministic grid order)")
    p_dse.add_argument("--grid", choices=sorted(DSE_GRIDS), default="full", help="grid preset")
    p_dse.add_argument(
        "--rows",
        type=int,
        default=100,
        help="test-vector rows, sliced from the bench's 200-row set so CLI and "
        "bench runs share cache entries (bench default: 100)",
    )
    p_dse.add_argument("--m", type=int, default=64, help="softmax vector length")
    p_dse.add_argument("--vectors-seed", type=int, default=2024, help="test-vector seed")
    _add_sweep_options(p_dse)
    p_dse.set_defaults(func=cmd_dse)

    p_gelu = sub.add_parser("gelu-sweep", help="Fig. 7 GELU BSL/degree sweep")
    p_gelu.add_argument("--samples", type=int, default=8000, help="GELU operand samples")
    p_gelu.add_argument("--vectors-seed", type=int, default=2024, help="sample seed")
    _add_sweep_options(p_gelu)
    p_gelu.set_defaults(func=cmd_gelu_sweep)

    p_tables = sub.add_parser("tables", help="regenerate a paper table")
    p_tables.add_argument("--table", choices=["table4"], default="table4")
    p_tables.add_argument("--rows", type=int, default=200, help="logit rows (bench default: 200)")
    p_tables.add_argument("--vectors-seed", type=int, default=2024, help="test-vector seed")
    _add_sweep_options(p_tables)
    p_tables.set_defaults(func=cmd_tables)

    p_bench = sub.add_parser("bench", help="packed-engine perf regression harness")
    p_bench.add_argument("--benchmarks-dir", type=Path, default=None, help="path to benchmarks/")
    p_bench.add_argument("--check-floor", action="store_true", help="fail if speedups fall below the recorded floors")
    p_bench.add_argument("--no-run", action="store_true", help="check the recorded results instead of re-running")
    p_bench.set_defaults(func=cmd_bench)

    p_verify = sub.add_parser("verify", help="orchestrator self-checks")
    p_verify.add_argument("--workers", type=int, default=2)
    p_verify.set_defaults(func=cmd_verify)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
