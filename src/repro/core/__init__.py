"""ASCEND's contribution: the circuit blocks, the DSE and the co-designed ViT.

* :mod:`repro.core.gelu_si` — gate-assisted selective interconnect GELU
  (Section IV-A, Fig. 2/4, Table III, Fig. 7),
* :mod:`repro.core.softmax_iterative` — the iterative approximate softmax
  algorithm (Algorithm 1) and its exact gradient,
* :mod:`repro.core.softmax_circuit` — the SC circuit executing it on
  thermometer bitstreams (Fig. 5, Table II, Table IV),
* :mod:`repro.core.baselines` — the FSM softmax baseline and the Table I
  capability matrix,
* :mod:`repro.core.dse` — design-space exploration and Pareto fronts
  (Fig. 8),
* :mod:`repro.core.accelerator` — the end-to-end accelerator area model
  (Table VI),
* :mod:`repro.core.sc_vit` — the SC-friendly ViT whose nonlinearities are
  the circuit models above (Section V),
* :mod:`repro.core.codesign` — the circuit/network co-design driver
  (Fig. 3).
"""

from repro.core.accelerator import (
    AcceleratorConfig,
    AscendAccelerator,
    ViTArchitecture,
    recommend_configuration,
)
from repro.core.baselines import FsmSoftmaxBaseline, ScDesignCapability, capability_matrix
from repro.core.dse import DesignPoint, SoftmaxDesignSpace
from repro.core.gelu_si import (
    GateAssistedSIBlock,
    GeluSIBlock,
    TernaryGeluBlock,
    calibrate_output_scale,
)
from repro.core.softmax_circuit import (
    IterativeSoftmaxCircuit,
    SoftmaxCircuitConfig,
    calibrate_alpha_x,
    calibrate_alpha_y,
)
from repro.core.softmax_iterative import IterativeSoftmax, IterativeSoftmaxResult
from repro.core.sc_vit import ScViTEvaluator, ScViTEvaluationResult, evaluate_softmax_configurations
from repro.core.codesign import CodesignDriver, CodesignReport

__all__ = [
    "ScViTEvaluator",
    "ScViTEvaluationResult",
    "evaluate_softmax_configurations",
    "CodesignDriver",
    "CodesignReport",
    "AcceleratorConfig",
    "AscendAccelerator",
    "ViTArchitecture",
    "recommend_configuration",
    "FsmSoftmaxBaseline",
    "ScDesignCapability",
    "capability_matrix",
    "DesignPoint",
    "SoftmaxDesignSpace",
    "GateAssistedSIBlock",
    "GeluSIBlock",
    "TernaryGeluBlock",
    "calibrate_output_scale",
    "IterativeSoftmaxCircuit",
    "SoftmaxCircuitConfig",
    "calibrate_alpha_x",
    "calibrate_alpha_y",
    "IterativeSoftmax",
    "IterativeSoftmaxResult",
]
