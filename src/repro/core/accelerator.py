"""Accelerator-level area model — the Table VI evaluation.

The paper's accelerator-level study asks one question: how much of the total
accelerator does the softmax block cost as its configuration moves along the
Pareto front, and is the accuracy gain worth it?  To answer it, this module
assembles a full end-to-end SC ViT accelerator out of the same structural
pieces used for the block-level studies:

* weight and activation/residual buffers (SRAM) sized by the ViT
  architecture and the W2-A2-R16 precision scheme,
* a processing-element array of 2x2-bit thermometer truth-table multipliers
  with per-column BSN accumulation trees and residual-fusion re-scalers,
* one gate-assisted SI GELU lane per output column,
* folded batch-norm scale/offset units (the LN -> BN substitution of
  Section V is what makes these cheap),
* ``k`` copies of the iterative approximate softmax block, so all ``k``
  iterations of one attention row are in flight simultaneously (the paper's
  Table VI footnote).

Absolute areas come from the same calibrated cell library as every other
number in this reproduction; what the benchmark compares against the paper
is the *fraction* of area spent on softmax and how the total grows across
the four configurations of Table VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.gelu_si import GeluSIBlock
from repro.core.softmax_circuit import IterativeSoftmaxCircuit, SoftmaxCircuitConfig
from repro.hw.cells import CellLibrary
from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.hw.synthesis import SynthesisReport, synthesize
from repro.sc.arithmetic import thermometer_multiplier_hardware
from repro.sc.rescaling import RescalingBlock
from repro.sc.sorting_network import BitonicSortingNetwork
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ViTArchitecture:
    """Shape of the ViT being accelerated (the compact 7-layer/4-head model)."""

    num_layers: int = 7
    num_heads: int = 4
    embed_dim: int = 256
    mlp_ratio: float = 2.0
    num_tokens: int = 64
    num_classes: int = 10

    def __post_init__(self) -> None:
        check_positive_int(self.num_layers, "num_layers")
        check_positive_int(self.num_heads, "num_heads")
        check_positive_int(self.embed_dim, "embed_dim")
        check_positive_int(self.num_tokens, "num_tokens")
        check_positive_int(self.num_classes, "num_classes")
        if self.mlp_ratio <= 0:
            raise ValueError("mlp_ratio must be positive")
        if self.embed_dim % self.num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")

    @property
    def head_dim(self) -> int:
        return self.embed_dim // self.num_heads

    @property
    def mlp_hidden_dim(self) -> int:
        return int(self.embed_dim * self.mlp_ratio)

    def parameter_count(self) -> int:
        """Approximate parameter count of the encoder stack plus the head."""
        per_layer = (
            3 * self.embed_dim * self.embed_dim  # QKV projections
            + self.embed_dim * self.embed_dim  # attention output projection
            + 2 * self.embed_dim * self.mlp_hidden_dim  # the two MLP linears
            + 4 * self.embed_dim  # biases and BN affine parameters
        )
        head = self.embed_dim * self.num_classes
        embed = 3 * 16 * self.embed_dim  # patch embedding (4x4 RGB patches)
        return self.num_layers * per_layer + head + embed


@dataclass(frozen=True)
class AcceleratorConfig:
    """End-to-end accelerator configuration (precision scheme + softmax block)."""

    architecture: ViTArchitecture = field(default_factory=ViTArchitecture)
    weight_bsl: int = 2
    activation_bsl: int = 2
    residual_bsl: int = 16
    gelu_output_bsl: int = 8
    pe_rows: int = 64
    pe_columns: int = 64
    softmax: SoftmaxCircuitConfig = field(default_factory=SoftmaxCircuitConfig)

    def __post_init__(self) -> None:
        for name in ("weight_bsl", "activation_bsl", "residual_bsl", "gelu_output_bsl", "pe_rows", "pe_columns"):
            check_positive_int(getattr(self, name), name)

    @property
    def num_softmax_blocks(self) -> int:
        """One block per iteration so the softmax pipeline is fully parallel."""
        return self.softmax.iterations


class AscendAccelerator:
    """Structural model of the end-to-end ASCEND accelerator."""

    def __init__(self, config: Optional[AcceleratorConfig] = None, library: Optional[CellLibrary] = None) -> None:
        self.config = config or AcceleratorConfig()
        self.library = library

    # ----------------------------------------------------------- sub-blocks
    def build_weight_buffer(self) -> HardwareModule:
        """On-chip weight storage: every parameter at the weight BSL."""
        cfg = self.config
        bits = cfg.architecture.parameter_count() * cfg.weight_bsl
        return HardwareModule(
            name="weight_buffer",
            inventory=ComponentInventory({"SRAM_BIT": bits}),
            critical_path=("SRAM_BIT",),
            cycles=1,
            metadata={"bits": bits},
        )

    def build_activation_buffer(self) -> HardwareModule:
        """Double-buffered activation + residual storage for one layer."""
        cfg = self.config
        arch = cfg.architecture
        per_token = arch.embed_dim * (cfg.activation_bsl + cfg.residual_bsl)
        bits = 2 * arch.num_tokens * per_token
        return HardwareModule(
            name="activation_buffer",
            inventory=ComponentInventory({"SRAM_BIT": bits}),
            critical_path=("SRAM_BIT",),
            cycles=1,
            metadata={"bits": bits},
        )

    def build_pe_array(self) -> HardwareModule:
        """Matrix-multiply tile: truth-table MACs plus column accumulation BSNs."""
        cfg = self.config
        mac = thermometer_multiplier_hardware(cfg.weight_bsl, cfg.activation_bsl, name="mac")
        accumulate_width = cfg.pe_rows * cfg.weight_bsl * cfg.activation_bsl // 2
        column_bsn = BitonicSortingNetwork(accumulate_width).build_hardware(name="column_accumulator")
        residual_fuse = RescalingBlock(max(accumulate_width, cfg.residual_bsl), 1).build_hardware("residual_fuse")
        return HardwareModule(
            name="pe_array",
            inventory=ComponentInventory({"DFF": cfg.pe_columns * cfg.residual_bsl}),
            critical_path=("AND2",) + ("SORT_CE",) * BitonicSortingNetwork(accumulate_width).depth + ("DFF",),
            cycles=1,
            submodules=[
                (mac, cfg.pe_rows * cfg.pe_columns),
                (column_bsn, cfg.pe_columns),
                (residual_fuse, cfg.pe_columns),
            ],
            pipelined=True,
            metadata={"rows": cfg.pe_rows, "columns": cfg.pe_columns},
        )

    def build_gelu_lanes(self) -> HardwareModule:
        """One gate-assisted SI GELU block per PE column."""
        cfg = self.config
        gelu = GeluSIBlock(output_length=cfg.gelu_output_bsl).build_hardware()
        return HardwareModule(
            name="gelu_lanes",
            inventory=ComponentInventory(),
            critical_path=(),
            cycles=1,
            submodules=[(gelu, cfg.pe_columns)],
            pipelined=True,
            metadata={"lanes": cfg.pe_columns, "output_bsl": cfg.gelu_output_bsl},
        )

    def build_normalization_units(self) -> HardwareModule:
        """Folded batch-norm scale/offset units (binary multiply-add per lane)."""
        cfg = self.config
        per_lane = ComponentInventory({"FULL_ADDER": 2 * cfg.residual_bsl, "DFF": cfg.residual_bsl})
        lane = HardwareModule(
            name="bn_lane",
            inventory=per_lane,
            critical_path=("FULL_ADDER", "FULL_ADDER", "DFF"),
            cycles=1,
        )
        return HardwareModule(
            name="normalization_units",
            inventory=ComponentInventory(),
            critical_path=(),
            cycles=1,
            submodules=[(lane, cfg.pe_columns)],
            pipelined=True,
        )

    def build_softmax_blocks(self) -> HardwareModule:
        """``k`` copies of the iterative approximate softmax block."""
        cfg = self.config
        block = IterativeSoftmaxCircuit(cfg.softmax).build_hardware()
        return HardwareModule(
            name="softmax_blocks",
            inventory=ComponentInventory(),
            critical_path=(),
            cycles=1,
            submodules=[(block, self.config.num_softmax_blocks)],
            pipelined=True,
            metadata={"copies": cfg.num_softmax_blocks, "config": cfg.softmax.describe()},
        )

    # -------------------------------------------------------------- assembly
    def build_hardware(self) -> HardwareModule:
        """The full accelerator as one hierarchical module."""
        blocks = [
            (self.build_weight_buffer(), 1),
            (self.build_activation_buffer(), 1),
            (self.build_pe_array(), 1),
            (self.build_gelu_lanes(), 1),
            (self.build_normalization_units(), 1),
            (self.build_softmax_blocks(), 1),
        ]
        return HardwareModule(
            name="ascend_accelerator",
            inventory=ComponentInventory({"DFF": 4096}),  # control, sequencing, NoC registers
            critical_path=("DFF",),
            cycles=1,
            submodules=blocks,
            pipelined=True,
            metadata={"softmax_config": self.config.softmax.describe()},
        )

    def area_breakdown(self) -> Dict[str, float]:
        """Per-subsystem area in um^2 plus the total and the softmax fraction."""
        parts = {
            "weight_buffer": self.build_weight_buffer(),
            "activation_buffer": self.build_activation_buffer(),
            "pe_array": self.build_pe_array(),
            "gelu_lanes": self.build_gelu_lanes(),
            "normalization_units": self.build_normalization_units(),
            "softmax_blocks": self.build_softmax_blocks(),
        }
        breakdown = {name: module.area_um2(self.library) for name, module in parts.items()}
        breakdown["total"] = sum(breakdown.values())
        breakdown["softmax_fraction"] = breakdown["softmax_blocks"] / breakdown["total"]
        return breakdown

    def synthesize(self) -> SynthesisReport:
        """Synthesis report for the whole accelerator."""
        return synthesize(self.build_hardware(), self.library)

    def softmax_block_report(self) -> SynthesisReport:
        """Synthesis report of a single softmax block (the Table VI column)."""
        return synthesize(IterativeSoftmaxCircuit(self.config.softmax).build_hardware(), self.library)


def recommend_configuration(
    candidates: Sequence[AcceleratorConfig],
    accuracies: Sequence[float],
    accuracy_floor: float,
) -> int:
    """Pick the index of the recommended configuration, Table VI style.

    Among candidates meeting the accuracy floor, the one with the smallest
    total area is chosen; if none meets the floor, the most accurate one is
    returned.  The paper applies exactly this reasoning when it recommends
    ``[8, 32, 8, 3]`` ("accuracy over 90% on CIFAR10 with only a marginal
    increase in total area").
    """
    if len(candidates) != len(accuracies) or not candidates:
        raise ValueError("candidates and accuracies must be equal-length, non-empty")
    areas = [AscendAccelerator(cfg).area_breakdown()["total"] for cfg in candidates]
    meeting = [i for i, acc in enumerate(accuracies) if acc >= accuracy_floor]
    if not meeting:
        return int(max(range(len(candidates)), key=lambda i: accuracies[i]))
    return int(min(meeting, key=lambda i: areas[i]))
