"""Circuit/network co-design driver (Fig. 3 of the paper).

ASCEND's flow couples the two halves of the work:

* the **network level** produces an SC-friendly low-precision ViT (two-stage
  training pipeline, Section V) and, as a by-product, the operand
  distributions of its nonlinear functions;
* the **circuit level** uses those distributions to calibrate and explore the
  GELU and softmax blocks (Section IV, Fig. 8) and feeds the chosen
  approximation back into the network fine-tuning ("ViT guided" one way,
  "circuit aware" the other).

:class:`CodesignDriver` wires those steps together so the end-to-end flow is
one call; each step is also usable on its own (the benches call them
separately so every table/figure stays reproducible in isolation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.accelerator import AcceleratorConfig, AscendAccelerator, ViTArchitecture
from repro.core.dse import DesignPoint, SoftmaxDesignSpace
from repro.core.gelu_si import GeluSIBlock
from repro.core.sc_vit import ScViTEvaluator
from repro.core.softmax_circuit import SoftmaxCircuitConfig
from repro.evaluation.vectors import collect_gelu_inputs, collect_softmax_inputs
from repro.nn.vit import CompactVisionTransformer
from repro.training.datasets import DatasetSplit
from repro.training.pipeline import AscendTrainingPipeline, PipelineConfig, PipelineResult
from repro.utils.validation import check_positive_int


@dataclass
class CodesignReport:
    """Everything the co-design flow produced."""

    pipeline: Optional[PipelineResult]
    gelu_block: GeluSIBlock
    softmax_candidates: List[DesignPoint] = field(default_factory=list)
    selected_softmax: Optional[SoftmaxCircuitConfig] = None
    accelerator_area: Dict[str, float] = field(default_factory=dict)
    circuit_accuracy: Optional[float] = None

    def summary(self) -> Dict[str, object]:
        return {
            "selected_softmax": self.selected_softmax.describe() if self.selected_softmax else None,
            "accelerator_total_um2": self.accelerator_area.get("total"),
            "softmax_fraction": self.accelerator_area.get("softmax_fraction"),
            "circuit_accuracy": self.circuit_accuracy,
            "pipeline": self.pipeline.summary() if self.pipeline else None,
        }


class CodesignDriver:
    """End-to-end ASCEND flow on one dataset."""

    def __init__(
        self,
        train_split: DatasetSplit,
        test_split: DatasetSplit,
        pipeline_config: Optional[PipelineConfig] = None,
        gelu_output_bsl: int = 8,
        softmax_bx: int = 4,
        mae_budget: float = 0.08,
    ) -> None:
        check_positive_int(gelu_output_bsl, "gelu_output_bsl")
        check_positive_int(softmax_bx, "softmax_bx")
        if mae_budget <= 0:
            raise ValueError("mae_budget must be positive")
        self.train_split = train_split
        self.test_split = test_split
        self.pipeline_config = pipeline_config or PipelineConfig()
        self.gelu_output_bsl = gelu_output_bsl
        self.softmax_bx = softmax_bx
        self.mae_budget = mae_budget

    # -------------------------------------------------------------- network
    def train_network(self) -> PipelineResult:
        """Stage "SC-friendly quantisation + circuit-aware fine-tune" of Fig. 3."""
        pipeline = AscendTrainingPipeline(self.train_split, self.test_split, self.pipeline_config)
        return pipeline.run()

    # -------------------------------------------------------------- circuits
    def calibrate_gelu(self, model: CompactVisionTransformer, images: np.ndarray) -> GeluSIBlock:
        """Gate-assisted SI GELU calibrated on the model's own activations."""
        samples = collect_gelu_inputs(model, images, max_samples=20000)
        return GeluSIBlock(output_length=self.gelu_output_bsl, calibration_samples=samples)

    def explore_softmax(
        self,
        model: CompactVisionTransformer,
        images: np.ndarray,
        max_designs: Optional[int] = None,
    ) -> List[DesignPoint]:
        """ViT-guided DSE: Pareto-optimal softmax blocks for this model's logits."""
        logits = collect_softmax_inputs(model, images, max_rows=256)
        space = SoftmaxDesignSpace(self.softmax_bx, logits)
        return space.pareto_front(max_designs=max_designs)

    def select_softmax(self, pareto: List[DesignPoint]) -> SoftmaxCircuitConfig:
        """Smallest-ADP Pareto design within the MAE budget (else most accurate)."""
        if not pareto:
            raise ValueError("the Pareto front is empty")
        within = [p for p in pareto if p.mae <= self.mae_budget]
        chosen = min(within, key=lambda p: p.adp) if within else min(pareto, key=lambda p: p.mae)
        return chosen.config

    # ------------------------------------------------------------------ flow
    def run(
        self,
        pipeline_result: Optional[PipelineResult] = None,
        max_designs: Optional[int] = None,
        evaluation_images: int = 256,
    ) -> CodesignReport:
        """Run the complete co-design loop and assemble the report."""
        result = pipeline_result or self.train_network()
        model = result.final_model
        if model is None:
            raise ValueError("the training pipeline did not produce a final model")
        calib_images = self.train_split.images[: min(64, len(self.train_split))]

        gelu_block = self.calibrate_gelu(model, calib_images)
        pareto = self.explore_softmax(model, calib_images, max_designs=max_designs)
        selected = self.select_softmax(pareto) if pareto else None

        accelerator_area: Dict[str, float] = {}
        circuit_accuracy = None
        if selected is not None:
            arch = ViTArchitecture(
                num_layers=model.config.num_layers,
                num_heads=model.config.num_heads,
                embed_dim=max(model.config.embed_dim, model.config.num_heads),
                mlp_ratio=model.config.mlp_ratio,
                num_tokens=model.config.num_tokens,
                num_classes=model.config.num_classes,
            )
            accelerator = AscendAccelerator(
                AcceleratorConfig(architecture=arch, gelu_output_bsl=self.gelu_output_bsl, softmax=selected)
            )
            accelerator_area = accelerator.area_breakdown()
            evaluator = ScViTEvaluator(model, selected, calibration_images=calib_images)
            circuit_accuracy = evaluator.evaluate(
                self.test_split, max_images=min(evaluation_images, len(self.test_split))
            ).accuracy

        return CodesignReport(
            pipeline=result,
            gelu_block=gelu_block,
            softmax_candidates=pareto,
            selected_softmax=selected,
            accelerator_area=accelerator_area,
            circuit_accuracy=circuit_accuracy,
        )
