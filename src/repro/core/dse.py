"""Design-space exploration of the iterative approximate softmax block.

Section VI-B1 of the paper sweeps the circuit parameters of Table II
(output BSL ``By``, iteration count ``k``, the sub-sample rates ``s1`` and
``s2``, and the scaling factors) — 2916 candidate designs per input BSL —
and extracts the Pareto front in the (ADP, MAE) plane (Fig. 8).  This module
reproduces that sweep:

* :class:`SoftmaxDesignSpace` enumerates the same-size grid, evaluates each
  feasible configuration with the circuit emulation (for MAE on attention
  test vectors) and the hardware cost model (for ADP), and
* :meth:`SoftmaxDesignSpace.pareto_front` extracts the Pareto-optimal
  designs, which feed the accelerator-level study of Table VI.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice, product
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocks import build as build_block
from repro.blocks.specs import (
    SoftmaxCircuitConfig,
    calibrate_alpha_x,
    calibrate_alpha_y,
)
from repro.evaluation.pareto import pareto_front
from repro.hw.cells import CellLibrary
from repro.hw.synthesis import SynthesisReport, synthesize
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration of the softmax design space."""

    config: SoftmaxCircuitConfig
    feasible: bool
    area_um2: float = float("nan")
    delay_ns: float = float("nan")
    adp: float = float("nan")
    mae: float = float("nan")

    def as_row(self) -> Tuple:
        """Row used by the Fig. 8 bench output."""
        return (
            self.config.by,
            self.config.s1,
            self.config.s2,
            self.config.iterations,
            self.area_um2,
            self.delay_ns,
            self.adp,
            self.mae,
        )


#: Default parameter grid: 4 (By) x 3 (k) x 9 (s1) x 9 (s2) x 3 (alpha_y
#: multiplier) = 2916 candidate designs, matching the design-space size the
#: paper reports for each Bx.
DEFAULT_BY_CHOICES: Tuple[int, ...] = (4, 8, 16, 32)
DEFAULT_ITERATION_CHOICES: Tuple[int, ...] = (2, 3, 4)
DEFAULT_S1_CHOICES: Tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256, 512)
DEFAULT_S2_CHOICES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
DEFAULT_ALPHA_Y_MULTIPLIERS: Tuple[float, ...] = (0.5, 1.0, 2.0)


def evaluate_design(
    config: SoftmaxCircuitConfig,
    test_vectors: np.ndarray,
    library: Optional[CellLibrary] = None,
) -> DesignPoint:
    """Evaluate one configuration: MAE on ``test_vectors`` + synthesis cost.

    This is the unit of work the sweep orchestrator shards across worker
    processes; it is a module-level function (not a method) so it pickles
    cleanly and depends only on its arguments.  The evaluation is fully
    deterministic — the circuit emulation quantises on fixed grids and uses
    no RNG — which is what makes parallel sweeps bit-for-bit identical to
    serial ones.
    """
    if not config.is_feasible():
        return DesignPoint(config=config, feasible=False)
    block = build_block("softmax/iterative", spec=config)
    report: SynthesisReport = synthesize(block.build_hardware(), library)
    mae = block.mean_absolute_error(test_vectors)
    return DesignPoint(
        config=config,
        feasible=True,
        area_um2=report.area_um2,
        delay_ns=report.delay_ns,
        adp=report.adp,
        mae=mae,
    )


class SoftmaxDesignSpace:
    """Enumerate and evaluate softmax circuit configurations.

    Parameters
    ----------
    bx:
        Input BSL (the paper explores ``Bx = 2`` and ``Bx = 4``).
    test_vectors:
        Attention-logit rows of shape ``(rows, m)`` used for MAE evaluation.
    m:
        Softmax vector length; inferred from the test vectors when omitted.
    library:
        Cell library for synthesis (defaults to the shared 28 nm-like one).
    """

    def __init__(
        self,
        bx: int,
        test_vectors: np.ndarray,
        m: Optional[int] = None,
        library: Optional[CellLibrary] = None,
        by_choices: Sequence[int] = DEFAULT_BY_CHOICES,
        iteration_choices: Sequence[int] = DEFAULT_ITERATION_CHOICES,
        s1_choices: Sequence[int] = DEFAULT_S1_CHOICES,
        s2_choices: Sequence[int] = DEFAULT_S2_CHOICES,
        alpha_y_multipliers: Sequence[float] = DEFAULT_ALPHA_Y_MULTIPLIERS,
    ) -> None:
        check_positive_int(bx, "bx")
        self.test_vectors = np.asarray(test_vectors, dtype=float)
        if self.test_vectors.ndim != 2:
            raise ValueError("test_vectors must be a 2-D (rows, m) array")
        self.bx = bx
        self.m = int(m if m is not None else self.test_vectors.shape[-1])
        if self.test_vectors.shape[-1] != self.m:
            raise ValueError("test vector row length must equal m")
        self.library = library
        self.by_choices = tuple(by_choices)
        self.iteration_choices = tuple(iteration_choices)
        self.s1_choices = tuple(s1_choices)
        self.s2_choices = tuple(s2_choices)
        self.alpha_y_multipliers = tuple(alpha_y_multipliers)
        self.alpha_x = calibrate_alpha_x(self.test_vectors, bx)
        #: Accounting of the most recent :meth:`explore` call (a
        #: :class:`repro.runner.runner.RunStats`); ``None`` before the first.
        self.last_run_stats: Optional[Any] = None

    # ------------------------------------------------------------ enumeration
    def grid_size(self) -> int:
        """Number of candidate designs in the full grid."""
        return (
            len(self.by_choices)
            * len(self.iteration_choices)
            * len(self.s1_choices)
            * len(self.s2_choices)
            * len(self.alpha_y_multipliers)
        )

    def enumerate_configs(self) -> Iterable[SoftmaxCircuitConfig]:
        """Yield every candidate configuration of the grid (feasible or not).

        The enumeration order is stable and documented: a nested product of
        ``by_choices`` → ``iteration_choices`` → ``s1_choices`` →
        ``s2_choices`` → ``alpha_y_multipliers``, each iterated in its
        declared sequence order (the last axis varies fastest).  Truncated
        explorations (``max_designs``) and sweep sharding both rely on this
        order being deterministic.
        """
        for by, k, s1, s2, mult in product(
            self.by_choices,
            self.iteration_choices,
            self.s1_choices,
            self.s2_choices,
            self.alpha_y_multipliers,
        ):
            yield SoftmaxCircuitConfig(
                m=self.m,
                iterations=k,
                bx=self.bx,
                alpha_x=self.alpha_x,
                by=by,
                alpha_y=calibrate_alpha_y(by, self.m) * mult,
                s1=s1,
                s2=s2,
            )

    # ------------------------------------------------------------- evaluation
    def evaluate(self, config: SoftmaxCircuitConfig) -> DesignPoint:
        """Evaluate one configuration (MAE on the test vectors + synthesis)."""
        return evaluate_design(config, self.test_vectors, self.library)

    def explore(
        self,
        max_designs: Optional[int] = None,
        *,
        workers: int = 1,
        cache: Optional[Any] = None,
        reporter: Optional[Any] = None,
    ) -> List[DesignPoint]:
        """Evaluate the whole grid (or its first ``max_designs`` entries).

        Infeasible grid points are returned with ``feasible=False`` so the
        bench can report the full design-space size the way the paper does.

        ``max_designs`` truncates **deterministically in grid order**: the
        grid is enumerated in the nested order documented by
        :meth:`enumerate_configs` (``by`` → ``iterations`` → ``s1`` → ``s2``
        → ``alpha_y`` multiplier, each in its declared sequence order) and
        exactly the first ``max_designs`` entries are evaluated.  The
        truncation happens *before* any sharding, so the selected subset —
        and the order of the returned points — is identical for every
        ``workers`` count and cache state.

        Parameters
        ----------
        workers:
            Process count for the sweep; ``1`` (the default) keeps the
            historical serial in-process path, ``None``/``0`` uses every
            CPU.  Parallel runs return bit-identical results in the same
            grid order (the evaluation is deterministic and seeds derive
            from grid indices, not shards).
        cache:
            Optional :class:`repro.runner.cache.ResultCache`; previously
            evaluated configurations are served from disk and fresh results
            are stored, so interrupted or repeated explorations resume
            instead of recomputing.
        reporter:
            Optional progress sink (see
            :class:`repro.evaluation.reporting.ProgressReporter`).
        """
        if max_designs is not None and max_designs < 0:
            max_designs = 0
        configs = list(islice(self.enumerate_configs(), max_designs))
        if workers == 1 and cache is None and reporter is None:
            import time

            from repro.runner.runner import RunStats

            start = time.perf_counter()
            points = [self.evaluate(config) for config in configs]
            self.last_run_stats = RunStats(
                total=len(configs),
                evaluated=len(configs),
                workers=1,
                seconds=time.perf_counter() - start,
            )
            return points
        from repro.runner.runner import ParallelSweepRunner
        from repro.runner.tasks import SoftmaxDesignTask

        runner = ParallelSweepRunner(
            SoftmaxDesignTask(test_vectors=self.test_vectors, library=self.library),
            workers=workers,
            cache=cache,
            reporter=reporter,
        )
        points = runner.run(configs)
        self.last_run_stats = runner.stats
        return points

    # ----------------------------------------------------------------- pareto
    @staticmethod
    def feasible_points(points: Sequence[DesignPoint]) -> List[DesignPoint]:
        """Filter out infeasible grid points."""
        return [p for p in points if p.feasible]

    @staticmethod
    def pareto_points(points: Sequence[DesignPoint]) -> List[DesignPoint]:
        """Pareto-optimal subset in the (ADP, MAE) plane, sorted by ADP."""
        feasible = SoftmaxDesignSpace.feasible_points(points)
        if not feasible:
            return []
        mask = pareto_front([p.adp for p in feasible], [p.mae for p in feasible])
        optimal = [p for p, keep in zip(feasible, mask) if keep]
        return sorted(optimal, key=lambda p: p.adp)

    def pareto_front(self, max_designs: Optional[int] = None) -> List[DesignPoint]:
        """Convenience: explore the grid and return its Pareto front."""
        return self.pareto_points(self.explore(max_designs=max_designs))
