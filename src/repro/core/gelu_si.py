"""Gate-assisted selective interconnect (SI) blocks — Section IV-A.

Naive SI can place output transitions anywhere but can only ever *add* 1s as
the input grows, so it is limited to monotonic functions.  ASCEND's
gate-assisted SI outputs the *logical combination* of selected input bits
instead of the bits themselves: a NOT and an AND gate are enough to make an
output bit rise, fall and rise again as the input sweeps — exactly what the
non-monotonic GELU needs (Fig. 4 of the paper).

Because the input bitstream is deterministic (thermometer) and read in
parallel, the block's output is a pure function of the input one-count with
no random fluctuation at all; the only error left is the quantisation of the
input/output grids.  Fig. 2(d) of the paper and the ``bench_fig2`` benchmark
show this.

Classes
-------
``GateAssistedSIBlock``
    Generic block computing an arbitrary scalar function of a thermometer
    input; this is the reusable primitive.
``TernaryGeluBlock``
    The worked example of Fig. 4(b): 8-bit input stream, 2-bit (ternary)
    output, assist logic ``y[1] = !s[2] & s[1]``, ``y[0] = s[0]``.
``GeluSIBlock``
    GELU-specialised block with automatic output-scale calibration, the
    configuration evaluated in Table III / Fig. 7.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.nn.functional_math import gelu_exact
from repro.sc.bitstream import ThermometerStream
from repro.sc.sorting_network import BitonicSortingNetwork
from repro.utils.validation import check_positive_int


class GateAssistedSIBlock:
    """SI block with assist gates: computes any scalar function of the input.

    The block is defined by a lookup ``table[c]`` giving the output one-count
    for every input one-count ``c``; unlike
    :class:`repro.sc.selective_interconnect.NaiveSelectiveInterconnect` the
    table is *not* forced to be monotone, because assist gates can turn
    selected bits off again.

    Parameters
    ----------
    target:
        Real scalar function the block implements.
    input_length, input_scale:
        Thermometer format of the input stream.
    output_length, output_scale:
        Thermometer format of the output stream.
    """

    def __init__(
        self,
        target: Callable[[np.ndarray], np.ndarray],
        input_length: int,
        input_scale: float,
        output_length: int,
        output_scale: float,
    ) -> None:
        check_positive_int(input_length, "input_length")
        check_positive_int(output_length, "output_length")
        if input_scale <= 0 or output_scale <= 0:
            raise ValueError("scales must be positive")
        self.target = target
        self.input_length = input_length
        self.input_scale = input_scale
        self.output_length = output_length
        self.output_scale = output_scale
        self.table = self._build_table()

    # ----------------------------------------------------------------- table
    def _build_table(self) -> np.ndarray:
        """Output one-count for every possible input one-count (no constraint)."""
        counts = np.arange(self.input_length + 1)
        x = self.input_scale * (counts - self.input_length / 2.0)
        y = np.asarray(self.target(x), dtype=float)
        levels = np.round(y / self.output_scale).astype(np.int64)
        # Clip symmetrically to ±(L // 2): for odd L, ``-L // 2`` floors to
        # -(L + 1)//2, which would let table counts go negative.
        levels = np.clip(levels, -(self.output_length // 2), self.output_length // 2)
        return (levels + self.output_length // 2).astype(np.int64)

    def quantized_function(self, values: np.ndarray) -> np.ndarray:
        """The exact function the circuit realises (including both grids)."""
        stream = ThermometerStream.encode(values, self.input_length, self.input_scale)
        return self.process(stream).decode()

    # -------------------------------------------------------------- simulate
    def process(self, stream: ThermometerStream) -> ThermometerStream:
        """Map an input thermometer stream through the block."""
        if stream.length != self.input_length:
            raise ValueError(
                f"block expects input length {self.input_length}, got {stream.length}"
            )
        counts = self.table[stream.counts]
        # Table entries are clipped onto [0, output_length] at build time, so
        # the constructor's range scan is skipped on this per-call hot path
        # (the SC-ViT evaluator routes every GELU activation through here).
        return ThermometerStream(
            counts=counts, length=self.output_length, scale=self.output_scale, validate=False
        )

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """End-to-end: encode real values, run the block, decode the outputs."""
        return self.quantized_function(np.asarray(values, dtype=float))

    # ------------------------------------------------------------ complexity
    def output_bit_transitions(self) -> np.ndarray:
        """Number of 0/1 transitions of each output bit across the input sweep.

        Output bit ``b`` of the thermometer code is 1 exactly when the output
        count exceeds ``b``; every transition of that indicator as the input
        count sweeps needs one selection tap (and the falling ones need
        assist gates).  This is the quantity the hardware model prices.
        """
        transitions = np.empty(self.output_length, dtype=np.int64)
        for bit in range(self.output_length):
            indicator = (self.table > bit).astype(np.int8)
            transitions[bit] = int(np.abs(np.diff(indicator)).sum())
        return transitions

    def is_monotonic(self) -> bool:
        """True when the realised table happens to be non-decreasing."""
        return bool(np.all(np.diff(self.table) >= 0))

    #: Register banks are inserted into the input sorter after this many
    #: compare-exchange stages; the activation unit is a feed-forward
    #: pipeline, so throughput is one result per cycle at this stage depth.
    SORTER_PIPELINE_STAGES = 6

    # -------------------------------------------------------------- hardware
    def build_hardware(self, include_input_sorter: bool = True, name: Optional[str] = None) -> HardwareModule:
        """Structural model of the block.

        Per output bit: one selection tap (buffer) per table transition, one
        assist gate per *falling* transition (the NOT/AND pair of Fig. 4a),
        and an output register.  The optional input sorter is the BSN that
        turns the parallel partial-sum bits arriving from the preceding
        matrix-multiply tile into a thermometer stream; it is included by
        default so the comparison against serial baselines prices the whole
        activation unit (the same convention is applied to the naive-SI
        baseline).  The sorter is pipelined (its register banks are charged
        to the inventory) and the reported delay is the per-result initiation
        interval, matching how the serial baselines are also credited with
        their pipelined per-cycle period.
        """
        transitions = self.output_bit_transitions()
        total_transitions = int(transitions.sum())
        falling = max(0, (total_transitions - self.output_length) // 2)
        inventory = ComponentInventory(
            {
                "BUF": max(1, total_transitions),
                "AND2": max(1, falling + self.output_length),
                "INV": max(1, falling),
                "DFF": self.output_length,
            }
        )
        submodules = []
        critical_path = ["BUF", "INV", "AND2", "DFF"]
        if include_input_sorter:
            sorter = BitonicSortingNetwork(self.input_length).build_hardware(
                name="si_input_sorter", pipeline_every=self.SORTER_PIPELINE_STAGES
            )
            submodules.append((sorter, 1))
            critical_path = ["SORT_CE"] * min(self.SORTER_PIPELINE_STAGES, sorter.metadata["depth"]) + critical_path
        return HardwareModule(
            name=name or f"gate_assisted_si_{self.input_length}to{self.output_length}",
            inventory=inventory,
            critical_path=tuple(critical_path),
            cycles=1,
            submodules=submodules,
            pipelined=True,
            metadata={
                "input_length": self.input_length,
                "output_length": self.output_length,
                "input_scale": self.input_scale,
                "output_scale": self.output_scale,
                "transitions": total_transitions,
                "monotonic": self.is_monotonic(),
            },
        )


class TernaryGeluBlock(GateAssistedSIBlock):
    """The Fig. 4(b) worked example: 8-bit input, ternary (2-bit) output.

    The selection signals ``s[2:0]`` fire at the input counts where the
    quantised GELU changes level; the assist logic
    ``y[1] = !s[2] & s[1]``, ``y[0] = s[0]`` realises the 0 → -1 → 0 → +1
    staircase of ternary GELU.

    The default scaling factors (input grid covering roughly ``[-3, 3]``,
    output step ~0.2) are the ones for which the ternary staircase actually
    exhibits GELU's negative dip, matching the transfer curve plotted in the
    paper's Fig. 4(b).
    """

    def __init__(self, input_scale: float = 0.75, output_scale: float = 0.2) -> None:
        super().__init__(
            target=gelu_exact,
            input_length=8,
            input_scale=input_scale,
            output_length=2,
            output_scale=output_scale,
        )

    def selection_signals(self, stream: ThermometerStream) -> np.ndarray:
        """The three selection signals of Fig. 4, for inspection and tests.

        ``s[2]`` marks the entry into the negative dip, ``s[1]`` the return
        to zero, ``s[0]`` the rise to +1; each is 1 once the input count has
        passed the corresponding transition.
        """
        diffs = np.diff(self.table)
        change_points = np.nonzero(diffs != 0)[0] + 1  # input counts where the level changes
        signals = np.zeros(stream.shape + (3,), dtype=np.int8)
        for idx, point in enumerate(change_points[:3]):
            signals[..., 2 - idx] = (stream.counts >= point).astype(np.int8)
        return signals


def calibrate_output_scale(
    target: Callable[[np.ndarray], np.ndarray],
    input_samples: np.ndarray,
    output_length: int,
    input_length: int,
    input_scale: float,
    candidate_scales: Optional[Sequence[float]] = None,
) -> float:
    """Pick the output scaling factor minimising MAE on a sample distribution.

    This mirrors what a designer does when fixing the fixed-point formats of
    an accelerator: the representable output range (``scale * L / 2``) is
    traded against resolution (``scale``), using the actual operand
    distribution collected from the network.
    """
    check_positive_int(output_length, "output_length")
    input_samples = np.asarray(input_samples, dtype=float).reshape(-1)
    reference = np.asarray(target(input_samples), dtype=float)
    max_abs = max(np.abs(reference).max(), 1e-6)
    if candidate_scales is None:
        # From "range exactly covered" down to fine resolution.
        full = 2.0 * max_abs / output_length
        candidate_scales = full * np.geomspace(0.05, 1.5, 40)
    best_scale, best_mae = None, np.inf
    for scale in candidate_scales:
        block = GateAssistedSIBlock(
            target, input_length, input_scale, output_length, float(scale)
        )
        mae = float(np.mean(np.abs(block.evaluate(input_samples) - reference)))
        if mae < best_mae:
            best_scale, best_mae = float(scale), mae
    return best_scale


class GeluSIBlock(GateAssistedSIBlock):
    """GELU block via gate-assisted SI, the design evaluated in Table III.

    ``output_length`` is the BSL reported in the paper's table (2, 4 or 8
    bits).  The input stream is the accumulated pre-activation arriving from
    the preceding linear layer; its length defaults to ``32x`` the output
    BSL, the ratio used throughout the accelerator model.  When
    ``output_scale`` is omitted it is calibrated on ``calibration_samples``
    (or a standard-normal proxy of the MLP pre-activation distribution).
    """

    #: Ratio between the accumulated input BSL and the output BSL.
    INPUT_EXPANSION = 32

    def __init__(
        self,
        output_length: int,
        input_length: Optional[int] = None,
        input_scale: Optional[float] = None,
        output_scale: Optional[float] = None,
        calibration_samples: Optional[np.ndarray] = None,
        input_range: float = 4.0,
    ) -> None:
        check_positive_int(output_length, "output_length")
        if input_length is None:
            input_length = self.INPUT_EXPANSION * output_length
        if input_scale is None:
            input_scale = 2.0 * input_range / input_length
        if calibration_samples is None:
            calibration_samples = np.linspace(-input_range, input_range, 2048)
        if output_scale is None:
            output_scale = calibrate_output_scale(
                gelu_exact,
                calibration_samples,
                output_length,
                input_length,
                input_scale,
            )
        super().__init__(
            target=gelu_exact,
            input_length=input_length,
            input_scale=input_scale,
            output_length=output_length,
            output_scale=output_scale,
        )
