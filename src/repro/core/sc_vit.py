"""SC-friendly ViT: evaluating the trained network through the circuit models.

The training pipeline produces a W2-A2-R16 BN-ViT that was fine-tuned
against the *floating-point* iterative-softmax recurrence.  The accelerator,
however, executes that recurrence on thermometer bitstreams with finite BSLs
and sub-sampling — the circuit of Fig. 5 — and implements GELU with the
gate-assisted SI block.  This module closes that gap: it evaluates a trained
:class:`~repro.nn.vit.CompactVisionTransformer` while routing

* every attention softmax through :class:`~repro.core.softmax_circuit.IterativeSoftmaxCircuit`
  (bit-accurate emulation, per head-row), and
* every GELU through a :class:`~repro.core.gelu_si.GeluSIBlock` lookup,

which is what the accuracy column of Table VI measures for each softmax
configuration ``[By, s1, s2, k]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.gelu_si import GeluSIBlock
from repro.core.softmax_circuit import IterativeSoftmaxCircuit, SoftmaxCircuitConfig, calibrate_alpha_x
from repro.nn.autograd import Tensor, no_grad
from repro.nn.vit import CompactVisionTransformer
from repro.training.datasets import DatasetSplit
from repro.utils.validation import check_positive_int


@dataclass
class ScViTEvaluationResult:
    """Accuracy of one circuit configuration on one dataset split."""

    accuracy: float
    softmax_config: SoftmaxCircuitConfig
    gelu_output_bsl: Optional[int]
    num_images: int


class ScViTEvaluator:
    """Runs a trained ViT with circuit-accurate softmax (and optionally GELU).

    Parameters
    ----------
    model:
        A trained compact ViT (typically the output of the training pipeline).
    softmax_config:
        The softmax circuit configuration to emulate.  ``m`` is overridden to
        the model's token count and ``alpha_x`` is calibrated on the model's
        own attention logits unless ``calibrate`` is disabled.
    gelu_output_bsl:
        When given, GELU activations are also routed through a gate-assisted
        SI block of that output BSL; ``None`` keeps the exact GELU so the
        effect of the softmax block can be isolated (the Table VI setting).
    calibration_logits:
        Pre-collected attention logits for the ``alpha_x`` calibration.
        When several evaluators share one model (the Table VI sweep),
        collecting the logits once and passing them here avoids re-running
        the calibration forward passes per configuration.
    """

    def __init__(
        self,
        model: CompactVisionTransformer,
        softmax_config: SoftmaxCircuitConfig,
        gelu_output_bsl: Optional[int] = None,
        calibration_images: Optional[np.ndarray] = None,
        calibrate: bool = True,
        calibration_logits: Optional[np.ndarray] = None,
    ) -> None:
        self.model = model
        tokens = model.config.num_tokens
        config = softmax_config.clamped_to_vector_length(tokens)
        if calibrate and calibration_logits is None and calibration_images is not None:
            from repro.evaluation.vectors import collect_softmax_inputs

            calibration_logits = collect_softmax_inputs(model, calibration_images, max_rows=512)
        if calibrate and calibration_logits is not None:
            config = config.with_updates(alpha_x=calibrate_alpha_x(calibration_logits, config.bx))
        self.softmax_circuit = IterativeSoftmaxCircuit(config)
        self.gelu_block: Optional[GeluSIBlock] = None
        if gelu_output_bsl is not None:
            check_positive_int(gelu_output_bsl, "gelu_output_bsl")
            self.gelu_block = GeluSIBlock(output_length=gelu_output_bsl)

    # ------------------------------------------------------------- plumbing
    def _patched_softmax(self, scores: Tensor) -> Tensor:
        """Run the circuit emulation on the last axis of the score tensor."""
        flat = scores.data.reshape(-1, scores.shape[-1])
        out = self.softmax_circuit.forward(flat)
        # The circuit grid can make a whole row zero / slightly negative;
        # renormalise non-negatively the way the accelerator's output stage
        # clamps and rescales attention rows before the value multiply.
        out = np.clip(out, 0.0, None)
        row_sum = out.sum(axis=-1, keepdims=True)
        uniform = np.full_like(out, 1.0 / out.shape[-1])
        out = np.where(row_sum > 0, out / np.maximum(row_sum, 1e-9), uniform)
        return Tensor(out.reshape(scores.shape))

    def _patched_gelu(self, x: Tensor) -> Tensor:
        assert self.gelu_block is not None
        return Tensor(self.gelu_block.evaluate(x.data))

    def evaluate(self, split: DatasetSplit, batch_size: int = 128, max_images: Optional[int] = None) -> ScViTEvaluationResult:
        """Top-1 accuracy of the model under the circuit-level nonlinearities."""
        model = self.model
        was_training = model.training
        model.eval()

        # Monkey-patch the attention softmax (and optionally the MLP GELU) of
        # every block for the duration of the evaluation.
        originals = []
        for block in model.blocks:
            originals.append((block.attention, block.attention._apply_softmax, block.mlp.activation.forward))
            block.attention._apply_softmax = self._patched_softmax
            if self.gelu_block is not None:
                block.mlp.activation.forward = self._patched_gelu

        images = split.images if max_images is None else split.images[:max_images]
        labels = split.labels if max_images is None else split.labels[:max_images]
        correct = 0
        try:
            with no_grad():
                for start in range(0, len(images), batch_size):
                    chunk = Tensor(images[start : start + batch_size])
                    logits = model(chunk)
                    correct += int(np.sum(np.argmax(logits.data, axis=-1) == labels[start : start + batch_size]))
        finally:
            for attention, softmax_fn, gelu_fn in originals:
                attention._apply_softmax = softmax_fn
            for block, (_, _, gelu_fn) in zip(model.blocks, originals):
                block.mlp.activation.forward = gelu_fn
            if was_training:
                model.train()

        return ScViTEvaluationResult(
            accuracy=float(100.0 * correct / max(1, len(images))),
            softmax_config=self.softmax_circuit.config,
            gelu_output_bsl=self.gelu_block.output_length if self.gelu_block else None,
            num_images=int(len(images)),
        )


def evaluate_softmax_configurations(
    model: CompactVisionTransformer,
    split: DatasetSplit,
    configs: Dict[str, SoftmaxCircuitConfig],
    batch_size: int = 128,
    max_images: Optional[int] = None,
) -> Dict[str, ScViTEvaluationResult]:
    """Evaluate several softmax circuit configurations on the same model.

    This is the inner loop of the Table VI bench: the same trained weights,
    different ``[By, s1, s2, k]`` softmax blocks.
    """
    from repro.evaluation.vectors import collect_softmax_inputs

    # One calibration pass shared by every configuration: the logits depend
    # only on the model, not on the circuit parameters being swept.
    calibration_images = split.images[: min(64, len(split))]
    calibration_logits = collect_softmax_inputs(model, calibration_images, max_rows=512)
    results: Dict[str, ScViTEvaluationResult] = {}
    for name, config in configs.items():
        evaluator = ScViTEvaluator(model, config, calibration_logits=calibration_logits)
        results[name] = evaluator.evaluate(split, batch_size=batch_size, max_images=max_images)
    return results
