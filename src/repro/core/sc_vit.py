"""SC-friendly ViT: evaluating the trained network through the circuit models.

The training pipeline produces a W2-A2-R16 BN-ViT that was fine-tuned
against the *floating-point* iterative-softmax recurrence.  The accelerator,
however, executes that recurrence on thermometer bitstreams with finite BSLs
and sub-sampling — the circuit of Fig. 5 — and implements GELU with the
gate-assisted SI block.  This module closes that gap: it evaluates a trained
:class:`~repro.nn.vit.CompactVisionTransformer` while routing

* every attention softmax through :class:`~repro.core.softmax_circuit.IterativeSoftmaxCircuit`
  (bit-accurate emulation, per head-row), and
* every GELU through a :class:`~repro.core.gelu_si.GeluSIBlock` lookup,

which is what the accuracy column of Table VI measures for each softmax
configuration ``[By, s1, s2, k]``.

:class:`ScViTEvaluator` is now a thin shim over
:class:`repro.eval_pipeline.ScViTEvalPipeline` — the batched, streaming,
fault-injectable evaluation subsystem (see ``docs/evaluation.md``).  The
public API and the evaluation protocol are unchanged; the substitutions now
run vectorised over the whole batch and under chunk-invariant matmul
numerics, so results are bit-identical for every ``batch_size``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.blocks.specs import SoftmaxCircuitConfig
from repro.eval_pipeline.pipeline import ScViTEvalPipeline
from repro.nn.vit import CompactVisionTransformer
from repro.training.datasets import DatasetSplit

__all__ = ["ScViTEvaluationResult", "ScViTEvaluator", "evaluate_softmax_configurations"]


@dataclass
class ScViTEvaluationResult:
    """Accuracy of one circuit configuration on one dataset split."""

    accuracy: float
    softmax_config: SoftmaxCircuitConfig
    gelu_output_bsl: Optional[int]
    num_images: int


class ScViTEvaluator:
    """Runs a trained ViT with circuit-accurate softmax (and optionally GELU).

    Parameters
    ----------
    model:
        A trained compact ViT (typically the output of the training pipeline).
    softmax_config:
        The softmax circuit configuration to emulate.  ``m`` is overridden to
        the model's token count and ``alpha_x`` is calibrated on the model's
        own attention logits unless ``calibrate`` is disabled.
    gelu_output_bsl:
        When given, GELU activations are also routed through a gate-assisted
        SI block of that output BSL; ``None`` keeps the exact GELU so the
        effect of the softmax block can be isolated (the Table VI setting).
    calibration_logits:
        Pre-collected attention logits for the ``alpha_x`` calibration.
        When several evaluators share one model (the Table VI sweep),
        collecting the logits once and passing them here avoids re-running
        the calibration forward passes per configuration.
    flip_prob / fault_seed:
        Optional bit-flip fault injection on every thermometer-stream
        interface of the emulated circuits (the SC noise-tolerance knob);
        the default of ``0.0`` is exact, fault-free emulation.
    """

    def __init__(
        self,
        model: CompactVisionTransformer,
        softmax_config: SoftmaxCircuitConfig,
        gelu_output_bsl: Optional[int] = None,
        calibration_images: Optional[np.ndarray] = None,
        calibrate: bool = True,
        calibration_logits: Optional[np.ndarray] = None,
        flip_prob: float = 0.0,
        fault_seed: int = 0,
    ) -> None:
        self.model = model
        self.pipeline = ScViTEvalPipeline(
            model,
            softmax_config,
            gelu_output_bsl=gelu_output_bsl,
            flip_prob=flip_prob,
            fault_seed=fault_seed,
            calibration_images=calibration_images,
            calibrate=calibrate,
            calibration_logits=calibration_logits,
        )

    # The circuit blocks remain reachable where they always were (now as
    # `repro.blocks` registry adapters; the wrapped implementations sit one
    # attribute deeper at `.circuit` / `.block`).
    @property
    def softmax_circuit(self):
        return self.pipeline.softmax_circuit

    @property
    def gelu_block(self):
        return self.pipeline.gelu_block

    def evaluate(
        self, split: DatasetSplit, batch_size: int = 128, max_images: Optional[int] = None
    ) -> ScViTEvaluationResult:
        """Top-1 accuracy of the model under the circuit-level nonlinearities."""
        result = self.pipeline.evaluate(split, max_images=max_images, batch_size=batch_size)
        return ScViTEvaluationResult(
            accuracy=result.accuracy,
            softmax_config=result.softmax_config,
            gelu_output_bsl=result.gelu_output_bsl,
            num_images=result.num_images,
        )


def evaluate_softmax_configurations(
    model: CompactVisionTransformer,
    split: DatasetSplit,
    configs: Dict[str, SoftmaxCircuitConfig],
    batch_size: int = 128,
    max_images: Optional[int] = None,
) -> Dict[str, ScViTEvaluationResult]:
    """Evaluate several softmax circuit configurations on the same model.

    This is the inner loop of the Table VI bench: the same trained weights,
    different ``[By, s1, s2, k]`` softmax blocks.
    """
    from repro.evaluation.vectors import collect_softmax_inputs

    # One calibration pass shared by every configuration: the logits depend
    # only on the model, not on the circuit parameters being swept.
    calibration_images = split.images[: min(64, len(split))]
    calibration_logits = collect_softmax_inputs(model, calibration_images, max_rows=512)
    results: Dict[str, ScViTEvaluationResult] = {}
    for name, config in configs.items():
        evaluator = ScViTEvaluator(model, config, calibration_logits=calibration_logits)
        results[name] = evaluator.evaluate(split, batch_size=batch_size, max_images=max_images)
    return results
