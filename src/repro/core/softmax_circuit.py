"""SC circuit block for the iterative approximate softmax — Fig. 5 / Table II.

The circuit executes Algorithm 1 on thermometer-coded bitstreams.  Per
iteration and per vector element it instantiates (Fig. 5):

* **MUL ①** — truth-table multiplier computing ``z_i = x_i * y_i``,
* **BSN ①** — a global bitonic sorting network accumulating ``sum(z)`` over
  the ``m`` elements, sub-sampled by ``s1`` before it fans back out,
* **MUL ②** — multiplier computing ``y_i * sum(z)``, sub-sampled by ``s2``,
* two **re-scaling blocks** aligning the scaling factors of ``z_i / k`` and
  ``- y_i * sum(z) / k`` (the division by the constant ``k`` is free: it only
  divides the scaling factor),
* **BSN ②** — the final accumulation producing ``y_i^j``, re-encoded on the
  ``(By, alpha_y)`` output grid for the next iteration.

The functional emulation below follows the same dataflow with the same
quantisation points: the products are exact on their product grids (that is
what a truth-table multiplier does), the two sub-sampling steps quantise on
grids coarsened by ``s1`` and ``s2``, and the iteration output is re-encoded
on the ``(By, alpha_y)`` grid.  Those are the only places the circuit loses
information, so they are the only places the emulation does.

The structural model (:meth:`IterativeSoftmaxCircuit.build_hardware`)
instantiates the same pieces through the :mod:`repro.hw` cost model; the
design space of Table II / Fig. 8 is swept by :mod:`repro.core.dse`.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.specs import (  # noqa: F401  (re-exported: historical home)
    SoftmaxCircuitConfig,
    calibrate_alpha_x,
    calibrate_alpha_y,
)
from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.nn.functional_math import softmax_exact
from repro.sc.arithmetic import thermometer_multiplier_hardware
from repro.sc.bitstream import ThermometerStream
from repro.sc.rescaling import RescalingBlock
from repro.sc.sorting_network import BitonicSortingNetwork

__all__ = [
    "SoftmaxCircuitConfig",
    "IterativeSoftmaxCircuit",
    "calibrate_alpha_x",
    "calibrate_alpha_y",
]

# ``SoftmaxCircuitConfig`` (and the two ``calibrate_alpha_*`` helpers) moved
# to :mod:`repro.blocks.specs` as the spec of the ``softmax/iterative``
# registry family; the imports above keep this module as a compatible home
# for historical callers.


class IterativeSoftmaxCircuit:
    """Functional + structural model of the ASCEND softmax block."""

    def __init__(self, config: SoftmaxCircuitConfig) -> None:
        if not config.is_feasible():
            raise ValueError(
                f"infeasible softmax circuit configuration: {config}"
            )
        self.config = config

    # -------------------------------------------------------------- simulate
    def forward(self, x: np.ndarray, stream_hook=None) -> np.ndarray:
        """Run the circuit on a batch of logit rows.

        ``x`` has shape ``(..., m)``; the returned array has the same shape
        and contains the decoded circuit outputs.

        ``stream_hook``, when given, is called at every thermometer-stream
        interface of the dataflow — ``hook(site, stream) -> stream`` with
        ``site`` one of ``"x"`` (the encoded input), ``"y0"`` (the constant
        initial estimate) or ``"y<i>"`` (the re-encoded output of iteration
        ``i``) — and its return value replaces the stream.  This is how the
        eval pipeline threads bit-flip fault injection through the circuit
        without the emulation ever special-casing faults; ``None`` (the
        default) keeps the exact historical numerics.
        """
        cfg = self.config
        x = np.asarray(x, dtype=float)
        if x.shape[-1] != cfg.m:
            raise ValueError(f"expected rows of length {cfg.m}, got {x.shape[-1]}")

        x_stream = ThermometerStream.encode(x, cfg.bx, cfg.alpha_x)
        if stream_hook is not None:
            x_stream = stream_hook("x", x_stream)
        x_levels = x_stream.signed_levels()  # integers in [-Bx/2, Bx/2]
        x_q = x_levels * cfg.alpha_x

        # y^0 = 1/m, initialised as a constant bitstream.  The hardware pins
        # the initial count to the nearest non-zero level: if 1/m rounded to
        # zero the recurrence z = x * y could never leave the all-zero state.
        init_level = max(1, int(round((1.0 / cfg.m) / cfg.alpha_y)))
        init_level = min(init_level, cfg.by // 2)
        # init_level is clamped to [1, By/2] above, so the range scan of the
        # constructor would be pure overhead on this per-row hot path.
        y_stream = ThermometerStream.from_quantized(
            np.full(x.shape, init_level, dtype=np.int64), cfg.by, cfg.alpha_y, validate=False
        )
        if stream_hook is not None:
            y_stream = stream_hook("y0", y_stream)

        z_grid = cfg.alpha_x * cfg.alpha_y  # value of one signed level of a z stream
        for iteration in range(cfg.iterations):
            y_levels = y_stream.signed_levels()
            y_q = y_levels * cfg.alpha_y

            # MUL (1): exact product on the (alpha_x * alpha_y) grid — a
            # truth-table multiplier introduces no error of its own.
            z_levels = x_levels * y_levels
            z_q = z_levels * z_grid

            # BSN (1) + s1 sub-sampling: the concatenated product streams are
            # sorted and every s1-th bit is kept.  On signed levels that is a
            # rounded division by s1 (the grid coarsens by the same factor).
            sum_levels = z_levels.sum(axis=-1, keepdims=True)
            sum_sub_levels = np.rint(sum_levels / cfg.s1).astype(np.int64)
            sum_grid = z_grid * cfg.s1

            # MUL (2) + s2 sub-sampling: y_i * sum(z) quantised on its
            # product grid, then coarsened by s2.
            prod_levels = y_levels * sum_sub_levels
            prod_sub_levels = np.rint(prod_levels / cfg.s2).astype(np.int64)
            prod_grid = cfg.alpha_y * sum_grid * cfg.s2
            prod = prod_sub_levels * prod_grid

            # Re-scaling + BSN (2): accumulate y + (z - y*sum(z)) / k and
            # re-encode onto the (By, alpha_y) output grid for the next
            # iteration (the division by k is a pure scale change).
            update = y_q + (z_q - prod) / cfg.iterations
            y_stream = ThermometerStream.encode(update, cfg.by, cfg.alpha_y)
            if stream_hook is not None:
                y_stream = stream_hook(f"y{iteration + 1}", y_stream)

        return y_stream.decode()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def mean_absolute_error(self, x: np.ndarray) -> float:
        """MAE of the circuit against the exact softmax on a batch of rows."""
        x = np.asarray(x, dtype=float)
        return float(np.mean(np.abs(self.forward(x) - softmax_exact(x, axis=-1))))

    # -------------------------------------------------------------- hardware
    def build_compute_unit(self) -> HardwareModule:
        """One of the ``m`` per-element compute units of Fig. 5."""
        cfg = self.config
        mul1 = thermometer_multiplier_hardware(cfg.bx, cfg.by, name="mul1")
        mul2 = thermometer_multiplier_hardware(cfg.by, cfg.sum_length, name="mul2")
        # Streams whose length is not a multiple of the sub-sample rate are
        # padded up to the next multiple, exactly as in the functional model.
        padded_prod = cfg.prod_length * cfg.s2
        rescale1 = RescalingBlock(padded_prod, cfg.s2).build_hardware("rescale_prod")
        rescale2 = RescalingBlock(max(cfg.z_length, 2), 1).build_hardware("rescale_z")
        # BSN (2) adds y (By bits), z/k and -y*sum(z)/k after re-scaling; its
        # width is the concatenation of the three aligned streams.
        bsn2_width = cfg.by + cfg.z_length + cfg.prod_length
        bsn2 = BitonicSortingNetwork(bsn2_width).build_hardware(name="bsn2")
        inventory = ComponentInventory({"DFF": cfg.by, "INV": cfg.prod_length})
        return HardwareModule(
            name="softmax_compute_unit",
            inventory=inventory,
            critical_path=("DFF",),
            cycles=1,
            submodules=[(mul1, 1), (mul2, 1), (rescale1, 1), (rescale2, 1), (bsn2, 1)],
            pipelined=True,
            metadata={"by": cfg.by, "bx": cfg.bx, "bsn2_width": bsn2_width},
        )

    def build_hardware(self) -> HardwareModule:
        """The whole softmax block: ``m`` compute units plus the global BSN ①.

        The critical path of one iteration chains MUL ① → BSN ① → re-scale →
        MUL ② → re-scale → BSN ②; the block needs ``k`` iterations per
        softmax row, so the latency is ``k`` times that path.
        """
        cfg = self.config
        unit = self.build_compute_unit()
        bsn1 = BitonicSortingNetwork(cfg.sum_length_raw).build_hardware(name="bsn1")

        # Chain the per-iteration critical path explicitly (cell names).
        mul1_sorter_depth = BitonicSortingNetwork(max(cfg.z_length, 2)).depth
        mul2_sorter_depth = BitonicSortingNetwork(max(cfg.by * cfg.sum_length // 2, 2)).depth
        bsn2_depth = BitonicSortingNetwork(cfg.by + cfg.z_length + cfg.prod_length).depth
        path = (
            ["AND2", "XOR2"] + ["SORT_CE"] * mul1_sorter_depth  # MUL 1
            + ["SORT_CE"] * BitonicSortingNetwork(cfg.sum_length_raw).depth  # BSN 1
            + ["BUF"]  # s1 re-scaling tap
            + ["AND2", "XOR2"] + ["SORT_CE"] * mul2_sorter_depth  # MUL 2
            + ["BUF"]  # s2 re-scaling tap
            + ["SORT_CE"] * bsn2_depth  # BSN 2
            + ["DFF"]
        )
        inventory = ComponentInventory({"DFF": cfg.m * cfg.by})
        return HardwareModule(
            name=f"ascend_softmax_m{cfg.m}_bx{cfg.bx}_by{cfg.by}",
            inventory=inventory,
            critical_path=tuple(path),
            cycles=cfg.iterations,
            submodules=[(unit, cfg.m), (bsn1, 1)],
            pipelined=True,
            metadata={
                "m": cfg.m,
                "iterations": cfg.iterations,
                "bx": cfg.bx,
                "by": cfg.by,
                "alpha_x": cfg.alpha_x,
                "alpha_y": cfg.alpha_y,
                "s1": cfg.s1,
                "s2": cfg.s2,
            },
        )
