"""Iterative approximate softmax — Algorithm 1 of the paper (Section IV-B).

Softmax needs a division and an exponential, both expensive and inaccurate
in SC.  ASCEND instead parameterises ``y(t) = softmax(t x)`` and integrates
``y'(t)`` from the known value ``y(0) = 1/m`` to ``y(1) = softmax(x)`` with
``k`` Euler steps.  Because ``y'(t)`` can be written in terms of ``y(t)``
itself, each step needs only multiplications, accumulations and a division
by the constant ``k`` — all SC-friendly operations.

This module holds the *algorithmic* layer: the floating-point recurrence,
its convergence analysis and the derivative used by the network substrate
when the ViT is fine-tuned "approximate-softmax aware".  The SC circuit that
executes the recurrence on thermometer bitstreams lives in
:mod:`repro.core.softmax_circuit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.nn.functional_math import softmax_exact
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class IterativeSoftmaxResult:
    """Output of a traced iterative-softmax run.

    ``trajectory[j]`` is the approximation after ``j`` iterations (so
    ``trajectory[0]`` is the uniform initialisation and ``trajectory[-1]``
    the returned value).
    """

    output: np.ndarray
    trajectory: Tuple[np.ndarray, ...]


class IterativeSoftmax:
    """Floating-point iterative approximate softmax with ``k`` iterations."""

    def __init__(self, iterations: int = 3, axis: int = -1) -> None:
        check_positive_int(iterations, "iterations")
        self.iterations = iterations
        self.axis = axis

    # --------------------------------------------------------------- forward
    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Algorithm 1: ``k`` Euler steps from the uniform distribution."""
        return self.forward_traced(x).output

    def forward_traced(self, x: np.ndarray) -> IterativeSoftmaxResult:
        """Same as :meth:`forward` but keeping every intermediate iterate."""
        x = np.asarray(x, dtype=float)
        x = np.moveaxis(x, self.axis, -1)
        m = x.shape[-1]
        y = np.full_like(x, 1.0 / m)
        trajectory: List[np.ndarray] = [np.moveaxis(y, -1, self.axis).copy()]
        for _ in range(self.iterations):
            z = x * y
            total = z.sum(axis=-1, keepdims=True)
            y = y + (z - y * total) / self.iterations
            trajectory.append(np.moveaxis(y, -1, self.axis).copy())
        return IterativeSoftmaxResult(
            output=np.moveaxis(y, -1, self.axis),
            trajectory=tuple(trajectory),
        )

    # -------------------------------------------------------------- backward
    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        """Gradient of the iterative softmax w.r.t. its input.

        The approximate-softmax-aware fine-tuning stage (Section V) trains
        the ViT *through* the approximation, so the exact Jacobian of the
        recurrence is needed, not the Jacobian of the true softmax.  It is
        obtained by reverse-mode differentiation of the ``k`` Euler steps.
        """
        x = np.asarray(x, dtype=float)
        grad_output = np.asarray(grad_output, dtype=float)
        if grad_output.shape != x.shape:
            raise ValueError("grad_output must match the input shape")
        x_m = np.moveaxis(x, self.axis, -1)
        g_m = np.moveaxis(grad_output, self.axis, -1)
        m = x_m.shape[-1]
        k = self.iterations

        # Forward pass storing the iterates needed by the reverse sweep.
        ys = [np.full_like(x_m, 1.0 / m)]
        for _ in range(k):
            y = ys[-1]
            z = x_m * y
            total = z.sum(axis=-1, keepdims=True)
            ys.append(y + (z - y * total) / k)

        grad_x = np.zeros_like(x_m)
        grad_y = g_m.copy()
        for j in range(k, 0, -1):
            y = ys[j - 1]
            z = x_m * y
            total = z.sum(axis=-1, keepdims=True)
            # y_next = y + (z - y * total) / k   with  z = x * y,  total = sum(z)
            grad_z = grad_y / k
            grad_total = -(grad_y * y).sum(axis=-1, keepdims=True) / k
            grad_y_direct = grad_y * (1.0 - total / k)
            grad_z_from_total = grad_total  # broadcast over the row
            grad_z_total = grad_z + grad_z_from_total
            grad_x += grad_z_total * y
            grad_y = grad_y_direct + grad_z_total * x_m
        return np.moveaxis(grad_x, -1, self.axis)

    # -------------------------------------------------------------- analysis
    def error_vs_exact(self, x: np.ndarray) -> float:
        """Mean absolute error against the exact softmax on a batch of rows."""
        x = np.asarray(x, dtype=float)
        approx = self.forward(x)
        exact = softmax_exact(x, axis=self.axis)
        return float(np.mean(np.abs(approx - exact)))

    def convergence_curve(self, x: np.ndarray, max_iterations: int = 16) -> np.ndarray:
        """MAE against the exact softmax as a function of the iteration count.

        Used by the ablation bench on ``k`` and by the design-space notes in
        ``EXPERIMENTS.md``: the curve flattens quickly, which is why the
        paper's recommended configuration uses only ``k = 3``.
        """
        check_positive_int(max_iterations, "max_iterations")
        x = np.asarray(x, dtype=float)
        exact = softmax_exact(x, axis=self.axis)
        errors = np.empty(max_iterations)
        for k in range(1, max_iterations + 1):
            approx = IterativeSoftmax(iterations=k, axis=self.axis).forward(x)
            errors[k - 1] = np.mean(np.abs(approx - exact))
        return errors

    def preserves_ordering_fraction(self, x: np.ndarray) -> float:
        """Fraction of rows whose argmax matches the exact softmax argmax.

        The FSM baseline of [17] only guarantees the relative order of the
        outputs; this metric lets benches compare both designs on that axis
        too.
        """
        x = np.asarray(x, dtype=float)
        approx = self.forward(x)
        exact = softmax_exact(x, axis=self.axis)
        return float(
            np.mean(
                np.argmax(approx, axis=self.axis) == np.argmax(exact, axis=self.axis)
            )
        )
