"""Batched end-to-end SC-ViT evaluation subsystem.

The paper's ultimate claim is end-to-end — the SC softmax/GELU blocks
preserve ViT accuracy at practical bitstream lengths — and this package
makes that claim a first-class, reproducible experiment:

* :mod:`repro.eval_pipeline.pipeline` — :class:`ScViTEvalPipeline`, the
  streaming batched evaluator: circuit substitutions vectorised over the
  batch axis (one call per layer per batch), chunk-invariant numerics via
  :func:`repro.nn.autograd.batch_invariant_matmul`, per-chunk streaming.
* :mod:`repro.eval_pipeline.faults` — :class:`BitFlipFaultModel`,
  deterministic per-image bit-flip injection applied as packed-bitplane XOR
  masks on every thermometer-stream interface (SC noise-tolerance knob).
* :mod:`repro.eval_pipeline.tasks` — :class:`EvalTask`, the
  :class:`~repro.runner.runner.SweepTask` registration that gives accuracy
  grids multiprocessing workers, the content-addressed result cache and
  crash-resume, plus the canonical :func:`eval_grid` builder.

Entry points: ``python -m repro eval`` (CLI),
``benchmarks/bench_eval_accuracy.py`` (the ACC_sc_vit.json trajectory) and
the :class:`repro.core.sc_vit.ScViTEvaluator` shim for the historical API.
See ``docs/evaluation.md``.
"""

from repro.eval_pipeline.faults import BitFlipFaultModel
from repro.eval_pipeline.pipeline import EvalBatch, EvalResult, ScViTEvalPipeline
from repro.eval_pipeline.tasks import DEFAULT_BY_GRID, EvalTask, eval_grid, run_eval_grid

__all__ = [
    "BitFlipFaultModel",
    "EvalBatch",
    "EvalResult",
    "ScViTEvalPipeline",
    "EvalTask",
    "eval_grid",
    "run_eval_grid",
    "DEFAULT_BY_GRID",
]
