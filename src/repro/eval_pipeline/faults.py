"""Bit-flip fault injection on packed thermometer streams.

One of SC's headline claims is graceful degradation under bit-level noise: a
flipped stream bit shifts the decoded value by one grid step instead of
corrupting a whole word, so accuracy should fall smoothly with the flip rate
rather than collapse.  :class:`BitFlipFaultModel` measures that claim on the
end-to-end SC-ViT: every thermometer-stream interface of the emulated
circuits (the softmax ``x``/``y`` streams, the GELU input/output streams)
can be routed through :meth:`perturb_stream`, which

1. packs the batch's one-counts into a :class:`~repro.sc.packed.PackedBitPlane`
   (one vectorised op per site per batch — no per-image packing),
2. XORs a Bernoulli(``flip_prob``) mask plane onto the words, and
3. popcounts back to one-counts.

The data-stream packing, the XOR and the popcount are batched; the *mask
draws* are per image by design — each image's mask must come from its own
generator so that batch composition can never change the draws (the
chunk-invariance contract below).  The per-image cost is one uniform draw
per stream bit at the site, which at the circuits' BSLs is far below the
cost of the forward pass being perturbed.

Step 3 models the re-canonicalisation the hardware performs for free: every
stream is re-sorted by the next bitonic sorting network, and a sorted
stream's value is exactly its popcount, so only the *net* number of flips
survives — the physical reason SC degrades gracefully.

**Determinism.** The mask for image ``i`` at injection site ``s`` is drawn
from a generator seeded by ``derive_seed(derive_seed(seed, global image
index), site counter)``.  Site counters advance in model order (block 0
softmax sites, block 0 GELU sites, block 1 ...) and reset per forward pass,
so the fault pattern of an image depends only on ``(seed, image index)`` —
never on which batch the image rides in.  That is what lets the batched
pipeline reproduce the per-image path bit for bit even with faults enabled.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.runner.runner import derive_seed
from repro.sc.bitstream import ThermometerStream
from repro.sc.packed import PackedBitPlane

__all__ = ["BitFlipFaultModel"]


class BitFlipFaultModel:
    """Deterministic per-image bit-flip injection for thermometer streams.

    Parameters
    ----------
    flip_prob:
        Probability that any individual valid stream bit is flipped.
    seed:
        Root of the per-image seed derivation.
    """

    def __init__(self, flip_prob: float, seed: int = 0) -> None:
        if not 0.0 <= flip_prob <= 1.0:
            raise ValueError("flip_prob must lie in [0, 1]")
        self.flip_prob = float(flip_prob)
        self.seed = int(seed)
        self._image_seeds: Optional[np.ndarray] = None
        self._site = 0

    @property
    def enabled(self) -> bool:
        return self.flip_prob > 0.0

    # ------------------------------------------------------------- sequencing
    def begin_batch(self, image_indices: Sequence[int]) -> None:
        """Arm the model for one forward pass over the given global indices."""
        self._image_seeds = np.asarray(
            [derive_seed(self.seed, int(index)) for index in image_indices], dtype=np.int64
        )
        self._site = 0

    def _next_site(self) -> int:
        site = self._site
        self._site += 1
        return site

    # -------------------------------------------------------------- injection
    def perturb_counts(self, counts: np.ndarray, length: int) -> np.ndarray:
        """Flip bits of a batch of thermometer streams given as one-counts.

        ``counts`` has shape ``(B, ...)`` with axis 0 aligned to the image
        indices of :meth:`begin_batch`.  Returns the post-fault one-counts
        (popcount of the flipped packed plane).  Consumes one site counter
        even when ``flip_prob`` is zero, so enabling faults never re-orders
        the seed sequence of later sites.
        """
        site = self._next_site()
        if not self.enabled:
            return counts
        if self._image_seeds is None:
            raise RuntimeError("begin_batch must be called before perturbing streams")
        if counts.shape[0] != len(self._image_seeds):
            raise ValueError(
                f"leading axis {counts.shape[0]} does not match the armed batch "
                f"of {len(self._image_seeds)} images"
            )
        plane = PackedBitPlane.from_thermometer_counts(counts, length)
        # The mask is assembled per image (each from its own generator, so
        # chunking cannot change the draws) but applied as one word-wise XOR
        # + popcount over the whole batch.
        per_image_shape = counts.shape[1:]
        mask_words = np.empty_like(plane.words)
        for row, image_seed in enumerate(self._image_seeds):
            rng = np.random.default_rng(derive_seed(int(image_seed), site))
            mask_words[row] = PackedBitPlane.random(per_image_shape, length, self.flip_prob, rng).words
        flipped = plane ^ PackedBitPlane(mask_words, length)
        return flipped.popcount()

    def perturb_stream(self, stream: ThermometerStream) -> ThermometerStream:
        """Stream-level wrapper around :meth:`perturb_counts`."""
        if not self.enabled:
            self._next_site()
            return stream
        counts = self.perturb_counts(stream.counts, stream.length)
        return ThermometerStream(counts, stream.length, stream.scale, validate=False)
