"""Streaming, batched end-to-end evaluation of the SC-patched ViT.

The seed evaluator (:class:`repro.core.sc_vit.ScViTEvaluator`) proved the
paper's accuracy claim but was built image-batch-at-a-time around a scalar
calling convention: attention rows were flattened per call, results never
left the process, and nothing guaranteed that two different chunkings of the
same split produced the same numbers.  This module is the subsystem that
replaces it underneath (the evaluator is now a thin shim):

* **batched substitution** — the circuit-level softmax runs directly on the
  ``(batch, heads, tokens, m)`` score tensor and the SI GELU on the whole
  ``(batch, tokens, hidden)`` activation tensor: one substitution call per
  layer per batch, with fault injection applied as one packed-bitplane op
  per stream interface (:mod:`repro.eval_pipeline.faults`).
* **chunk-invariant numerics** — forwards run under
  :func:`repro.nn.autograd.batch_invariant_matmul`, so evaluating a split
  in chunks of 1, 32 or 1024 images yields bit-identical logits; the
  pipeline's results are a pure function of (weights, images, config,
  fault seed), never of ``batch_size``.
* **streaming** — :meth:`ScViTEvalPipeline.iter_batches` yields per-chunk
  results as they are computed, so callers can stream a split through
  constant memory; :meth:`evaluate` is the accumulate-to-accuracy wrapper.

:class:`repro.eval_pipeline.tasks.EvalTask` registers this pipeline with the
sweep runner, which is where dataset-level grids pick up multiprocessing,
the result cache and crash-resume.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.blocks import build as build_block
from repro.blocks.specs import SoftmaxCircuitConfig, calibrate_alpha_x
from repro.eval_pipeline.faults import BitFlipFaultModel
from repro.nn.autograd import Tensor, batch_invariant_matmul, no_grad
from repro.nn.vit import CompactVisionTransformer
from repro.sc.backends import use_backend
from repro.sc.bitstream import ThermometerStream
from repro.training.datasets import DatasetSplit
from repro.utils.validation import check_positive_int

__all__ = ["EvalBatch", "EvalResult", "ScViTEvalPipeline"]


@dataclass
class EvalBatch:
    """One streamed chunk of an evaluation: predictions against labels."""

    indices: np.ndarray  # global image indices within the split
    predictions: np.ndarray
    labels: np.ndarray

    @property
    def correct(self) -> int:
        return int(np.sum(self.predictions == self.labels))

    def __len__(self) -> int:
        return int(self.indices.size)


@dataclass
class EvalResult:
    """Accuracy of one circuit configuration on one dataset split."""

    accuracy: float
    num_images: int
    correct: int
    predictions: np.ndarray
    softmax_config: SoftmaxCircuitConfig
    gelu_output_bsl: Optional[int]
    flip_prob: float = 0.0
    split: str = ""


class ScViTEvalPipeline:
    """Evaluate a trained ViT under circuit-level softmax/GELU, batched.

    Parameters
    ----------
    model:
        A trained :class:`~repro.nn.vit.CompactVisionTransformer`.
    softmax_config:
        Softmax circuit configuration; ``m`` is clamped to the model's token
        count and ``alpha_x`` calibrated on attention logits unless
        ``calibrate`` is disabled (same protocol as the seed evaluator).
    gelu_output_bsl:
        Optional output BSL routing every GELU through a gate-assisted SI
        block; ``None`` keeps the exact GELU (the Table VI setting).
    flip_prob, fault_seed:
        Bit-flip fault injection on every thermometer-stream interface
        (see :class:`~repro.eval_pipeline.faults.BitFlipFaultModel`);
        ``flip_prob=0`` is exact, fault-free emulation.
    batch_size:
        Default chunk size of :meth:`iter_batches`/:meth:`evaluate`.  Pure
        throughput/memory knob: results are bit-identical for any value.
    calibration_images / calibration_logits / calibrate:
        ``alpha_x`` calibration inputs, identical to the seed evaluator's.
    backend:
        Optional SC kernel backend name (:mod:`repro.sc.backends`); every
        forward runs under ``use_backend(backend)``.  Backends are
        bit-identical by contract, so this is a pure throughput knob —
        it never enters result identity (cache keys, fingerprints) and
        ``None`` defers to the process-wide selection.
    """

    def __init__(
        self,
        model: CompactVisionTransformer,
        softmax_config: SoftmaxCircuitConfig,
        gelu_output_bsl: Optional[int] = None,
        flip_prob: float = 0.0,
        fault_seed: int = 0,
        batch_size: int = 32,
        calibration_images: Optional[np.ndarray] = None,
        calibrate: bool = True,
        calibration_logits: Optional[np.ndarray] = None,
        backend: Optional[str] = None,
    ) -> None:
        check_positive_int(batch_size, "batch_size")
        self.model = model
        self.batch_size = int(batch_size)
        tokens = model.config.num_tokens
        config = softmax_config.clamped_to_vector_length(tokens)
        if calibrate and calibration_logits is None and calibration_images is not None:
            from repro.evaluation.vectors import collect_softmax_inputs

            calibration_logits = collect_softmax_inputs(model, calibration_images, max_rows=512)
        if calibrate and calibration_logits is not None:
            config = config.with_updates(alpha_x=calibrate_alpha_x(calibration_logits, config.bx))
        # Circuit implementations come through the block registry — this
        # module never imports repro.core, which is what keeps the layering
        # acyclic (repro.core.sc_vit imports this module at module level).
        # The handles kept here are the registry adapters themselves; every
        # attribute used below (forward/config, evaluate/process and the
        # declared stream formats) is part of their public surface.
        self.softmax_circuit = build_block("softmax/iterative", spec=config)
        self.gelu_block = None
        if gelu_output_bsl is not None:
            check_positive_int(gelu_output_bsl, "gelu_output_bsl")
            self.gelu_block = build_block("gelu/si", output_length=gelu_output_bsl)
        self.fault_model: Optional[BitFlipFaultModel] = None
        if flip_prob > 0.0:
            self.fault_model = BitFlipFaultModel(flip_prob, seed=fault_seed)
        self.flip_prob = float(flip_prob)
        if backend is not None and not isinstance(backend, str):
            raise ValueError(f"backend must be a string or None, got {backend!r}")
        self.backend = backend

    # ------------------------------------------------------------ substitution
    def _stream_hook(self, site: str, stream: ThermometerStream) -> ThermometerStream:
        assert self.fault_model is not None
        return self.fault_model.perturb_stream(stream)

    def _batched_softmax(self, scores: Tensor) -> Tensor:
        """Circuit softmax over the last axis of the whole score tensor.

        Runs the emulation on ``(batch, heads, tokens, m)`` directly — one
        call per layer per batch — then applies the accelerator's output
        clamp-and-rescale, exactly as the seed evaluator did per flattened
        row (the operations are rowwise, so the numbers are identical).
        """
        hook = self._stream_hook if self.fault_model is not None else None
        out = self.softmax_circuit.forward(scores.data, stream_hook=hook)
        out = np.clip(out, 0.0, None)
        row_sum = out.sum(axis=-1, keepdims=True)
        uniform = np.full_like(out, 1.0 / out.shape[-1])
        out = np.where(row_sum > 0, out / np.maximum(row_sum, 1e-9), uniform)
        return Tensor(out)

    def _batched_gelu(self, x: Tensor) -> Tensor:
        """SI-block GELU over the whole activation tensor, with fault sites."""
        block = self.gelu_block
        assert block is not None
        if self.fault_model is None:
            return Tensor(block.evaluate(x.data))
        stream = ThermometerStream.encode(
            np.asarray(x.data, dtype=float), block.input_length, block.input_scale
        )
        stream = self.fault_model.perturb_stream(stream)
        out = block.process(stream)
        out = self.fault_model.perturb_stream(out)
        return Tensor(out.decode())

    # ---------------------------------------------------------------- patching
    @contextlib.contextmanager
    def _patched_model(self):
        """Swap the circuit substitutions into every block, restore on exit."""
        model = self.model
        was_training = model.training
        model.eval()
        originals = []
        for block in model.blocks:
            originals.append((block.attention._apply_softmax, block.mlp.activation.forward))
            block.attention._apply_softmax = self._batched_softmax
            if self.gelu_block is not None:
                block.mlp.activation.forward = self._batched_gelu
        try:
            yield model
        finally:
            for block, (softmax_fn, gelu_fn) in zip(model.blocks, originals):
                block.attention._apply_softmax = softmax_fn
                block.mlp.activation.forward = gelu_fn
            if was_training:
                model.train()

    # --------------------------------------------------------------- streaming
    def iter_batches(
        self,
        split: DatasetSplit,
        max_images: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> Iterator[EvalBatch]:
        """Stream the split through the SC-patched model, chunk by chunk.

        Yields an :class:`EvalBatch` per chunk; the union of all yielded
        predictions is bit-identical for every ``batch_size`` (including 1,
        the serial per-image path).
        """
        batch_size = self.batch_size if batch_size is None else int(batch_size)
        check_positive_int(batch_size, "batch_size")
        images = split.images if max_images is None else split.images[:max_images]
        labels = split.labels if max_images is None else split.labels[:max_images]
        with self._patched_model() as model, no_grad(), batch_invariant_matmul(), use_backend(self.backend):
            for start in range(0, len(images), batch_size):
                stop = min(start + batch_size, len(images))
                indices = np.arange(start, stop)
                if self.fault_model is not None:
                    self.fault_model.begin_batch(indices)
                logits = model(Tensor(images[start:stop]))
                predictions = np.argmax(logits.data, axis=-1)
                yield EvalBatch(indices=indices, predictions=predictions, labels=labels[start:stop])

    def predict_batch(
        self, images: np.ndarray, image_indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Predicted classes for one batch of images addressed by global index.

        The serving entry point (:mod:`repro.serve`): predictions are a pure
        function of ``(weights, image, config, fault seed, image index)`` —
        never of which other images share the batch — because forwards run
        under :func:`~repro.nn.autograd.batch_invariant_matmul` and fault
        masks are seeded per image index.  Coalescing any subset of requests
        into one micro-batch therefore reproduces the per-image results bit
        for bit.  ``image_indices`` defaults to ``0..B-1`` (the offline
        split order); it only matters when fault injection is enabled.
        """
        images = np.asarray(images)
        if image_indices is None:
            indices = np.arange(images.shape[0])
        else:
            indices = np.asarray(image_indices, dtype=np.int64)
            if indices.shape != (images.shape[0],):
                raise ValueError(
                    f"image_indices has shape {indices.shape}, expected ({images.shape[0]},)"
                )
        with self._patched_model() as model, no_grad(), batch_invariant_matmul(), use_backend(self.backend):
            if self.fault_model is not None:
                self.fault_model.begin_batch(indices)
            logits = model(Tensor(images))
            return np.argmax(logits.data, axis=-1).astype(np.int64)

    def evaluate(
        self,
        split: DatasetSplit,
        max_images: Optional[int] = None,
        batch_size: Optional[int] = None,
        split_name: str = "",
    ) -> EvalResult:
        """Top-1 accuracy of the split under the circuit-level nonlinearities."""
        predictions = []
        correct = 0
        total = 0
        for batch in self.iter_batches(split, max_images=max_images, batch_size=batch_size):
            predictions.append(batch.predictions)
            correct += batch.correct
            total += len(batch)
        merged = np.concatenate(predictions) if predictions else np.empty(0, dtype=np.int64)
        return EvalResult(
            accuracy=float(100.0 * correct / max(1, total)),
            num_images=int(total),
            correct=int(correct),
            predictions=merged.astype(np.int64),
            softmax_config=self.softmax_circuit.config,
            gelu_output_bsl=self.gelu_block.output_length if self.gelu_block else None,
            flip_prob=self.flip_prob,
            split=split_name,
        )
