"""Sweep-task registration of the eval pipeline (`EvalTask`).

Dataset-level accuracy grids — accuracy vs output BSL, accuracy vs softmax
design, accuracy vs bit-flip rate, per split — are sweeps like any other, so
they run through :class:`~repro.runner.runner.ParallelSweepRunner`: worker
processes evaluate whole-split configurations in parallel, results land in
the content-addressed :class:`~repro.runner.cache.ResultCache` (predictions
ride the NPZ sidecar), and an interrupted grid resumes from every finished
configuration.

Determinism contract: an :class:`EvalTask` evaluation is a pure function of
the task's inputs (weights, splits, calibration images) and the config dict.
The fault seed therefore lives *in the config* (``fault_seed``) rather than
being derived from the grid index — a cached result must not alias when the
same config appears at a different grid position — and ``batch_size`` is
deliberately absent from the cache key because the pipeline's results are
bit-identical for every chunking (see
:func:`repro.nn.autograd.batch_invariant_matmul`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocks.specs import SoftmaxCircuitConfig, calibrate_alpha_y
from repro.eval_pipeline.pipeline import EvalResult, ScViTEvalPipeline
from repro.runner.cache import array_digest
from repro.runner.runner import ParallelSweepRunner, SweepTask

__all__ = ["EvalTask", "eval_grid", "run_eval_grid"]

#: Default accuracy-vs-BSL grid: the softmax output BSLs swept by the CLI
#: and the accuracy bench (the Fig. 8 / Table VI ``By`` axis).
DEFAULT_BY_GRID: Tuple[int, ...] = (4, 8, 16)


@dataclass
class EvalTask(SweepTask):
    """Evaluate one end-to-end configuration on one dataset split.

    The task carries what every configuration shares — the trained model,
    the named splits, the calibration images; each config dict selects
    ``{"split", "by", "s1", "s2", "k", "gelu_bsl", "flip_prob",
    "fault_seed"}``.  The cache version digests the model weights and every
    split, so retraining or regenerating data invalidates stale accuracies
    automatically.
    """

    model: Any
    splits: Dict[str, Tuple[np.ndarray, np.ndarray]]
    calibration_images: np.ndarray
    max_images: Optional[int] = None
    batch_size: int = 32
    m: int = 64
    # Like batch_size, `backend` is deliberately absent from the cache key:
    # SC kernel backends are bit-identical by contract, so a grid evaluated
    # under numba shares cache entries with its numpy re-run byte for byte.
    backend: Optional[str] = None
    _weights_digest: str = field(default="", repr=False)
    _calibration_logits: Optional[np.ndarray] = field(default=None, repr=False)

    name = "eval-pipeline"

    def __post_init__(self) -> None:
        if not self.splits:
            raise ValueError("EvalTask needs at least one dataset split")
        if not self._weights_digest:
            state = self.model.state_dict()
            self._weights_digest = array_digest(*(state[k] for k in sorted(state)))

    # ------------------------------------------------------------- cache keys
    def config_key(self, config: Dict[str, Any]) -> Dict[str, Any]:
        key = dict(config)
        key["max_images"] = self.max_images
        return key

    def version(self) -> str:
        split_digests = ";".join(
            f"{name}:{array_digest(images, labels)}"
            for name, (images, labels) in sorted(self.splits.items())
        )
        return (
            f"weights:{self._weights_digest};"
            f"splits:{split_digests};"
            f"calibration:{array_digest(self.calibration_images)};m:{self.m}"
        )

    # -------------------------------------------------------------- evaluation
    def softmax_config(self, config: Dict[str, Any]) -> SoftmaxCircuitConfig:
        by = int(config["by"])
        return SoftmaxCircuitConfig(
            m=self.m,
            iterations=int(config["k"]),
            bx=4,
            alpha_x=2.0,
            by=by,
            alpha_y=calibrate_alpha_y(by, self.m),
            s1=int(config["s1"]),
            s2=int(config["s2"]),
        )

    def _calibration(self) -> np.ndarray:
        """Attention logits for ``alpha_x``, collected once per task/worker."""
        if self._calibration_logits is None:
            from repro.evaluation.vectors import collect_softmax_inputs

            self._calibration_logits = collect_softmax_inputs(
                self.model, self.calibration_images, max_rows=512
            )
        return self._calibration_logits

    def evaluate(self, config: Dict[str, Any], seed: int) -> EvalResult:
        # Deterministic by design: the fault seed comes from the config (so
        # cache entries never alias across grid orders); the runner's
        # per-index seed is unused.
        split_name = str(config["split"])
        if split_name not in self.splits:
            raise KeyError(f"unknown split {split_name!r}; task has {sorted(self.splits)}")
        from repro.training.datasets import DatasetSplit

        gelu_bsl = config.get("gelu_bsl")
        pipeline = ScViTEvalPipeline(
            self.model,
            self.softmax_config(config),
            gelu_output_bsl=None if gelu_bsl is None else int(gelu_bsl),
            flip_prob=float(config.get("flip_prob", 0.0)),
            fault_seed=int(config.get("fault_seed", 0)),
            batch_size=self.batch_size,
            calibration_logits=self._calibration(),
            backend=self.backend,
        )
        images, labels = self.splits[split_name]
        split = DatasetSplit(images=images, labels=labels)
        return pipeline.evaluate(split, max_images=self.max_images, split_name=split_name)

    # ------------------------------------------------------------- round-trip
    def encode(self, result: EvalResult) -> Dict[str, Any]:
        from dataclasses import asdict

        return {
            "accuracy": result.accuracy,
            "num_images": result.num_images,
            "correct": result.correct,
            "softmax_config": asdict(result.softmax_config),
            "gelu_output_bsl": result.gelu_output_bsl,
            "flip_prob": result.flip_prob,
            "split": result.split,
        }

    def result_arrays(self, result: EvalResult) -> Optional[dict]:
        return {"predictions": np.asarray(result.predictions, dtype=np.int64)}

    def decode(self, payload: Dict[str, Any], arrays: Optional[dict] = None) -> EvalResult:
        predictions = np.empty(0, dtype=np.int64)
        if arrays and "predictions" in arrays:
            predictions = np.asarray(arrays["predictions"], dtype=np.int64)
        return EvalResult(
            accuracy=float(payload["accuracy"]),
            num_images=int(payload["num_images"]),
            correct=int(payload["correct"]),
            predictions=predictions,
            softmax_config=SoftmaxCircuitConfig(**payload["softmax_config"]),
            gelu_output_bsl=None if payload["gelu_output_bsl"] is None else int(payload["gelu_output_bsl"]),
            flip_prob=float(payload["flip_prob"]),
            split=str(payload["split"]),
        )


def eval_grid(
    by_grid: Sequence[int] = DEFAULT_BY_GRID,
    s1: int = 32,
    s2: int = 8,
    k: int = 3,
    gelu_bsl: Optional[int] = None,
    flip_probs: Sequence[float] = (0.0,),
    splits: Sequence[str] = ("test",),
    fault_seed: int = 0,
) -> List[Dict[str, Any]]:
    """The accuracy grid in canonical order: split-major, then flip, then BSL.

    Each row of the resulting sweep is one whole-split evaluation; the inner
    ``by`` axis is the accuracy-vs-BSL trajectory the bench plots.
    """
    configs: List[Dict[str, Any]] = []
    for split in splits:
        for flip_prob in flip_probs:
            for by in by_grid:
                configs.append(
                    {
                        "split": str(split),
                        "by": int(by),
                        "s1": int(s1),
                        "s2": int(s2),
                        "k": int(k),
                        "gelu_bsl": None if gelu_bsl is None else int(gelu_bsl),
                        "flip_prob": float(flip_prob),
                        "fault_seed": int(fault_seed),
                    }
                )
    return configs


def run_eval_grid(
    task: EvalTask,
    configs: Sequence[Dict[str, Any]],
    workers: int = 1,
    cache: Optional[Any] = None,
    reporter: Optional[Any] = None,
) -> List[EvalResult]:
    """Evaluate a config grid through the sweep runner (stats on the function)."""
    runner = ParallelSweepRunner(task, workers=workers, cache=cache, reporter=reporter)
    results = runner.run(list(configs))
    run_eval_grid.last_run_stats = runner.stats
    return results
