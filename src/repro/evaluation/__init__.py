"""Evaluation harness: test vectors, error metrics, Pareto analysis, reports.

The paper's methodology (Section VI-A) is: collect the input vectors of each
nonlinear function from the ViT layers, sample test vectors from the overall
distribution, run every circuit on them, and report MAE next to the
synthesis numbers.  This package reproduces that methodology:

* :mod:`repro.evaluation.vectors` — test-vector generation, either from a
  trained ViT of this library or from parametric distributions fit to what
  compact ViTs produce,
* :mod:`repro.evaluation.error` — error metrics and a small report record,
* :mod:`repro.evaluation.pareto` — Pareto-front extraction for the design
  space exploration of Fig. 8,
* :mod:`repro.evaluation.reporting` — plain-text table formatting used by the
  benchmark harness so every bench prints rows shaped like the paper's
  tables.
"""

from repro.evaluation.error import ErrorReport, compare_against_reference
from repro.evaluation.pareto import pareto_front, pareto_front_points
from repro.evaluation.reporting import format_markdown_table, format_table, save_json_report
from repro.evaluation.vectors import (
    attention_logit_vectors,
    collect_gelu_inputs,
    collect_softmax_inputs,
    gelu_input_vectors,
)

__all__ = [
    "ErrorReport",
    "compare_against_reference",
    "pareto_front",
    "pareto_front_points",
    "format_table",
    "format_markdown_table",
    "save_json_report",
    "attention_logit_vectors",
    "gelu_input_vectors",
    "collect_softmax_inputs",
    "collect_gelu_inputs",
]
