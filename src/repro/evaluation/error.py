"""Error metrics and comparison records for circuit evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.hw.metrics import mean_absolute_error, root_mean_squared_error


@dataclass(frozen=True)
class ErrorReport:
    """Accuracy of one circuit against the exact function on test vectors."""

    mae: float
    rmse: float
    max_error: float
    bias: float
    num_samples: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "mae": self.mae,
            "rmse": self.rmse,
            "max_error": self.max_error,
            "bias": self.bias,
            "num_samples": float(self.num_samples),
        }


def compare_against_reference(reference: np.ndarray, measured: np.ndarray) -> ErrorReport:
    """Build an :class:`ErrorReport` from reference and measured outputs."""
    reference = np.asarray(reference, dtype=float)
    measured = np.asarray(measured, dtype=float)
    if reference.shape != measured.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs measured {measured.shape}"
        )
    diff = measured - reference
    return ErrorReport(
        mae=mean_absolute_error(reference, measured),
        rmse=root_mean_squared_error(reference, measured),
        max_error=float(np.max(np.abs(diff))),
        bias=float(np.mean(diff)),
        num_samples=int(reference.size),
    )
