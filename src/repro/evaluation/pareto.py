"""Pareto-front extraction for the design-space exploration of Fig. 8.

Every design point is a (cost, error) pair — area-delay product and MAE for
the softmax block.  A point is Pareto-optimal when no other point is at
least as good on both axes and strictly better on one.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def pareto_front(costs: Sequence[float], errors: Sequence[float]) -> np.ndarray:
    """Boolean mask of Pareto-optimal points (both axes minimised).

    Ties are handled conservatively: of several identical points, all are
    kept (they are mutually non-dominating).
    """
    costs = np.asarray(costs, dtype=float)
    errors = np.asarray(errors, dtype=float)
    if costs.shape != errors.shape or costs.ndim != 1:
        raise ValueError("costs and errors must be 1-D arrays of equal length")
    n = costs.size
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominates_i = (
            (costs <= costs[i])
            & (errors <= errors[i])
            & ((costs < costs[i]) | (errors < errors[i]))
        )
        if dominates_i.any():
            mask[i] = False
    return mask


def pareto_front_points(
    costs: Sequence[float], errors: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (indices, costs, errors) of the Pareto front sorted by cost."""
    mask = pareto_front(costs, errors)
    indices = np.nonzero(mask)[0]
    costs = np.asarray(costs, dtype=float)[indices]
    errors = np.asarray(errors, dtype=float)[indices]
    order = np.argsort(costs)
    return indices[order], costs[order], errors[order]
