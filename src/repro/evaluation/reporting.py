"""Plain-text reporting helpers for the benchmark harness.

Every bench prints rows shaped like the paper's tables; these helpers keep
the formatting in one place so the output of ``pytest benchmarks/`` is easy
to diff against ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Sequence, TextIO, Union


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Format an aligned plain-text table."""
    str_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Format a GitHub-flavoured Markdown table (used to update EXPERIMENTS.md)."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def save_json_report(path: Union[str, Path], payload: Mapping) -> Path:
    """Write a benchmark result payload as pretty-printed JSON.

    Nested numpy scalars/arrays are converted to plain Python types so the
    files stay tool-agnostic.
    """

    def convert(obj):
        import numpy as np

        if isinstance(obj, Mapping):
            return {str(k): convert(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [convert(v) for v in obj]
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        return obj

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(convert(payload), indent=2, sort_keys=True))
    return path


class ProgressReporter:
    """Incremental progress line for long sweeps.

    The sweep runner calls ``start(total)``, then ``update(done, total,
    cached=...)`` per completed config, then ``finish(summary)``.  On a TTY
    the line rewrites in place (carriage return); on a pipe/CI log it prints
    a line roughly every 10% so logs stay readable.  ``quiet=True`` turns
    the reporter into a no-op sink, which keeps call-sites branch-free.

    The reporter also keeps wall-clock time: ``start`` arms a monotonic
    timer, ``finish`` freezes it, and :attr:`elapsed_seconds` reads it at
    any point in between — callers reuse this for throughput summaries
    (e.g. the images/s line of ``python -m repro eval``) instead of timing
    the same span twice.
    """

    def __init__(self, label: str, stream: Optional[TextIO] = None, quiet: bool = False) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.quiet = quiet
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_decile = -1
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None

    def _emit(self, text: str, final: bool = False) -> None:
        if self.quiet:
            return
        if self._is_tty:
            end = "\n" if final else ""
            self.stream.write("\r\x1b[2K" + text + end)
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since ``start`` (frozen at ``finish``; 0 before)."""
        if self._started_at is None:
            return 0.0
        end = self._finished_at if self._finished_at is not None else time.monotonic()
        return max(0.0, end - self._started_at)

    def start(self, total: int) -> None:
        self._last_decile = -1
        self._started_at = time.monotonic()
        self._finished_at = None
        self._emit(f"{self.label}: 0/{total}")

    def update(self, done: int, total: int, cached: int = 0) -> None:
        suffix = f" ({cached} cached)" if cached else ""
        if self._is_tty:
            self._emit(f"{self.label}: {done}/{total}{suffix}")
            return
        decile = (10 * done) // max(1, total)
        if decile > self._last_decile or done == total:
            self._last_decile = decile
            self._emit(f"{self.label}: {done}/{total}{suffix}")

    def finish(self, summary: str = "") -> None:
        if self._started_at is not None and self._finished_at is None:
            self._finished_at = time.monotonic()
        text = f"{self.label}: done" + (f" — {summary}" if summary else "")
        self._emit(text, final=True)
