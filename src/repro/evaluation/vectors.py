"""Test-vector generation for circuit-error evaluation.

The paper collects the inputs of softmax and GELU "for each layer in ViT"
and samples test vectors from the overall distribution.  Two paths provide
the same thing here:

* **model-based** — :func:`collect_softmax_inputs` / :func:`collect_gelu_inputs`
  run a (trained or untrained) :class:`repro.nn.vit.CompactVisionTransformer`
  on a batch of images and harvest the actual pre-softmax attention logits
  and pre-GELU activations from its trace;
* **parametric** — :func:`attention_logit_vectors` / :func:`gelu_input_vectors`
  draw from distributions whose shape matches what compact ViTs produce
  (per-row scale spread and a handful of dominant entries for attention
  logits; a slightly negative-shifted, unit-ish-scale Gaussian mixture for
  pre-GELU activations).  These are used by benches that must run without a
  trained checkpoint and by the hypothesis-based property tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


def attention_logit_vectors(
    num_rows: int,
    m: int,
    seed: SeedLike = 0,
    scale_range: tuple = (0.4, 2.0),
    peak_fraction: float = 0.08,
    peak_boost: float = 2.0,
) -> np.ndarray:
    """Synthetic pre-softmax attention logit rows of shape ``(num_rows, m)``.

    Each row has its own temperature drawn from ``scale_range`` (attention
    heads differ widely in how peaked they are) and a small number of boosted
    entries representing the tokens the head actually attends to.
    """
    check_positive_int(num_rows, "num_rows")
    check_positive_int(m, "m")
    rng = as_generator(seed)
    scales = rng.uniform(scale_range[0], scale_range[1], size=(num_rows, 1))
    rows = rng.normal(0.0, 1.0, size=(num_rows, m)) * scales
    num_peaks = max(1, int(round(peak_fraction * m)))
    for row in range(num_rows):
        idx = rng.choice(m, size=num_peaks, replace=False)
        rows[row, idx] += rng.uniform(0.5, peak_boost, size=num_peaks) * scales[row, 0]
    return rows


def gelu_input_vectors(
    num_samples: int,
    seed: SeedLike = 0,
    negative_shift: float = -0.15,
    scale: float = 0.6,
    heavy_tail_fraction: float = 0.02,
) -> np.ndarray:
    """Synthetic pre-GELU activation samples of shape ``(num_samples,)``.

    MLP pre-activations in trained transformers are roughly Gaussian with a
    small negative shift and a heavier-than-Gaussian tail; the mixture below
    reproduces that shape.
    """
    check_positive_int(num_samples, "num_samples")
    rng = as_generator(seed)
    base = rng.normal(negative_shift, scale, size=num_samples)
    tail_mask = rng.random(num_samples) < heavy_tail_fraction
    tail = rng.normal(negative_shift, 3.0 * scale, size=num_samples)
    return np.where(tail_mask, tail, base)


def collect_softmax_inputs(
    model,
    images: np.ndarray,
    max_rows: Optional[int] = None,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Harvest pre-softmax attention logit rows from a ViT forward pass.

    ``model`` is a :class:`repro.nn.vit.CompactVisionTransformer`; the rows
    of every attention head in every layer are pooled, shuffled and (when
    ``max_rows`` is given) sub-sampled — the "sampled from the overall
    distribution" step of the paper's methodology.
    """
    from repro.nn.autograd import Tensor

    trace = model.forward_with_trace(Tensor(np.asarray(images, dtype=float)))
    rows = [np.asarray(logits).reshape(-1, np.asarray(logits).shape[-1]) for logits in trace.attention_logits]
    if not rows:
        raise ValueError("the model trace contains no attention logits")
    pooled = np.concatenate(rows, axis=0)
    rng = as_generator(seed)
    order = rng.permutation(pooled.shape[0])
    pooled = pooled[order]
    if max_rows is not None:
        check_positive_int(max_rows, "max_rows")
        pooled = pooled[:max_rows]
    return pooled


def collect_gelu_inputs(
    model,
    images: np.ndarray,
    max_samples: Optional[int] = None,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Harvest pre-GELU activation samples from a ViT forward pass."""
    from repro.nn.autograd import Tensor

    trace = model.forward_with_trace(Tensor(np.asarray(images, dtype=float)))
    samples = [np.asarray(act).reshape(-1) for act in trace.gelu_inputs]
    if not samples:
        raise ValueError("the model trace contains no GELU inputs")
    pooled = np.concatenate(samples, axis=0)
    rng = as_generator(seed)
    order = rng.permutation(pooled.shape[0])
    pooled = pooled[order]
    if max_samples is not None:
        check_positive_int(max_samples, "max_samples")
        pooled = pooled[:max_samples]
    return pooled
