"""Bitstream-configurable accelerator-fabric simulator.

The execution layer the paper's cost model was missing: a tile grid (PE
tiles hosting :mod:`repro.blocks` families, memory feeders, switches)
whose behaviour is set purely by a configuration bitstream.  The flow is
configure-then-compile:

1. :class:`FabricSpec` (``fabric/design``) describes the physical grid.
2. :func:`place_and_route` deterministically maps a schedule of
   :class:`~repro.blocks.specs.BlockSpec` entries to tiles and emits a
   :class:`Bitstream` of ``configure(addr, data)`` writes.
3. :class:`Fabric` replays the writes into its sparse config space
   (``reconfigure`` diffs for partial reconfiguration), and
   :meth:`Fabric.compile` reads the space back — through any stuck-at
   faults, past dead tiles, over the pruned switch graph — into a
   runnable :class:`CompiledFabric` on the packed SC engine.
4. :func:`run_fabric` executes a :class:`FabricRunSpec`
   (``fabric/run``) and cross-checks every slot bit-for-bit against the
   golden ``blocks.build(...).evaluate(...)`` path, while
   :func:`reconcile_table6` ties the synthesized fabric cost back to the
   Table VI accelerator harness.

Serving integration lives in :class:`FabricEngine` (the ``"fabric"``
engine family of :mod:`repro.serve`), whose ``kill_tile`` chaos seam backs
the scenario layer's ``dead_tile`` event.
"""

from repro.fabric.bitstream import Bitstream, ConfigWrite
from repro.fabric.engine import FabricEngine, FabricSoftmaxAdapter
from repro.fabric.place_route import FabricError, Placement, place_and_route
from repro.fabric.simulator import (
    TABLE6_AREA_TOLERANCE,
    CompiledFabric,
    Fabric,
    PlacedBlock,
    fabric_mappable,
    mappable_families,
    reconcile_table6,
    run_fabric,
)
from repro.fabric.specs import FABRIC_DESIGN_KIND, FABRIC_RUN_KIND, FabricRunSpec, FabricSpec

__all__ = [
    "FABRIC_DESIGN_KIND",
    "FABRIC_RUN_KIND",
    "TABLE6_AREA_TOLERANCE",
    "Bitstream",
    "CompiledFabric",
    "ConfigWrite",
    "Fabric",
    "FabricEngine",
    "FabricError",
    "FabricRunSpec",
    "FabricSoftmaxAdapter",
    "FabricSpec",
    "PlacedBlock",
    "Placement",
    "fabric_mappable",
    "mappable_families",
    "place_and_route",
    "reconcile_table6",
    "run_fabric",
]
