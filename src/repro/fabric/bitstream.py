"""Configuration bitstream: the address map + the ``configure`` word list.

The fabric's behaviour is set **only** by word writes into a sparse config
space (absent address = 0), in the configure-then-compile style: a
bitstream is an ordered list of :class:`ConfigWrite` entries, the fabric
replays them through ``configure(addr, data)``, and a separate compile
step reads the space back and prunes the configured routing graph into a
runnable model.  Nothing about a placement survives outside the config
words — which is what makes stuck-at config bits and partial
reconfiguration meaningful.

Address map (all words ``word_bits`` wide; ``stride = 4 + payload_words``):

====================  =====================================================
``tile * stride + 0``  ``REG_MODE`` — 0 idle, 1 PE (hosts a block), 2 memory
``tile * stride + 1``  ``REG_SLOT`` — schedule slot + 1 (0 = unassigned)
``tile * stride + 2``  ``REG_PAYLOAD_LEN`` — block-spec payload bytes
``tile * stride + 3``  ``REG_CHECKSUM`` — sum of payload bytes mod 2**bits
``tile * stride + 4+i``  payload word ``i``: canonical block-spec JSON,
                         UTF-8 bytes packed little-endian
``n_cells * stride + cell``  switch word of ``cell``: link bitmask
                             (``LINK_RECV_W | LINK_SEND_E | LINK_DROP_PE``)
====================  =====================================================

The payload checksum is the fabric's stuck-at *detection* mechanism: a
stuck config bit in a payload word (or in the checksum register itself)
makes compile fail loudly instead of silently executing a corrupted block
spec.  Route words carry no checksum — a stuck route bit instead breaks
graph reachability, which compile also detects (see
:meth:`repro.fabric.simulator.Fabric.compile`).
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Tuple

from repro.fabric.specs import FabricSpec

__all__ = [
    "Bitstream",
    "ConfigWrite",
    "HEADER_WORDS",
    "LINK_DROP_PE",
    "LINK_RECV_W",
    "LINK_SEND_E",
    "MODE_IDLE",
    "MODE_MEM",
    "MODE_PE",
    "REG_CHECKSUM",
    "REG_MODE",
    "REG_PAYLOAD_LEN",
    "REG_SLOT",
    "decode_payload",
    "encode_payload",
    "payload_checksum",
    "switch_base",
    "tile_addr",
]

#: Per-tile header registers (offsets within a tile's config window).
REG_MODE = 0
REG_SLOT = 1
REG_PAYLOAD_LEN = 2
REG_CHECKSUM = 3
HEADER_WORDS = 4

#: ``REG_MODE`` values.
MODE_IDLE = 0
MODE_PE = 1
MODE_MEM = 2

#: Switch-word link bits (X-routing along a row, west to east).
LINK_RECV_W = 1  # accept the stream arriving from the west neighbour
LINK_SEND_E = 2  # forward the stream to the east neighbour
LINK_DROP_PE = 4  # deliver the stream to this cell's tile


def tile_stride(spec: FabricSpec) -> int:
    """Config words per PE/memory tile."""
    return HEADER_WORDS + spec.payload_words


def tile_addr(spec: FabricSpec, tile: int, reg: int) -> int:
    """Absolute config address of ``reg`` in ``tile``'s window."""
    if not 0 <= reg < tile_stride(spec):
        raise ValueError(f"register offset {reg} outside the tile window")
    if not 0 <= tile < spec.n_cells:
        raise ValueError(f"tile {tile} outside the {spec.rows}x{spec.cols} grid")
    return tile * tile_stride(spec) + reg


def switch_base(spec: FabricSpec) -> int:
    """First address of the switch-word region (one word per grid cell)."""
    return spec.n_cells * tile_stride(spec)


def config_space_words(spec: FabricSpec) -> int:
    """Total addressable config words (tile windows + switch region)."""
    return switch_base(spec) + spec.n_cells


def encode_payload(spec: FabricSpec, block_spec_dict: Dict[str, Any]) -> Tuple[Tuple[int, ...], int]:
    """Canonical block-spec JSON -> ``(payload words, byte length)``.

    The payload is the block spec's canonical dict serialised with sorted
    keys and no whitespace, so two equal specs always pack to identical
    words — the property bitstream determinism rests on.
    """
    raw = json.dumps(block_spec_dict, sort_keys=True, separators=(",", ":")).encode("utf-8")
    capacity = spec.payload_capacity_bytes
    if len(raw) > capacity:
        raise ValueError(
            f"block spec payload is {len(raw)} bytes but the fabric's tile capacity "
            f"is {capacity} bytes ({spec.payload_words} x {spec.word_bytes}B words); "
            "the family is not mappable on this fabric"
        )
    padded = raw + b"\x00" * (-len(raw) % spec.word_bytes)
    words = tuple(
        int.from_bytes(padded[i : i + spec.word_bytes], "little")
        for i in range(0, len(padded), spec.word_bytes)
    )
    return words, len(raw)


def decode_payload(spec: FabricSpec, words: Tuple[int, ...], length: int) -> Dict[str, Any]:
    """Packed payload words -> the block spec's canonical dict."""
    raw = b"".join(int(word).to_bytes(spec.word_bytes, "little") for word in words)
    return json.loads(raw[:length].decode("utf-8"))


def payload_checksum(spec: FabricSpec, words: Tuple[int, ...], length: int) -> int:
    """Sum of the payload's meaningful bytes, mod ``2**word_bits``."""
    raw = b"".join(int(word).to_bytes(spec.word_bytes, "little") for word in words)
    return sum(raw[:length]) % (1 << spec.word_bits)


@dataclass(frozen=True)
class ConfigWrite:
    """One ``configure(addr, data)`` word write."""

    addr: int
    data: int


@dataclass(frozen=True)
class Bitstream:
    """An ordered, replayable sequence of config writes.

    The byte form (:meth:`to_bytes`: ``u32`` address + little-endian data
    word per write, in emission order) is the determinism contract's unit
    of account: the same design + schedule + seed must always produce the
    same bytes, hence the same :meth:`digest`.
    """

    writes: Tuple[ConfigWrite, ...]
    word_bits: int

    def __iter__(self) -> Iterator[ConfigWrite]:
        return iter(self.writes)

    def __len__(self) -> int:
        return len(self.writes)

    def to_bytes(self) -> bytes:
        word_bytes = self.word_bits // 8
        out = bytearray()
        for write in self.writes:
            out += struct.pack("<I", write.addr)
            out += int(write.data).to_bytes(word_bytes, "little")
        return bytes(out)

    def digest(self) -> str:
        """SHA-256 of the byte form — the bitstream's stable identity."""
        return hashlib.sha256(self.to_bytes()).hexdigest()
