"""Serving on the fabric: a PipelineEngine whose softmax runs on tiles.

:class:`FabricEngine` is the ``"fabric"`` engine family of
:func:`repro.serve.deploy.build_deployment`.  It is a
:class:`~repro.serve.engine.PipelineEngine` (same worker threads, same
replica discipline) that additionally owns a **live**
:class:`~repro.fabric.simulator.Fabric`: at construction it
place-and-routes the deployment's calibrated softmax config onto the tile
grid, loads the bitstream and compiles; every worker replica's
``softmax_circuit`` is then swapped for a :class:`FabricSoftmaxAdapter`
that executes the *compiled fabric's* block.  Because the block revives
from the config-space payload (JSON round-trip, checksummed), serving
through the fabric is a genuine configure -> read -> decode -> execute
path — and the scenario layer's bit-identity assertion (online fabric vs
offline golden pipeline) becomes the end-to-end cross-check.

Chaos seam: :meth:`FabricEngine.kill_tile` is the ``dead_tile`` scenario
event.  It marks the hosting tile dead, re-place-and-routes around the
dead set, *partially reconfigures* (diff writes only) and recompiles;
``replacements`` counts the re-place cycles and ``last_reconfigure``
exposes the write/skip accounting the graceful-degradation assertions
check.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable, Optional

from repro.fabric.place_route import FabricError, place_and_route
from repro.fabric.simulator import Fabric
from repro.fabric.specs import FabricSpec
from repro.serve.engine import PipelineEngine

__all__ = ["FabricEngine", "FabricSoftmaxAdapter"]


class FabricSoftmaxAdapter:
    """A pipeline's ``softmax_circuit`` seam, backed by a fabric block.

    Exposes exactly what :class:`~repro.eval_pipeline.ScViTEvalPipeline`
    uses — ``forward(x, stream_hook=...)`` and ``config`` — and delegates
    anything else to the compiled block, so the swap is invisible to the
    pipeline while every softmax actually executes on the configured tile.
    """

    def __init__(self, block: Any) -> None:
        self._block = block

    @property
    def config(self):
        return self._block.config

    def forward(self, x, stream_hook=None):
        return self._block.forward(x, stream_hook=stream_hook)

    def __getattr__(self, name: str):
        if name == "_block":  # unpickle/copy probes must not recurse
            raise AttributeError(name)
        return getattr(self._block, name)


class FabricEngine(PipelineEngine):
    """Thread engine executing the softmax block on a configured fabric."""

    def __init__(
        self,
        pipeline_factory: Callable[[], Any],
        fabric_spec: Optional[FabricSpec] = None,
        workers: int = 1,
        version: Optional[str] = None,
        flip_prob: float = 0.0,
        image_shape: Optional[tuple] = None,
    ) -> None:
        super().__init__(
            pipeline_factory,
            workers=workers,
            version=version,
            flip_prob=flip_prob,
            image_shape=image_shape,
        )
        self.fabric_spec = fabric_spec or FabricSpec()
        # The fabric must host the *resolved* config (post-calibration,
        # post-clamp) or the bit-identity cross-check would be vacuous.
        probe = pipeline_factory()
        self._softmax_config = probe.softmax_circuit.config
        del probe
        self.fabric = Fabric(self.fabric_spec)
        self.replacements = 0
        self.last_reconfigure: dict = {}
        self._fabric_lock = threading.Lock()
        self._install()

    # ------------------------------------------------------------- placement
    def _install(self) -> None:
        """(Re-)place, partially reconfigure and recompile the fabric."""
        placement = place_and_route(
            self.fabric_spec,
            [self._softmax_config],
            seed=0,
            dead_tiles=self.fabric.dead_tiles,
        )
        self.last_reconfigure = self.fabric.reconfigure(placement.bitstream())
        self.placement = placement
        self._compiled = self.fabric.compile()

    # ----------------------------------------------------------------- chaos
    def kill_tile(self, slot: Optional[int] = None) -> int:
        """Kill the tile hosting ``slot`` and recover by re-place-and-route.

        Returns the dead tile's id.  Worker replicas rebuild on their next
        batch (generation bump) and pick up the re-placed block; ``deaths``
        and ``replacements`` record the event for the scenario assertions.
        """
        with self._fabric_lock:
            target = 0 if slot is None else int(slot) % len(self.placement.assignments)
            tile = self.placement.assignments[target]
            self.fabric.kill_tile(tile)
            try:
                self._install()
            except FabricError:
                # Fabric exhausted: no live tile can host the schedule.
                # Leave the dead mark in place and re-raise — the scenario
                # runner surfaces this as a failed recovery.
                raise
            self._generation += 1
            self.deaths += 1
            self.replacements += 1
            return tile

    # ------------------------------------------------------------------ stats
    def stats_snapshot(self) -> dict:
        """Fabric lifecycle counters (folded into ``/stats`` and ``/metrics``)."""
        with self._fabric_lock:
            reconfigure = dict(self.last_reconfigure)
        return {
            "engine": "fabric",
            "lifecycle": {
                "deaths": int(self.deaths),
                "replacements": int(self.replacements),
                "dead_tiles": len(self.fabric.dead_tiles),
                "workers": int(self.workers),
            },
            "reconfigure": reconfigure,
        }

    # ------------------------------------------------------------- execution
    def _pipeline(self):
        pipeline = super()._pipeline()
        if getattr(self._local, "fabric_generation", None) != self._generation:
            with self._fabric_lock:
                block = self._compiled.block_for_slot(0)
            # Per-thread copy: circuits may keep scratch state during a
            # forward, and two workers must never share one.
            pipeline.softmax_circuit = FabricSoftmaxAdapter(copy.deepcopy(block))
            self._local.fabric_generation = self._generation
        return pipeline
