"""Deterministic place-and-route: schedule -> placement -> bitstream.

The mapper is deliberately simple and **slot-stable**:

* Placement — the available PE tiles (row-major order, dead tiles
  removed) are rotated by ``seed % len(available)`` and schedule slot
  ``i`` lands on the ``i``-th rotated tile.  Slot assignment depends only
  on ``(design, dead set, seed, slot index)`` — never on the block being
  placed — so two schedules that share a prefix place their shared slots
  on the *same* tiles, which is what partial reconfiguration's
  write-count savings rest on.
* Routing — X-only along the slot's row: the row's memory feeder (the
  rightmost memory column) streams east through every switch between it
  and the PE, whose switch drops the stream into the tile.  Switch words
  accumulate link bits when several slots share a row.

Determinism contract: the emitted bitstream is a pure function of
``(FabricSpec, schedule specs, dead tiles, seed)`` — byte-identical across
processes and platforms (a hypothesis-tested property).  Emission order is
canonical: memory-tile headers by row, then per-slot PE headers +
payload words, then switch words by address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from repro.blocks.specs import BlockSpec
from repro.fabric.bitstream import (
    LINK_DROP_PE,
    LINK_RECV_W,
    LINK_SEND_E,
    MODE_MEM,
    MODE_PE,
    REG_CHECKSUM,
    REG_MODE,
    REG_PAYLOAD_LEN,
    REG_SLOT,
    Bitstream,
    ConfigWrite,
    encode_payload,
    payload_checksum,
    switch_base,
    tile_addr,
)
from repro.fabric.specs import FabricSpec

__all__ = ["FabricError", "Placement", "place_and_route"]


class FabricError(RuntimeError):
    """A fabric cannot be placed, routed, or compiled as configured."""


@dataclass(frozen=True)
class Placement:
    """One routed mapping of a schedule onto a fabric design."""

    fabric: FabricSpec
    schedule: Tuple[BlockSpec, ...]
    #: ``assignments[i]`` is the PE tile hosting schedule slot ``i``.
    assignments: Tuple[int, ...]
    dead_tiles: FrozenSet[int]
    seed: int

    def tile_for_slot(self, slot: int) -> int:
        return self.assignments[slot]

    def routed_cells(self, slot: int) -> Tuple[int, ...]:
        """Grid cells (west to east) the slot's stream traverses."""
        spec = self.fabric
        row, col = spec.tile_position(self.assignments[slot])
        feeder_col = spec.mem_cols - 1
        return tuple(row * spec.cols + c for c in range(feeder_col, col + 1))

    def switch_words(self) -> Dict[int, int]:
        """Final switch word per cell (bits accumulated across slots)."""
        spec = self.fabric
        words: Dict[int, int] = {}
        for slot in range(len(self.schedule)):
            cells = self.routed_cells(slot)
            for position, cell in enumerate(cells):
                bits = words.get(cell, 0)
                if position > 0:
                    bits |= LINK_RECV_W
                if position < len(cells) - 1:
                    bits |= LINK_SEND_E
                if cell == self.assignments[slot]:
                    bits |= LINK_DROP_PE
                words[cell] = bits
        return words

    def bitstream(self) -> Bitstream:
        """Emit the placement's config writes in canonical order."""
        spec = self.fabric
        writes = []
        feeder_col = spec.mem_cols - 1
        rows_used = sorted({spec.tile_position(tile)[0] for tile in self.assignments})
        for row in rows_used:
            feeder = row * spec.cols + feeder_col
            writes.append(ConfigWrite(tile_addr(spec, feeder, REG_MODE), MODE_MEM))
        for slot, block_spec in enumerate(self.schedule):
            tile = self.assignments[slot]
            words, length = encode_payload(spec, block_spec.to_dict())
            writes.append(ConfigWrite(tile_addr(spec, tile, REG_MODE), MODE_PE))
            writes.append(ConfigWrite(tile_addr(spec, tile, REG_SLOT), slot + 1))
            writes.append(ConfigWrite(tile_addr(spec, tile, REG_PAYLOAD_LEN), length))
            writes.append(
                ConfigWrite(tile_addr(spec, tile, REG_CHECKSUM), payload_checksum(spec, words, length))
            )
            writes.extend(
                ConfigWrite(tile_addr(spec, tile, 4 + index), word)
                for index, word in enumerate(words)
            )
        base = switch_base(spec)
        for cell, bits in sorted(self.switch_words().items()):
            writes.append(ConfigWrite(base + cell, bits))
        return Bitstream(writes=tuple(writes), word_bits=spec.word_bits)


def place_and_route(
    fabric: FabricSpec,
    schedule: Sequence[BlockSpec],
    seed: int = 0,
    dead_tiles: Iterable[int] = (),
) -> Placement:
    """Map ``schedule`` onto ``fabric``, avoiding ``dead_tiles``.

    Raises :class:`FabricError` when the live PE tiles cannot host the
    schedule, or when a block spec's payload exceeds the tile capacity
    (the family is not mappable on this design).
    """
    schedule = tuple(schedule)
    if not schedule:
        raise FabricError("cannot place an empty schedule")
    dead = frozenset(int(tile) for tile in dead_tiles)
    available = [tile for tile in fabric.pe_tiles if tile not in dead]
    if len(schedule) > len(available):
        raise FabricError(
            f"schedule needs {len(schedule)} PE tiles but only {len(available)} are live "
            f"({len(fabric.pe_tiles)} total, {len(dead & set(fabric.pe_tiles))} dead)"
        )
    # Payload capacity is checked here, at placement, so an unmappable
    # family fails before any config word is written.
    for block_spec in schedule:
        try:
            encode_payload(fabric, block_spec.to_dict())
        except ValueError as exc:
            raise FabricError(str(exc)) from exc
    start = int(seed) % len(available)
    assignments = tuple(available[(start + slot) % len(available)] for slot in range(len(schedule)))
    return Placement(
        fabric=fabric,
        schedule=schedule,
        assignments=assignments,
        dead_tiles=dead,
        seed=int(seed),
    )
