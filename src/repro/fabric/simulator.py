"""The fabric simulator: sparse config space -> compiled functional model.

:class:`Fabric` is the configured machine.  Its entire behaviour lives in
a sparse config space (absent address = 0) written one word at a time by
``configure(addr, data)`` — typically by replaying a
:class:`~repro.fabric.bitstream.Bitstream` emitted by
:func:`~repro.fabric.place_route.place_and_route`.  ``compile()`` then
*reads the space back* (through any injected stuck-at faults), decodes
each active PE tile's block-spec payload, verifies checksums and routing
reachability over the pruned switch graph, and builds the runnable
:class:`CompiledFabric` whose blocks are ordinary
:func:`repro.blocks.build` products — so execution rides the packed SC
engine through the existing backend seam, and fabric outputs are
bit-identical to the golden path by construction *if and only if* the
whole configure -> read -> decode -> rebuild loop is lossless (which the
golden tests assert for every mappable family).

Fault injection is config-level, matching real fabric failure modes:

* ``set_stuck_at(addr, bit, value)`` pins one config bit at read time; a
  stuck payload/checksum bit makes ``compile`` fail the checksum, a stuck
  route bit breaks reachability — both are *detected*, never silent.
* ``kill_tile(tile)`` marks a tile dead; compiling a configuration that
  still uses it fails, and a re-place-and-route around the dead set plus
  ``reconfigure`` (which diffs against the live config space and writes
  only changed words) is the recovery path the scenario layer asserts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

import repro.blocks as blocks
from repro.fabric.bitstream import (
    HEADER_WORDS,
    LINK_DROP_PE,
    LINK_RECV_W,
    LINK_SEND_E,
    MODE_MEM,
    MODE_PE,
    REG_CHECKSUM,
    REG_MODE,
    REG_PAYLOAD_LEN,
    REG_SLOT,
    Bitstream,
    config_space_words,
    decode_payload,
    payload_checksum,
    switch_base,
    tile_addr,
    tile_stride,
)
from repro.fabric.place_route import FabricError, Placement, place_and_route
from repro.fabric.specs import FabricRunSpec, FabricSpec

__all__ = [
    "CompiledFabric",
    "Fabric",
    "PlacedBlock",
    "TABLE6_AREA_TOLERANCE",
    "fabric_mappable",
    "mappable_families",
    "reconcile_table6",
    "run_fabric",
]

#: Documented Table VI reconciliation tolerance: the synthesized area of a
#: fabric tile hosting the softmax block must stay within this factor of
#: the accelerator harness's dedicated softmax block (the fabric pays for
#: config registers, payload SRAM and switch muxes on top of the block).
TABLE6_AREA_TOLERANCE = 1.5


@dataclass(frozen=True)
class PlacedBlock:
    """One compiled, executable tile: slot order + provenance + block."""

    slot: int
    tile: int
    family: str
    block: Any
    spec: Any


class Fabric:
    """A configurable tile grid; behaviour is the config space, nothing else."""

    def __init__(self, spec: FabricSpec) -> None:
        self.spec = spec
        self._space: Dict[int, int] = {}
        self._stuck: Dict[Tuple[int, int], int] = {}
        self._dead: set = set()
        #: Lifetime count of ``configure`` calls (reconfiguration accounting).
        self.config_writes = 0

    # -------------------------------------------------------- configuration
    def configure(self, addr: int, data: int) -> None:
        """Write one config word (the only way to change fabric behaviour)."""
        if not 0 <= addr < config_space_words(self.spec):
            raise FabricError(f"config address {addr} outside the fabric's space")
        data = int(data) & ((1 << self.spec.word_bits) - 1)
        if data:
            self._space[addr] = data
        else:
            self._space.pop(addr, None)
        self.config_writes += 1

    def load_bitstream(self, bitstream: Bitstream) -> int:
        """Replay every write of ``bitstream``; returns the write count."""
        for write in bitstream:
            self.configure(write.addr, write.data)
        return len(bitstream)

    def reconfigure(self, bitstream: Bitstream) -> Dict[str, int]:
        """Partial reconfiguration: diff the target against the live space.

        Only words that differ are written, and stale addresses (set now,
        absent from the target) are cleared — so moving between two
        schedules that share a placement prefix re-writes nothing for the
        shared slots.  Returns ``{"written", "skipped", "cleared"}``.
        """
        target: Dict[int, int] = {}
        for write in bitstream:
            data = int(write.data) & ((1 << self.spec.word_bits) - 1)
            if data:
                target[write.addr] = data
            else:
                target.pop(write.addr, None)
        written = skipped = cleared = 0
        for addr in sorted(set(self._space) - set(target)):
            self.configure(addr, 0)
            cleared += 1
        for addr, data in sorted(target.items()):
            if self._space.get(addr, 0) == data:
                skipped += 1
            else:
                self.configure(addr, data)
                written += 1
        return {"written": written, "skipped": skipped, "cleared": cleared}

    def read(self, addr: int) -> int:
        """Read one config word *through* any injected stuck-at faults."""
        if not 0 <= addr < config_space_words(self.spec):
            raise FabricError(f"config address {addr} outside the fabric's space")
        word = self._space.get(addr, 0)
        for (stuck_addr, bit), value in self._stuck.items():
            if stuck_addr == addr:
                if value:
                    word |= 1 << bit
                else:
                    word &= ~(1 << bit)
        return word

    # ------------------------------------------------------ fault injection
    def set_stuck_at(self, addr: int, bit: int, value: int) -> None:
        """Pin config bit ``bit`` of ``addr`` to ``value`` at read time."""
        if not 0 <= bit < self.spec.word_bits:
            raise FabricError(f"bit {bit} outside a {self.spec.word_bits}-bit word")
        self._stuck[(int(addr), int(bit))] = 1 if value else 0

    def clear_faults(self) -> None:
        self._stuck.clear()

    def kill_tile(self, tile: int) -> None:
        """Mark a tile dead; placement avoids it, compiling over it fails."""
        if not 0 <= tile < self.spec.n_cells:
            raise FabricError(f"tile {tile} outside the {self.spec.rows}x{self.spec.cols} grid")
        self._dead.add(int(tile))

    @property
    def dead_tiles(self) -> FrozenSet[int]:
        return frozenset(self._dead)

    # -------------------------------------------------------------- compile
    def compile(self) -> "CompiledFabric":
        """Read the config space back into a runnable functional model.

        The three failure modes are all loud: a dead-but-configured tile,
        a payload/checksum mismatch (stuck-at corruption), and a placed PE
        unreachable over the pruned switch graph.
        """
        spec = self.spec
        placed: List[PlacedBlock] = []
        active_tiles: List[int] = []
        for tile in range(spec.n_cells):
            mode = self.read(tile_addr(spec, tile, REG_MODE))
            if mode != MODE_PE:
                continue
            if tile in self._dead:
                raise FabricError(f"tile {tile} is configured active but marked dead")
            slot_word = self.read(tile_addr(spec, tile, REG_SLOT))
            if slot_word == 0:
                raise FabricError(f"tile {tile} is in PE mode but has no schedule slot")
            length = self.read(tile_addr(spec, tile, REG_PAYLOAD_LEN))
            if not 0 < length <= spec.payload_capacity_bytes:
                raise FabricError(f"tile {tile} has an invalid payload length {length}")
            n_words = -(-length // spec.word_bytes)
            words = tuple(self.read(tile_addr(spec, tile, HEADER_WORDS + i)) for i in range(n_words))
            checksum = payload_checksum(spec, words, length)
            if checksum != self.read(tile_addr(spec, tile, REG_CHECKSUM)):
                raise FabricError(
                    f"tile {tile} payload checksum mismatch (stuck-at corruption detected)"
                )
            try:
                payload = decode_payload(spec, words, length)
                block_spec = blocks.spec_from_dict(payload)
                family = payload["family"]
                block = blocks.build(family, spec=block_spec)
            except FabricError:
                raise
            except Exception as exc:  # noqa: BLE001 - any decode failure is a config fault
                raise FabricError(f"tile {tile} payload does not decode to a block: {exc}") from exc
            placed.append(
                PlacedBlock(slot=slot_word - 1, tile=tile, family=family, block=block, spec=block_spec)
            )
            active_tiles.append(tile)
        if not placed:
            raise FabricError("no PE tile is configured; load a bitstream first")
        slots = sorted(block.slot for block in placed)
        if slots != list(range(len(placed))):
            raise FabricError(f"configured slots {slots} are not contiguous from 0")
        switch_words = self._verify_routing(active_tiles)
        placed.sort(key=lambda entry: entry.slot)
        return CompiledFabric(fabric=spec, placed=tuple(placed), switch_words=switch_words)

    def _verify_routing(self, active_tiles: Sequence[int]) -> Dict[int, int]:
        """Prune the switch graph to enabled links; every PE must be fed."""
        spec = self.spec
        base = switch_base(spec)
        words = {
            cell: self.read(base + cell) for cell in range(spec.n_cells) if self.read(base + cell)
        }
        feeder_col = spec.mem_cols - 1
        for tile in active_tiles:
            row, col = spec.tile_position(tile)
            feeder = row * spec.cols + feeder_col
            if self.read(tile_addr(spec, feeder, REG_MODE)) != MODE_MEM:
                raise FabricError(f"tile {tile} has no memory feeder configured in row {row}")
            # Walk the pruned graph east from the feeder; each hop needs
            # SEND_E on the sender and RECV_W on the receiver.
            cell = feeder
            while cell != tile:
                east = cell + 1
                if not words.get(cell, 0) & LINK_SEND_E:
                    raise FabricError(f"route to tile {tile} is broken at cell {cell} (no SEND_E)")
                if not words.get(east, 0) & LINK_RECV_W:
                    raise FabricError(f"route to tile {tile} is broken at cell {east} (no RECV_W)")
                cell = east
            if not words.get(tile, 0) & LINK_DROP_PE:
                raise FabricError(f"route reaches tile {tile} but does not drop into the PE")
        return words


@dataclass(frozen=True)
class CompiledFabric:
    """The pruned, runnable model a configured fabric compiles into."""

    fabric: FabricSpec
    placed: Tuple[PlacedBlock, ...]
    switch_words: Dict[int, int] = field(default_factory=dict)

    def block_for_slot(self, slot: int):
        return self.placed[slot].block

    def evaluate_slot(self, slot: int, values: np.ndarray) -> np.ndarray:
        """Run one slot's block on ``values`` (the packed-engine path)."""
        return self.placed[slot].block.evaluate(np.asarray(values))

    def run(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Run every slot on its own input array, in schedule order."""
        if len(inputs) != len(self.placed):
            raise FabricError(f"expected {len(self.placed)} input arrays, got {len(inputs)}")
        return [self.evaluate_slot(slot, values) for slot, values in enumerate(inputs)]

    # ------------------------------------------------------------ resources
    def resource_counts(self) -> Dict[str, int]:
        """Physical accounting of the configured fabric (costing input)."""
        spec = self.fabric
        return {
            "pe_tiles": len(self.placed),
            "mem_tiles": len({spec.tile_position(entry.tile)[0] for entry in self.placed}),
            "switches": len(self.switch_words),
            "config_words": len(self.placed) * tile_stride(spec) + len(self.switch_words),
        }

    def build_hardware(self, library=None):
        """The fabric as a :class:`~repro.hw.netlist.HardwareModule` tree.

        Each active tile contributes its hosted block's own netlist (when
        the family exposes ``build_hardware``) plus the tile overhead —
        config DFFs for the header, SRAM bits for the payload store — and
        the top level pays config DFFs + word-wide muxes per enabled
        switch.  Feeding this to :func:`repro.hw.synthesis.synthesize` is
        how the costed fabric reconciles with Table VI (see
        :func:`reconcile_table6`).
        """
        from repro.hw.netlist import ComponentInventory, HardwareModule

        spec = self.fabric
        submodules = []
        for entry in self.placed:
            overhead = ComponentInventory()
            overhead.add("DFF", HEADER_WORDS * spec.word_bits)
            overhead.add("SRAM_BIT", spec.payload_words * spec.word_bits)
            tile_subs = []
            build_hw = getattr(entry.block, "build_hardware", None)
            if callable(build_hw):
                tile_subs.append((build_hw(), 1))
            tile = HardwareModule(
                name=f"fabric_tile{entry.tile}_{entry.family.replace('/', '_')}",
                inventory=overhead,
                critical_path=("DFF",),
                cycles=1,
                submodules=tile_subs,
                metadata={"tile": entry.tile, "slot": entry.slot, "family": entry.family},
            )
            submodules.append((tile, 1))
        switch_inv = ComponentInventory()
        if self.switch_words:
            switch_inv.add("DFF", len(self.switch_words) * spec.word_bits)
            switch_inv.add("MUX2", len(self.switch_words) * spec.word_bits)
        return HardwareModule(
            name=f"fabric_{spec.rows}x{spec.cols}",
            inventory=switch_inv,
            critical_path=("MUX2",),
            cycles=1,
            submodules=submodules,
            metadata={"design": spec.name, "resources": self.resource_counts()},
        )


# ---------------------------------------------------------------------------
# Registry-derived mappability (Table I's ``fabric_mappable`` column).
# ---------------------------------------------------------------------------


def fabric_mappable(family: str, fabric: Optional[FabricSpec] = None) -> bool:
    """True when the family's all-defaults spec fits a tile payload.

    Derived purely from the registry (default spec -> canonical JSON ->
    byte length vs the design's payload capacity); no hand-maintained
    list, so a new family gets its Table I column for free.
    """
    from repro.fabric.bitstream import encode_payload

    fabric = fabric or FabricSpec()
    try:
        spec = blocks.default_spec(family)
        encode_payload(fabric, spec.to_dict())
    except Exception:  # noqa: BLE001 - any failure means "not mappable"
        return False
    return True


def mappable_families(fabric: Optional[FabricSpec] = None) -> Dict[str, bool]:
    """``{family: fabric_mappable}`` over the whole registry."""
    fabric = fabric or FabricSpec()
    return {name: fabric_mappable(name, fabric) for name in blocks.names()}


# ---------------------------------------------------------------------------
# Golden cross-check execution (the `repro fabric` / FabricTask payload).
# ---------------------------------------------------------------------------


def _test_vectors(function: str, block_spec: Any, rows: int, seed: int) -> np.ndarray:
    """Deterministic shared test vectors for one block function."""
    if function == "softmax":
        from repro.evaluation.vectors import attention_logit_vectors

        return attention_logit_vectors(rows, int(getattr(block_spec, "m", 64)), seed=seed)
    if function == "gelu":
        from repro.evaluation.vectors import gelu_input_vectors

        return gelu_input_vectors(rows, seed=seed)
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=rows)


def _fault_hook(flip_prob: float, fault_seed: int, n_rows: int):
    """A fresh, armed fault model as a ``stream_hook`` (or ``None``)."""
    if flip_prob <= 0.0:
        return None
    from repro.eval_pipeline.faults import BitFlipFaultModel

    model = BitFlipFaultModel(flip_prob, seed=fault_seed)
    model.begin_batch(list(range(n_rows)))

    def hook(site, stream):
        return model.perturb_stream(stream)

    return hook


def _evaluate_block(block: Any, values: np.ndarray, flip_prob: float, fault_seed: int) -> np.ndarray:
    """Evaluate through the fault seam when the block exposes one.

    Only families with a thermometer-stream ``forward(..., stream_hook=)``
    (the iterative softmax) take injected flips; the hook is re-armed
    identically on the fabric and golden sides, so bit-identity holds
    under faults too.
    """
    forward = getattr(block, "forward", None)
    if flip_prob > 0.0 and callable(forward):
        try:
            hook = _fault_hook(flip_prob, fault_seed, int(np.asarray(values).shape[0]))
            return forward(np.asarray(values), stream_hook=hook)
        except TypeError:
            pass  # family's forward has no stream_hook seam; fall through
    return block.evaluate(np.asarray(values))


def run_fabric(spec: FabricRunSpec) -> Dict[str, Any]:
    """Place, route, configure, compile and execute one fabric workload.

    The returned payload is JSON-able (the :class:`FabricTask` cache
    contract): compile timings, the bitstream digest and write counts, the
    per-slot output digests, the resource/cost summary, and the outcome of
    the golden cross-check (every slot's fabric output compared
    bit-for-bit against ``blocks.build(...)`` on the same vectors).
    """
    from repro.runner.cache import array_digest

    fabric = Fabric(spec.fabric)
    t0 = time.perf_counter()
    placement = place_and_route(spec.fabric, spec.schedule, seed=spec.seed)
    bitstream = placement.bitstream()
    t_place = time.perf_counter()
    fabric.load_bitstream(bitstream)
    compiled = fabric.compile()
    t_compile = time.perf_counter()

    slots = []
    bit_identical = True
    for slot, entry in enumerate(compiled.placed):
        family = entry.family
        function = blocks.get(family).function
        values = _test_vectors(function, entry.spec, spec.rows, spec.seed)
        fabric_out = _evaluate_block(entry.block, values, spec.flip_prob, spec.fault_seed)
        golden_block = blocks.build(family, spec=spec.schedule[slot])
        golden_out = _evaluate_block(golden_block, values, spec.flip_prob, spec.fault_seed)
        identical = bool(np.array_equal(fabric_out, golden_out))
        bit_identical &= identical
        slots.append(
            {
                "slot": slot,
                "tile": entry.tile,
                "family": family,
                "rows": int(np.asarray(values).shape[0]),
                "output_digest": array_digest(np.asarray(fabric_out, dtype=np.float64)),
                "bit_identical": identical,
            }
        )
    t_run = time.perf_counter()

    module = compiled.build_hardware()
    return {
        "name": spec.name,
        "fabric": spec.fabric.name,
        "grid": [spec.fabric.rows, spec.fabric.cols],
        "schedule": [entry.to_dict() for entry in spec.schedule],
        "seed": spec.seed,
        "flip_prob": spec.flip_prob,
        "bitstream": {
            "writes": len(bitstream),
            "bytes": len(bitstream.to_bytes()),
            "digest": bitstream.digest(),
        },
        "timings_ms": {
            "place_route": (t_place - t0) * 1e3,
            "configure_compile": (t_compile - t_place) * 1e3,
            "execute": (t_run - t_compile) * 1e3,
        },
        "resources": compiled.resource_counts(),
        "area_um2": module.area_um2(),
        "slots": slots,
        "bit_identical": bit_identical,
    }


# ---------------------------------------------------------------------------
# Table VI reconciliation.
# ---------------------------------------------------------------------------


def reconcile_table6(
    softmax_config=None, fabric: Optional[FabricSpec] = None, library=None
) -> Dict[str, Any]:
    """Cost a fabric tile hosting the softmax block against Table VI.

    Synthesizes (via :func:`repro.hw.synthesis.synthesize`) a one-slot
    fabric configured with the accelerator's softmax config and compares
    the tile's area against the dedicated softmax block of
    :class:`~repro.core.accelerator.AscendAccelerator` — the Table VI
    harness.  The fabric must cost *at least* the block (it embeds the
    same netlist) and no more than :data:`TABLE6_AREA_TOLERANCE` times it
    (config registers + payload SRAM + switch muxes are the documented
    overhead).
    """
    from repro.blocks.specs import SoftmaxCircuitConfig
    from repro.core.accelerator import AcceleratorConfig, AscendAccelerator
    from repro.hw.synthesis import synthesize

    softmax_config = softmax_config or SoftmaxCircuitConfig()
    fabric = fabric or FabricSpec()

    machine = Fabric(fabric)
    placement = place_and_route(fabric, [softmax_config], seed=0)
    machine.load_bitstream(placement.bitstream())
    compiled = machine.compile()
    tile_module = compiled.build_hardware(library)
    # The tile alone (block + per-tile config overhead), without the
    # shared switch fabric, is what maps onto one accelerator block.
    tile_only = tile_module.submodules[0][0]
    fabric_report = synthesize(tile_only, library=library)

    accelerator = AscendAccelerator(AcceleratorConfig(softmax=softmax_config))
    golden_area = accelerator.softmax_block_report().area_um2
    ratio = fabric_report.area_um2 / golden_area
    return {
        "fabric_tile_area_um2": fabric_report.area_um2,
        "accelerator_block_area_um2": golden_area,
        "ratio": ratio,
        "tolerance": TABLE6_AREA_TOLERANCE,
        "reconciles": bool(1.0 <= ratio <= TABLE6_AREA_TOLERANCE),
    }
