"""Frozen, JSON-round-trippable specs for the accelerator-fabric simulator.

Two kinds, mirroring the serve/scenario spec idiom
(:mod:`repro.serve.specs`, :mod:`repro.scenarios.specs`):

* :class:`FabricSpec` (``{"kind": "fabric/design"}``) describes the
  *physical* fabric: a ``rows x cols`` grid of tiles, the leftmost
  ``mem_cols`` columns being memory (stream-feeder) tiles and the rest PE
  tiles, plus one switch per grid cell.  Behaviour is set purely by a
  configuration bitstream written into the sparse config space the spec
  lays out (see :mod:`repro.fabric.bitstream` for the address map).
* :class:`FabricRunSpec` (``{"kind": "fabric/run"}``) is one executable
  workload: a fabric design plus a *schedule* of
  :class:`~repro.blocks.specs.BlockSpec` entries to place-and-route, the
  test-vector row count, the placement seed and the fault-injection knobs.

Both are frozen dataclasses with exact JSON round-trips: ``from_json(
spec.to_json())`` reconstructs the spec field for field and re-serialising
produces the same bytes (the golden-file property the examples smoke test
gates on for every shipped ``examples/specs/fabric_*.json``).  Validation
runs at construction, so a zero-width grid or an unknown schedule family
fails when the spec is *built*, not mid-compile.

``repro run`` sniffs both ``kind`` tags and routes the files through the
``repro fabric`` subcommand, which shares the content-addressed sweep
cache — a fabric run is a cacheable artifact exactly like a DSE row.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Type, Union

from repro.blocks.specs import BlockSpec, spec_from_dict

__all__ = [
    "FABRIC_DESIGN_KIND",
    "FABRIC_RUN_KIND",
    "FabricRunSpec",
    "FabricSpec",
]

#: ``kind`` tag of a serialised fabric design (``repro run`` sniffs it).
FABRIC_DESIGN_KIND = "fabric/design"

#: ``kind`` tag of a serialised fabric workload (``repro run`` sniffs it).
FABRIC_RUN_KIND = "fabric/run"

#: Word widths the config space supports (bytes per word must be integral).
_WORD_BITS = (8, 16, 32)


def _check_params(cls: Type, params: Dict[str, Any], label: str) -> Dict[str, Any]:
    """Reject unknown keys before constructing a nested spec section."""
    if not isinstance(params, dict):
        raise ValueError(f"{label} must be a JSON object, got {type(params).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(f"unknown {label} params: {', '.join(unknown)}")
    return params


@dataclass(frozen=True)
class FabricSpec:
    """The physical fabric: tile grid geometry + config-space word layout.

    ``rows x cols`` grid cells, row-major tile ids ``r * cols + c``.  Cells
    with ``c < mem_cols`` are memory tiles (they source the input streams);
    the remaining cells are PE tiles that can each host one configured
    block.  Every cell also owns one switch whose single config word
    encodes the enabled routing links (see :mod:`repro.fabric.bitstream`).

    Each PE/memory tile owns a ``4 + payload_words``-word config window
    (mode, slot, payload length, checksum, then the block-spec payload as
    packed little-endian JSON bytes); the per-tile payload capacity in
    bytes, ``payload_words * word_bits // 8``, is what decides whether a
    block family is *fabric-mappable* (its all-defaults spec JSON must
    fit — derived from the registry, never hand-maintained).
    """

    name: str = "fabric"
    description: str = ""
    rows: int = 4
    cols: int = 4
    mem_cols: int = 1
    word_bits: int = 32
    payload_words: int = 96

    def __post_init__(self) -> None:
        for attr in ("rows", "cols", "mem_cols", "payload_words"):
            value = getattr(self, attr)
            if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
                raise ValueError(f"{attr} must be a positive int, got {value!r}")
        if self.mem_cols >= self.cols:
            raise ValueError(
                f"mem_cols must leave at least one PE column (mem_cols={self.mem_cols}, cols={self.cols})"
            )
        if self.word_bits not in _WORD_BITS:
            raise ValueError(f"word_bits must be one of {_WORD_BITS}, got {self.word_bits!r}")
        if not isinstance(self.name, str) or not isinstance(self.description, str):
            raise ValueError("name and description must be strings")

    # ------------------------------------------------------------- geometry
    @property
    def n_cells(self) -> int:
        return self.rows * self.cols

    @property
    def pe_tiles(self) -> Tuple[int, ...]:
        """Row-major ids of the PE cells (everything right of the memory columns)."""
        return tuple(
            r * self.cols + c
            for r in range(self.rows)
            for c in range(self.mem_cols, self.cols)
        )

    @property
    def word_bytes(self) -> int:
        return self.word_bits // 8

    @property
    def payload_capacity_bytes(self) -> int:
        """Per-tile block-spec payload capacity (decides fabric mappability)."""
        return self.payload_words * self.word_bytes

    def tile_position(self, tile: int) -> Tuple[int, int]:
        """``(row, col)`` of a row-major tile id."""
        if not 0 <= tile < self.n_cells:
            raise ValueError(f"tile {tile} outside the {self.rows}x{self.cols} grid")
        return divmod(tile, self.cols)

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        """``{"kind": "fabric/design", "params": {...}}``, fully expanded."""
        return {"kind": FABRIC_DESIGN_KIND, "params": dataclasses.asdict(self)}

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON — the byte-exact inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FabricSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"fabric design must be a JSON object, got {type(payload).__name__}")
        kind = payload.get("kind")
        if kind != FABRIC_DESIGN_KIND:
            raise ValueError(f"expected kind {FABRIC_DESIGN_KIND!r}, got {kind!r}")
        return cls(**_check_params(cls, payload.get("params", {}), "fabric design"))

    @classmethod
    def from_json(cls, text: str) -> "FabricSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FabricSpec":
        path = Path(path)
        try:
            return cls.from_json(path.read_text())
        except (ValueError, OSError) as exc:
            raise type(exc)(f"{path}: {exc}") from exc

    def with_updates(self, **updates: Any) -> "FabricSpec":
        """A new spec with ``updates`` applied (validation re-runs)."""
        return dataclasses.replace(self, **updates)

    @staticmethod
    def sniff(payload: Any) -> bool:
        """True when a decoded JSON payload looks like a fabric design."""
        return isinstance(payload, dict) and payload.get("kind") == FABRIC_DESIGN_KIND


@dataclass(frozen=True)
class FabricRunSpec:
    """One executable fabric workload: design + schedule + vectors + faults.

    ``schedule`` is the ordered list of block specs to place-and-route
    (slot ``i`` of the placement runs ``schedule[i]``); each serialises in
    its canonical ``{"family", "params"}`` form and revives through
    :func:`repro.blocks.specs.spec_from_dict`, so an unknown family or a
    typo'd param fails at spec load.  ``rows`` sizes the shared test
    vectors, ``seed`` rotates the deterministic placement (and seeds the
    vectors), and ``flip_prob``/``fault_seed`` arm the same
    :class:`~repro.eval_pipeline.faults.BitFlipFaultModel` on the fabric
    and the golden path, so bit-identity is asserted *under* faults too.
    """

    name: str = "fabric-run"
    description: str = ""
    fabric: FabricSpec = field(default_factory=FabricSpec)
    schedule: Tuple[BlockSpec, ...] = ()
    rows: int = 16
    seed: int = 0
    flip_prob: float = 0.0
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.fabric, FabricSpec):
            raise ValueError(f"fabric must be a FabricSpec, got {type(self.fabric).__name__}")
        if not self.schedule:
            raise ValueError("schedule must name at least one block spec")
        object.__setattr__(self, "schedule", tuple(self.schedule))
        for entry in self.schedule:
            if not hasattr(entry, "to_dict"):
                raise ValueError(f"schedule entries must be BlockSpecs, got {type(entry).__name__}")
        if not isinstance(self.rows, int) or isinstance(self.rows, bool) or self.rows <= 0:
            raise ValueError(f"rows must be a positive int, got {self.rows!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {self.seed!r}")
        if not 0.0 <= float(self.flip_prob) <= 1.0:
            raise ValueError(f"flip_prob must lie in [0, 1], got {self.flip_prob!r}")
        if not isinstance(self.fault_seed, int) or isinstance(self.fault_seed, bool):
            raise ValueError(f"fault_seed must be an int, got {self.fault_seed!r}")

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        """``{"kind": "fabric/run", "params": {...}}``, fully expanded.

        Every section serialises with all fields present in declaration
        order, so the output is canonical: it is also the content-addressed
        identity ``repro fabric`` caches run results under.
        """
        return {
            "kind": FABRIC_RUN_KIND,
            "params": {
                "name": self.name,
                "description": self.description,
                "fabric": dataclasses.asdict(self.fabric),
                "schedule": [entry.to_dict() for entry in self.schedule],
                "rows": self.rows,
                "seed": self.seed,
                "flip_prob": self.flip_prob,
                "fault_seed": self.fault_seed,
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON — the byte-exact inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FabricRunSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"fabric run must be a JSON object, got {type(payload).__name__}")
        kind = payload.get("kind")
        if kind != FABRIC_RUN_KIND:
            raise ValueError(f"expected kind {FABRIC_RUN_KIND!r}, got {kind!r}")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ValueError("params must be a JSON object")
        known = {"name", "description", "fabric", "schedule", "rows", "seed", "flip_prob", "fault_seed"}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ValueError(f"unknown fabric run params: {', '.join(unknown)}")
        fabric = FabricSpec(**_check_params(FabricSpec, params.get("fabric", {}), "fabric"))
        raw_schedule = params.get("schedule", [])
        if not isinstance(raw_schedule, list):
            raise ValueError("schedule must be a JSON array of block specs")
        schedule = tuple(spec_from_dict(entry) for entry in raw_schedule)
        return cls(
            name=str(params.get("name", "")),
            description=str(params.get("description", "")),
            fabric=fabric,
            schedule=schedule,
            rows=int(params.get("rows", 16)),
            seed=int(params.get("seed", 0)),
            flip_prob=float(params.get("flip_prob", 0.0)),
            fault_seed=int(params.get("fault_seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FabricRunSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FabricRunSpec":
        path = Path(path)
        try:
            return cls.from_json(path.read_text())
        except (ValueError, OSError, KeyError) as exc:
            raise type(exc)(f"{path}: {exc}") from exc

    def with_updates(self, **updates: Any) -> "FabricRunSpec":
        """A new spec with ``updates`` applied (validation re-runs)."""
        return dataclasses.replace(self, **updates)

    @staticmethod
    def sniff(payload: Any) -> bool:
        """True when a decoded JSON payload looks like a fabric run."""
        return isinstance(payload, dict) and payload.get("kind") == FABRIC_RUN_KIND
