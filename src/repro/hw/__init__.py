"""Hardware cost model for SC circuit blocks.

The paper evaluates its circuits by writing RTL and synthesising it with
Synopsys Design Compiler on a TSMC 28 nm library.  Neither tool is available
here, so this package provides the substitute described in ``DESIGN.md``:

* :mod:`repro.hw.cells` — a 28 nm-like standard-cell library (per-cell area
  and delay),
* :mod:`repro.hw.netlist` — structural descriptions of circuit blocks as
  hierarchical component inventories with an explicit critical path,
* :mod:`repro.hw.synthesis` — an analytical "synthesis" step that turns a
  structural description into area / delay / ADP numbers,
* :mod:`repro.hw.metrics` — hardware and accuracy metrics (ADP, MAE, energy
  proxies).

The SC blocks in :mod:`repro.sc` and :mod:`repro.core` each expose a
``build_hardware()`` constructor returning a :class:`~repro.hw.netlist.HardwareModule`,
so the benchmark harness evaluates every design through exactly the same
cost model the way the paper runs every design through the same synthesis
flow.
"""

from repro.hw.cells import CellLibrary, StandardCell, tsmc28_like_library
from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.hw.synthesis import SynthesisReport, synthesize
from repro.hw.metrics import (
    area_delay_product,
    energy_proxy,
    mean_absolute_error,
    root_mean_squared_error,
)

__all__ = [
    "CellLibrary",
    "StandardCell",
    "tsmc28_like_library",
    "ComponentInventory",
    "HardwareModule",
    "SynthesisReport",
    "synthesize",
    "area_delay_product",
    "energy_proxy",
    "mean_absolute_error",
    "root_mean_squared_error",
]
