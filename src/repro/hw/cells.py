"""Standard-cell library model.

Cell areas and delays are representative of a commercial 28 nm high-density
library (areas of a few tenths of a square micron per simple gate, gate
delays of a few tens of picoseconds).  The exact values are calibration
constants — the reproduction does not claim to model TSMC's library, only to
give every SC block a consistent, physically plausible cost basis so that
*relative* comparisons (the quantity the paper argues about) are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class StandardCell:
    """A single standard cell.

    Attributes
    ----------
    name:
        Library cell name, e.g. ``"NAND2"``.
    area_um2:
        Placed cell area in square microns.
    delay_ns:
        Typical propagation delay in nanoseconds under a nominal load.
    leakage_nw:
        Leakage power in nanowatts; used only by the energy proxy metric.
    """

    name: str
    area_um2: float
    delay_ns: float
    leakage_nw: float = 0.0

    def __post_init__(self) -> None:
        if self.area_um2 < 0 or self.delay_ns < 0 or self.leakage_nw < 0:
            raise ValueError(f"cell {self.name} has negative characteristics")


class CellLibrary:
    """A named collection of :class:`StandardCell` objects.

    The library answers area/delay queries for the synthesis estimator and
    refuses queries for unknown cells (a silent zero-area default would make
    cost comparisons meaningless).
    """

    def __init__(self, name: str, cells: Iterable[StandardCell]) -> None:
        self.name = name
        self._cells: Dict[str, StandardCell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate cell {cell.name!r} in library {name!r}")
            self._cells[cell.name] = cell

    def __contains__(self, cell_name: str) -> bool:
        return cell_name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def cell(self, cell_name: str) -> StandardCell:
        """Return the cell record for ``cell_name`` or raise ``KeyError``."""
        try:
            return self._cells[cell_name]
        except KeyError:
            raise KeyError(
                f"cell {cell_name!r} is not in library {self.name!r}; "
                f"known cells: {sorted(self._cells)}"
            ) from None

    def area(self, cell_name: str, count: int = 1) -> float:
        """Total area of ``count`` instances of ``cell_name`` in um^2."""
        check_positive_int(count, "count")
        return self.cell(cell_name).area_um2 * count

    def delay(self, cell_name: str) -> float:
        """Propagation delay of a single ``cell_name`` instance in ns."""
        return self.cell(cell_name).delay_ns

    def leakage(self, cell_name: str, count: int = 1) -> float:
        """Total leakage of ``count`` instances in nW."""
        check_positive_int(count, "count")
        return self.cell(cell_name).leakage_nw * count

    def scaled(self, name: str, area_scale: float, delay_scale: float) -> "CellLibrary":
        """Return a technology-scaled copy of the library.

        Useful for quick what-if studies (e.g. approximating a 16 nm or 40 nm
        node) without touching any block generator.
        """
        if area_scale <= 0 or delay_scale <= 0:
            raise ValueError("scale factors must be positive")
        cells = [
            StandardCell(
                name=cell.name,
                area_um2=cell.area_um2 * area_scale,
                delay_ns=cell.delay_ns * delay_scale,
                leakage_nw=cell.leakage_nw * area_scale,
            )
            for cell in self
        ]
        return CellLibrary(name, cells)

    def as_dict(self) -> Mapping[str, StandardCell]:
        """Read-only view of the cells keyed by name."""
        return dict(self._cells)


#: Calibrated cell characteristics for the default library.  Simple gates use
#: areas/delays typical of a 28 nm high-density process; the composite cells
#: (full adder, compare-exchange, LFSR bit) are pre-flattened conveniences so
#: block generators stay readable.
_DEFAULT_CELLS = (
    StandardCell("INV", area_um2=0.13, delay_ns=0.010, leakage_nw=0.6),
    StandardCell("BUF", area_um2=0.18, delay_ns=0.015, leakage_nw=0.8),
    StandardCell("NAND2", area_um2=0.18, delay_ns=0.014, leakage_nw=0.9),
    StandardCell("NOR2", area_um2=0.18, delay_ns=0.016, leakage_nw=0.9),
    StandardCell("AND2", area_um2=0.23, delay_ns=0.020, leakage_nw=1.1),
    StandardCell("OR2", area_um2=0.23, delay_ns=0.020, leakage_nw=1.1),
    StandardCell("AND3", area_um2=0.30, delay_ns=0.025, leakage_nw=1.4),
    StandardCell("OR3", area_um2=0.30, delay_ns=0.025, leakage_nw=1.4),
    StandardCell("XOR2", area_um2=0.41, delay_ns=0.030, leakage_nw=1.8),
    StandardCell("XNOR2", area_um2=0.41, delay_ns=0.030, leakage_nw=1.8),
    StandardCell("MUX2", area_um2=0.41, delay_ns=0.028, leakage_nw=1.8),
    StandardCell("MUX4", area_um2=0.95, delay_ns=0.050, leakage_nw=3.6),
    StandardCell("AOI21", area_um2=0.27, delay_ns=0.020, leakage_nw=1.2),
    StandardCell("OAI21", area_um2=0.27, delay_ns=0.020, leakage_nw=1.2),
    # Sequential cells.
    StandardCell("DFF", area_um2=1.10, delay_ns=0.080, leakage_nw=4.5),
    StandardCell("SRFF", area_um2=0.80, delay_ns=0.060, leakage_nw=3.2),
    # Pre-flattened composite cells used by the SC block generators.
    StandardCell("HALF_ADDER", area_um2=0.64, delay_ns=0.045, leakage_nw=2.6),
    StandardCell("FULL_ADDER", area_um2=1.15, delay_ns=0.070, leakage_nw=4.8),
    StandardCell("CMP_BIT", area_um2=0.75, delay_ns=0.045, leakage_nw=3.0),
    # A compare-exchange element of a bitonic sorting network for single-bit
    # streams is just an AND (max) and an OR (min) gate pair.
    StandardCell("SORT_CE", area_um2=0.46, delay_ns=0.040, leakage_nw=2.2),
    # One stage (bit) of a maximal-length LFSR used by stochastic number
    # generators: a flip-flop plus feedback XOR share.
    StandardCell("LFSR_BIT", area_um2=1.55, delay_ns=0.090, leakage_nw=6.0),
    # Saturating up/down counter bit used by FSM-based SC nonlinearities.
    StandardCell("COUNTER_BIT", area_um2=1.90, delay_ns=0.120, leakage_nw=7.5),
    # SRAM bit used for coefficient / lookup storage inside blocks.
    StandardCell("SRAM_BIT", area_um2=0.12, delay_ns=0.150, leakage_nw=0.05),
)


def tsmc28_like_library() -> CellLibrary:
    """Return the default 28 nm-like calibration library.

    A fresh object is returned on every call so that callers mutating a
    scaled copy can never corrupt the shared default.
    """
    return CellLibrary("tsmc28-like", _DEFAULT_CELLS)


_DEFAULT_LIBRARY: Optional[CellLibrary] = None


def default_library() -> CellLibrary:
    """Return a process-wide shared instance of the default library."""
    global _DEFAULT_LIBRARY
    if _DEFAULT_LIBRARY is None:
        _DEFAULT_LIBRARY = tsmc28_like_library()
    return _DEFAULT_LIBRARY
