"""Hardware and accuracy metrics used throughout the evaluation.

The paper reports two kinds of numbers for each circuit: hardware cost
(area, delay and their product, ADP) and computation error (mean average
error, MAE, of the circuit output against the exact mathematical function on
test vectors drawn from real ViT activations).  This module centralises both
so every benchmark computes them identically.
"""

from __future__ import annotations

import numpy as np


def area_delay_product(area_um2: float, delay_ns: float) -> float:
    """Area-delay product in um^2 * ns.

    Raises if either operand is negative; zero is allowed (an empty block).
    """
    if area_um2 < 0 or delay_ns < 0:
        raise ValueError("area and delay must be non-negative")
    return area_um2 * delay_ns


def mean_absolute_error(reference: np.ndarray, measured: np.ndarray) -> float:
    """MAE between a circuit's outputs and the exact function values.

    Both arrays are flattened; shapes must match element-for-element.
    """
    reference = np.asarray(reference, dtype=float)
    measured = np.asarray(measured, dtype=float)
    if reference.shape != measured.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs measured {measured.shape}"
        )
    if reference.size == 0:
        raise ValueError("cannot compute MAE of empty arrays")
    return float(np.mean(np.abs(reference - measured)))


def root_mean_squared_error(reference: np.ndarray, measured: np.ndarray) -> float:
    """RMSE between reference and measured outputs (same contract as MAE)."""
    reference = np.asarray(reference, dtype=float)
    measured = np.asarray(measured, dtype=float)
    if reference.shape != measured.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs measured {measured.shape}"
        )
    if reference.size == 0:
        raise ValueError("cannot compute RMSE of empty arrays")
    return float(np.sqrt(np.mean((reference - measured) ** 2)))


def energy_proxy(leakage_nw: float, delay_ns: float, switching_factor: float = 1.0) -> float:
    """A simple energy-per-result proxy in femtojoules.

    Leakage power integrated over the latency plus a switching term
    proportional to it.  The paper does not report energy, but the proxy is
    useful for the ablation benches, so it lives here next to ADP.
    """
    if leakage_nw < 0 or delay_ns < 0 or switching_factor < 0:
        raise ValueError("energy proxy inputs must be non-negative")
    static_fj = leakage_nw * delay_ns * 1e-3  # nW * ns = 1e-18 J = 1e-3 fJ
    return static_fj * (1.0 + switching_factor)


def reduction_factor(baseline: float, ours: float) -> float:
    """How many times smaller ``ours`` is than ``baseline`` (e.g. ADP reduction)."""
    if ours <= 0:
        raise ValueError("ours must be positive to compute a reduction factor")
    if baseline < 0:
        raise ValueError("baseline must be non-negative")
    return baseline / ours


def percentage_reduction(baseline: float, ours: float) -> float:
    """Percentage by which ``ours`` is lower than ``baseline`` (e.g. MAE reduction)."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero for a percentage reduction")
    return 100.0 * (baseline - ours) / baseline
