"""Structural description of hardware blocks.

An SC block is described by:

* a :class:`ComponentInventory` — how many instances of each standard cell it
  contains,
* a *critical path* — the ordered list of cells a signal traverses in the
  longest combinational path,
* a cycle count — how many clock cycles the block needs to produce one
  result (1 for fully combinational/parallel blocks, the bitstream length for
  serial stochastic designs),
* optional submodules, so blocks compose hierarchically exactly like the RTL
  hierarchy in the paper (e.g. the softmax block of Fig. 5 instantiates ``m``
  compute units plus a global sorting network).

The synthesis estimator (:mod:`repro.hw.synthesis`) consumes these objects.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.hw.cells import CellLibrary, default_library
from repro.utils.validation import check_positive_int


class ComponentInventory:
    """A multiset of standard-cell instances.

    Thin wrapper over :class:`collections.Counter` with validation and a few
    convenience constructors; keeping it a dedicated type makes the block
    generators read like a bill of materials.
    """

    def __init__(self, counts: Optional[Mapping[str, int]] = None) -> None:
        self._counts: Counter = Counter()
        if counts:
            for name, count in counts.items():
                self.add(name, count)

    def add(self, cell_name: str, count: int = 1) -> "ComponentInventory":
        """Add ``count`` instances of ``cell_name`` (returns self for chaining)."""
        if count < 0:
            raise ValueError(f"cannot add a negative count of {cell_name!r}")
        if count:
            self._counts[cell_name] += int(count)
        return self

    def merge(self, other: "ComponentInventory") -> "ComponentInventory":
        """Add every entry of ``other`` into this inventory (returns self)."""
        for name, count in other.items():
            self.add(name, count)
        return self

    def scaled(self, factor: int) -> "ComponentInventory":
        """Return a new inventory with every count multiplied by ``factor``."""
        check_positive_int(factor, "factor")
        return ComponentInventory({name: count * factor for name, count in self.items()})

    def items(self) -> Iterable[Tuple[str, int]]:
        return self._counts.items()

    def count(self, cell_name: str) -> int:
        """Number of instances of ``cell_name`` (0 if absent)."""
        return self._counts.get(cell_name, 0)

    def total_instances(self) -> int:
        """Total number of cell instances across all cell types."""
        return sum(self._counts.values())

    def area(self, library: Optional[CellLibrary] = None) -> float:
        """Total area of the inventory in um^2 under ``library``."""
        library = library or default_library()
        return sum(library.cell(name).area_um2 * count for name, count in self.items())

    def leakage(self, library: Optional[CellLibrary] = None) -> float:
        """Total leakage in nW under ``library``."""
        library = library or default_library()
        return sum(library.cell(name).leakage_nw * count for name, count in self.items())

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ComponentInventory):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{name}x{count}" for name, count in sorted(self.items()))
        return f"ComponentInventory({parts})"


@dataclass
class HardwareModule:
    """A structural hardware block ready for cost estimation.

    Attributes
    ----------
    name:
        Human-readable block name (shows up in reports).
    inventory:
        Cells owned directly by this module (excluding submodules).
    critical_path:
        Ordered cell names along the module's own longest combinational path.
        Submodule critical paths are accounted for separately, see
        :meth:`combinational_delay_ns`.
    cycles:
        Clock cycles needed to produce one result.  Combinational designs use
        1; bit-serial stochastic designs use the bitstream length; iterative
        designs use the iteration count times the cycles per iteration.
    submodules:
        Child modules with their instance counts, e.g. ``[(unit, 64)]`` for
        the 64 softmax compute units.
    pipelined:
        When True the module's latency is ``cycles`` clock periods with the
        clock period set by the slowest stage; when False (default) the
        stages of one result are executed back to back and the combinational
        delays add up along the hierarchy.
    metadata:
        Free-form details (BSLs, scaling factors, iteration counts) recorded
        so that synthesis reports are self-describing.
    """

    name: str
    inventory: ComponentInventory = field(default_factory=ComponentInventory)
    critical_path: Sequence[str] = field(default_factory=tuple)
    cycles: int = 1
    submodules: List[Tuple["HardwareModule", int]] = field(default_factory=list)
    pipelined: bool = False
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive_int(self.cycles, "cycles")
        for _, count in self.submodules:
            check_positive_int(count, "submodule count")

    # ------------------------------------------------------------------ area
    def total_inventory(self) -> ComponentInventory:
        """Flattened inventory including all submodules."""
        total = ComponentInventory(self.inventory.as_dict())
        for module, count in self.submodules:
            total.merge(module.total_inventory().scaled(count))
        return total

    def area_um2(self, library: Optional[CellLibrary] = None) -> float:
        """Total placed area of the module hierarchy."""
        return self.total_inventory().area(library)

    def leakage_nw(self, library: Optional[CellLibrary] = None) -> float:
        """Total leakage power of the module hierarchy."""
        return self.total_inventory().leakage(library)

    # ----------------------------------------------------------------- delay
    def own_path_delay_ns(self, library: Optional[CellLibrary] = None) -> float:
        """Delay of this module's own critical path (excluding submodules)."""
        library = library or default_library()
        return sum(library.cell(name).delay_ns for name in self.critical_path)

    def combinational_delay_ns(self, library: Optional[CellLibrary] = None) -> float:
        """Longest combinational delay through the module hierarchy.

        For a non-pipelined module the submodule on the critical path feeds
        this module's own logic, so delays add; the slowest submodule is the
        one that matters.  For a pipelined module each stage is registered,
        so the relevant number is the slowest single stage.
        """
        library = library or default_library()
        own = self.own_path_delay_ns(library)
        child = max(
            (module.combinational_delay_ns(library) for module, _ in self.submodules),
            default=0.0,
        )
        if self.pipelined:
            return max(own, child)
        return own + child

    def latency_ns(self, library: Optional[CellLibrary] = None, min_clock_ns: float = 0.0) -> float:
        """Time to produce one result.

        ``cycles`` clock periods, where the clock period is the longest
        combinational delay (bounded below by ``min_clock_ns`` so callers can
        model an externally imposed system clock).
        """
        period = max(self.combinational_delay_ns(library), min_clock_ns)
        return self.cycles * period

    # ------------------------------------------------------------- structure
    def hierarchy_graph(self) -> nx.DiGraph:
        """Return the module hierarchy as a directed graph.

        Nodes are module names annotated with instance counts and own area;
        edges point from parent to child.  Used by reporting and by tests
        that check the hierarchy is acyclic (a module cannot contain itself).
        """
        graph = nx.DiGraph()

        def visit(module: "HardwareModule") -> None:
            if module.name not in graph:
                graph.add_node(module.name, cycles=module.cycles)
            for child, count in module.submodules:
                visit(child)
                graph.add_edge(module.name, child.name, count=count)

        visit(self)
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError(f"module hierarchy of {self.name!r} contains a cycle")
        return graph

    def flattened_cell_count(self) -> int:
        """Total standard-cell instances in the flattened design."""
        return self.total_inventory().total_instances()

    def describe(self) -> str:
        """One-line human readable summary used in benchmark output."""
        meta = ", ".join(f"{k}={v}" for k, v in sorted(self.metadata.items()))
        return f"{self.name} [{meta}]" if meta else self.name
