"""Analytical synthesis estimator.

``synthesize`` plays the role of the Synopsys Design Compiler run in the
paper's evaluation flow: it takes a structural :class:`HardwareModule` and a
cell library and produces a :class:`SynthesisReport` with area, delay and
derived metrics.  Because every block (ours and every baseline) goes through
the same estimator with the same library, the relative comparisons the paper
makes (ADP reductions, Pareto fronts, area fractions) are apples to apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hw.cells import CellLibrary, default_library
from repro.hw.netlist import HardwareModule


@dataclass(frozen=True)
class SynthesisReport:
    """Result of estimating one hardware module.

    Attributes
    ----------
    name:
        Module name (copied from the module).
    area_um2:
        Total placed standard-cell area.
    delay_ns:
        Latency to produce one result (cycles x clock period).
    adp:
        Area-delay product in um^2 * ns — the paper's headline hardware
        efficiency metric.
    clock_period_ns:
        The clock period used (longest combinational path, possibly clamped
        to a minimum system clock).
    cycles:
        Number of clock cycles per result.
    cell_count:
        Total flattened standard-cell instances.
    leakage_nw:
        Total leakage power (used by the energy proxy).
    cell_breakdown:
        Flattened per-cell-type instance counts.
    metadata:
        The module's metadata, carried through for self-describing reports.
    """

    name: str
    area_um2: float
    delay_ns: float
    adp: float
    clock_period_ns: float
    cycles: int
    cell_count: int
    leakage_nw: float
    cell_breakdown: Dict[str, int] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def scaled_area(self, factor: float) -> float:
        """Convenience for 'k instances of this block' area queries."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return self.area_um2 * factor


def synthesize(
    module: HardwareModule,
    library: Optional[CellLibrary] = None,
    min_clock_ns: float = 0.05,
) -> SynthesisReport:
    """Estimate area/delay/ADP for ``module`` under ``library``.

    Parameters
    ----------
    module:
        Structural description of the block.
    library:
        Standard-cell library; defaults to the shared 28 nm-like library.
    min_clock_ns:
        Lower bound on the clock period.  Serial SC designs have tiny
        combinational paths but still cannot be clocked arbitrarily fast;
        50 ps (20 GHz) is a generous bound that keeps serial baselines from
        being unrealistically flattered, matching the per-bit time implied by
        the paper's serial-design delays.
    """
    library = library or default_library()
    if min_clock_ns < 0:
        raise ValueError("min_clock_ns must be non-negative")

    area = module.area_um2(library)
    period = max(module.combinational_delay_ns(library), min_clock_ns)
    delay = module.cycles * period
    inventory = module.total_inventory()

    return SynthesisReport(
        name=module.name,
        area_um2=area,
        delay_ns=delay,
        adp=area * delay,
        clock_period_ns=period,
        cycles=module.cycles,
        cell_count=inventory.total_instances(),
        leakage_nw=inventory.leakage(library),
        cell_breakdown=inventory.as_dict(),
        metadata=dict(module.metadata),
    )
