"""Neural-network substrate: a numpy autograd engine, layers and a compact ViT.

PyTorch is not available in this environment, so the network side of ASCEND
(the compact ViT, LSQ quantisation, knowledge distillation and the two-stage
training pipeline of Section V) runs on this from-scratch substrate:

* :mod:`repro.nn.autograd` — reverse-mode automatic differentiation over
  numpy arrays (:class:`Tensor`),
* :mod:`repro.nn.functional` — differentiable ops (matmul, softmax, GELU,
  normalisation, attention helpers),
* :mod:`repro.nn.functional_math` — the pure-numpy reference math shared
  with the SC substrate,
* :mod:`repro.nn.layers` — Module/Linear/BatchNorm/LayerNorm/etc.,
* :mod:`repro.nn.attention` — multi-head self-attention with pluggable
  softmax (exact or iterative-approximate),
* :mod:`repro.nn.vit` — the compact vision transformer (7 layers, 4 heads),
* :mod:`repro.nn.quantization` — learned step size quantisation (LSQ) and
  the W/A/R precision schemes,
* :mod:`repro.nn.optim` — AdamW and SGD,
* :mod:`repro.nn.losses` — cross-entropy, KL-divergence and MSE losses,
* :mod:`repro.nn.serialization` — parameter state dicts save/load.
"""

from repro.nn.autograd import Tensor, no_grad, parameter
from repro.nn.layers import (
    BatchNorm,
    Dropout,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.vit import CompactVisionTransformer, ModelTrace, ViTConfig, build_bn_vit, build_vanilla_vit
from repro.nn.quantization import (
    LsqQuantizer,
    PrecisionScheme,
    PROGRESSIVE_SCHEDULE,
    QuantizedLinear,
    ResidualQuantizer,
    apply_precision_scheme,
)
from repro.nn.optim import AdamW, CosineSchedule, SGD
from repro.nn.losses import accuracy, cross_entropy, distillation_loss, kl_divergence_with_logits, mse_loss
from repro.nn.serialization import load_model, load_state_dict, save_model, save_state_dict

__all__ = [
    "Tensor",
    "no_grad",
    "parameter",
    "Module",
    "Linear",
    "LayerNorm",
    "BatchNorm",
    "Dropout",
    "GELU",
    "ReLU",
    "Identity",
    "Sequential",
    "MultiHeadSelfAttention",
    "CompactVisionTransformer",
    "ViTConfig",
    "ModelTrace",
    "build_vanilla_vit",
    "build_bn_vit",
    "LsqQuantizer",
    "PrecisionScheme",
    "PROGRESSIVE_SCHEDULE",
    "QuantizedLinear",
    "ResidualQuantizer",
    "apply_precision_scheme",
    "AdamW",
    "SGD",
    "CosineSchedule",
    "accuracy",
    "cross_entropy",
    "distillation_loss",
    "kl_divergence_with_logits",
    "mse_loss",
    "save_model",
    "load_model",
    "save_state_dict",
    "load_state_dict",
]
