"""Multi-head self-attention with a pluggable softmax implementation.

The attention block is where ASCEND's two network-level changes meet:

* the softmax over attention scores can be the exact one or the iterative
  approximation of Algorithm 1 (selected per-model, so the same weights can
  be evaluated/fine-tuned under either),
* the Q/K/V and output projections are plain :class:`~repro.nn.layers.Linear`
  layers here and are swapped for LSQ-quantised versions by the precision
  scheme machinery in :mod:`repro.nn.quantization`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.autograd import Tensor
from repro.nn.layers import Dropout, Linear, Module
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_choices, check_positive_int


@dataclass
class AttentionTrace:
    """Intermediate values captured during one attention forward pass."""

    logits: np.ndarray  # pre-softmax scores, shape (batch, heads, tokens, tokens)
    weights: np.ndarray  # post-softmax attention weights


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention (Fig. 1 of the paper, MSA block)."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        dropout: float = 0.0,
        softmax_mode: str = "exact",
        softmax_iterations: int = 3,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        check_positive_int(embed_dim, "embed_dim")
        check_positive_int(num_heads, "num_heads")
        check_in_choices(softmax_mode, ("exact", "iterative"), "softmax_mode")
        check_positive_int(softmax_iterations, "softmax_iterations")
        if embed_dim % num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.softmax_mode = softmax_mode
        self.softmax_iterations = softmax_iterations
        rng = as_generator(seed)
        self.qkv = Linear(embed_dim, 3 * embed_dim, seed=rng)
        self.proj = Linear(embed_dim, embed_dim, seed=rng)
        self.attn_dropout = Dropout(dropout, seed=rng)
        self.proj_dropout = Dropout(dropout, seed=rng)
        self._last_trace: Optional[AttentionTrace] = None

    # -------------------------------------------------------------- softmax
    def set_softmax_mode(self, mode: str, iterations: Optional[int] = None) -> None:
        """Switch between the exact and the iterative approximate softmax."""
        check_in_choices(mode, ("exact", "iterative"), "mode")
        self.softmax_mode = mode
        if iterations is not None:
            check_positive_int(iterations, "iterations")
            self.softmax_iterations = iterations

    def _apply_softmax(self, scores: Tensor) -> Tensor:
        if self.softmax_mode == "exact":
            return F.softmax(scores, axis=-1)
        return F.iterative_softmax(scores, iterations=self.softmax_iterations, axis=-1)

    # -------------------------------------------------------------- forward
    def forward(self, x: Tensor, collect_trace: bool = False) -> Tensor:
        batch, tokens, dim = x.shape
        if dim != self.embed_dim:
            raise ValueError(f"expected embedding dim {self.embed_dim}, got {dim}")
        qkv = self.qkv(x)  # (batch, tokens, 3 * dim)
        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, batch, heads, tokens, head_dim)
        query, key, value = qkv[0], qkv[1], qkv[2]

        scores = F.scaled_dot_product_scores(query, key)
        weights = self._apply_softmax(scores)
        weights = self.attn_dropout(weights)
        if collect_trace:
            self._last_trace = AttentionTrace(
                logits=scores.data.copy(), weights=weights.data.copy()
            )
        else:
            self._last_trace = None

        context = weights @ value  # (batch, heads, tokens, head_dim)
        context = context.transpose(0, 2, 1, 3).reshape(batch, tokens, dim)
        return self.proj_dropout(self.proj(context))

    @property
    def last_trace(self) -> Optional[AttentionTrace]:
        """Trace of the most recent forward pass run with ``collect_trace=True``."""
        return self._last_trace
