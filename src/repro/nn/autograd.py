"""Reverse-mode automatic differentiation over numpy arrays.

PyTorch is not available offline, so the training side of the reproduction
(LSQ quantisation, knowledge distillation, progressive quantisation,
approximate-softmax-aware fine-tuning) runs on this small engine.  It
follows the familiar define-by-run design:

* a :class:`Tensor` wraps a numpy array, remembers the operation that
  produced it and the parent tensors,
* every differentiable operation records a backward closure that maps the
  output gradient to parent gradients,
* :meth:`Tensor.backward` topologically sorts the recorded graph and runs
  the closures in reverse order.

Only the operations the ViT/LSQ stack actually needs are implemented, but
each handles full numpy broadcasting so the layer code stays natural.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.special import erf as _erf

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference / statistics)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """True when operations currently record the autograd graph."""
    return _GRAD_ENABLED


_BATCH_INVARIANT_MATMUL = False


@contextlib.contextmanager
def batch_invariant_matmul():
    """Context manager making ``@`` results independent of batch shape.

    BLAS picks different kernels for different operand shapes (a ``(1, K)``
    row hits the gemv path, a ``(B, K)`` block hits gemm), and those kernels
    accumulate the ``K`` reduction in different orders — so the *same* logical
    row can round differently depending on how many rows ride along in the
    batch.  Inside this context, matmuls between stacked operands run through
    ``np.einsum``, whose per-element reduction order depends only on the
    contracted axis; splitting a batch into chunks of any size then produces
    bit-identical results.  The eval pipeline evaluates whole dataset splits
    under this mode so its cached accuracies never depend on ``batch_size``.
    """
    global _BATCH_INVARIANT_MATMUL
    previous = _BATCH_INVARIANT_MATMUL
    _BATCH_INVARIANT_MATMUL = True
    try:
        yield
    finally:
        _BATCH_INVARIANT_MATMUL = previous


def matmul_data(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` with the batch-invariant einsum path when the mode is on."""
    if _BATCH_INVARIANT_MATMUL and a.ndim >= 2 and b.ndim >= 2:
        return np.einsum("...ij,...jk->...ik", a, b)
    return a @ b


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self._parents = _parents if self.requires_grad or any(p.requires_grad for p in _parents) else ()
        self._backward = _backward

    # ------------------------------------------------------------ properties
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """The scalar value of a 0-d / single-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def __array__(self, dtype=None) -> np.ndarray:
        return self.data.astype(dtype) if dtype is not None else self.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # --------------------------------------------------------- graph plumbing
    @staticmethod
    def _coerce(other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _needs_graph(self, *others: "Tensor") -> bool:
        return _GRAD_ENABLED and (
            self.requires_grad or any(o.requires_grad for o in others)
        )

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = cls(data)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._from_op(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._from_op(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._from_op(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._from_op(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._from_op(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = matmul_data(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.expand_dims(grad, -1) * other.data
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.expand_dims(self.data, -1) * np.expand_dims(grad, -2)
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_other, other.data.shape))

        return self._from_op(data, (self, other), backward)

    # ------------------------------------------------------------ reductions
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._from_op(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        centred = self - self.mean(axis=axis, keepdims=True)
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad if keepdims else np.expand_dims(grad, axis)
            maxima = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == maxima).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * g)

        return self._from_op(data, (self,), backward)

    # ------------------------------------------------------- shape operations
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return self._from_op(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._from_op(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._from_op(data, (self,), backward)

    # ------------------------------------------------------------ elementwise
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return self._from_op(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._from_op(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return self._from_op(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return self._from_op(data, (self,), backward)

    def erf(self) -> "Tensor":
        data = _erf(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 2.0 / np.sqrt(np.pi) * np.exp(-self.data**2))

        return self._from_op(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return self._from_op(data, (self,), backward)

    def clamp(self, lo: float, hi: float) -> "Tensor":
        """Clamp with zero gradient outside the interval (hard clipping)."""
        data = np.clip(self.data, lo, hi)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inside = (self.data >= lo) & (self.data <= hi)
                self._accumulate(grad * inside)

        return self._from_op(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return self._from_op(data, (self,), backward)

    # --------------------------------------------------------------- helpers
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(index)])

        return Tensor._from_op(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            slices = np.moveaxis(grad, axis, 0)
            for tensor, piece in zip(tensors, slices):
                if tensor.requires_grad:
                    tensor._accumulate(piece)

        return Tensor._from_op(data, tuple(tensors), backward)

    @staticmethod
    def custom(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Escape hatch for custom primitives (used by the LSQ quantisers).

        ``backward`` receives the output gradient and must call
        ``parent._accumulate`` itself for every parent that requires grad.
        """
        return Tensor._from_op(np.asarray(data, dtype=np.float64), parents, backward)


def parameter(data: ArrayLike, name: Optional[str] = None) -> Tensor:
    """A trainable tensor (requires_grad=True)."""
    return Tensor(data, requires_grad=True, name=name)
