"""Differentiable functional operations built on the autograd Tensor.

Everything the compact ViT needs: GELU (exact, via erf), numerically stable
softmax / log-softmax, normalisation helpers, dropout and the differentiable
iterative approximate softmax used by the circuit-aware fine-tuning stage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.autograd import Tensor
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

_SQRT2 = float(np.sqrt(2.0))


def gelu(x: Tensor) -> Tensor:
    """Exact GELU: ``x * 0.5 * (1 + erf(x / sqrt(2)))``."""
    return x * ((x * (1.0 / _SQRT2)).erf() + 1.0) * 0.5


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def iterative_softmax(x: Tensor, iterations: int, axis: int = -1) -> Tensor:
    """Differentiable iterative approximate softmax (Algorithm 1).

    Built from plain tensor operations, so the gradient of the *approximate*
    recurrence flows to the logits — the property the approximate-softmax-
    aware fine-tuning stage of Section V relies on.
    """
    check_positive_int(iterations, "iterations")
    if axis != -1 and axis != x.ndim - 1:
        x = x.swapaxes(axis, -1)
    m = x.shape[-1]
    y = Tensor(np.full(x.shape, 1.0 / m))
    for _ in range(iterations):
        z = x * y
        total = z.sum(axis=-1, keepdims=True)
        y = y + (z - y * total) * (1.0 / iterations)
    if axis != -1 and axis != x.ndim - 1:
        y = y.swapaxes(axis, -1)
    return y


def layer_norm(x: Tensor, weight: Optional[Tensor] = None, bias: Optional[Tensor] = None, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis with optional affine parameters."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalised = (x - mean) / (var + eps).sqrt()
    if weight is not None:
        normalised = normalised * weight
    if bias is not None:
        normalised = normalised + bias
    return normalised


def dropout(x: Tensor, rate: float, training: bool, seed: SeedLike = None) -> Tensor:
    """Inverted dropout; identity when not training or rate is zero."""
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must lie in [0, 1)")
    if not training or rate == 0.0:
        return x
    rng = as_generator(seed)
    mask = (rng.random(x.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (weight stored as (out, in))."""
    out = x @ weight.swapaxes(-1, -2)
    if bias is not None:
        out = out + bias
    return out


def scaled_dot_product_scores(query: Tensor, key: Tensor, scale: Optional[float] = None) -> Tensor:
    """Attention logits ``Q K^T / sqrt(d)`` (before softmax)."""
    d = query.shape[-1]
    if scale is None:
        scale = 1.0 / float(np.sqrt(d))
    return (query @ key.swapaxes(-1, -2)) * scale


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels (plain numpy; labels carry no gradient)."""
    labels = np.asarray(labels, dtype=int)
    check_positive_int(num_classes, "num_classes")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for the given number of classes")
    encoded = np.zeros(labels.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(encoded, labels[..., None], 1.0, axis=-1)
    return encoded


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function.

    Shared by the test suite to validate every autograd primitive; kept in
    the library so downstream users extending the engine can reuse it.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for idx in range(flat.size):
        original = flat[idx]
        flat[idx] = original + eps
        upper = fn(x)
        flat[idx] = original - eps
        lower = fn(x)
        flat[idx] = original
        grad_flat[idx] = (upper - lower) / (2 * eps)
    return grad
