"""Pure-numpy reference math used across the whole library.

These are the *exact* functions the SC circuits approximate (GELU, softmax,
the iterative softmax recurrence) plus small helpers.  They are kept free of
any autograd machinery so the SC substrate can import them without dragging
in the network stack.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf


def gelu_exact(x: np.ndarray) -> np.ndarray:
    """Exact Gaussian Error Linear Unit: ``x * Phi(x)``."""
    x = np.asarray(x, dtype=float)
    return 0.5 * x * (1.0 + erf(x / np.sqrt(2.0)))


def gelu_tanh_approximation(x: np.ndarray) -> np.ndarray:
    """The tanh-based GELU approximation used by many accelerators."""
    x = np.asarray(x, dtype=float)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def gelu_derivative(x: np.ndarray) -> np.ndarray:
    """Analytic derivative of the exact GELU."""
    x = np.asarray(x, dtype=float)
    phi = np.exp(-0.5 * x**2) / np.sqrt(2.0 * np.pi)
    cdf = 0.5 * (1.0 + erf(x / np.sqrt(2.0)))
    return cdf + x * phi


def softmax_exact(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=float)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax_exact(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=float)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def sigmoid_exact(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def iterative_softmax_reference(x: np.ndarray, iterations: int, axis: int = -1) -> np.ndarray:
    """Floating-point reference of Algorithm 1 (iterative approximate softmax).

    This is the mathematical recurrence with no SC quantisation:

    .. math::
        y^0_i = 1/m, \\qquad
        z_i = x_i\\,y^{j-1}_i, \\qquad
        y^j_i = y^{j-1}_i + [z_i - y^{j-1}_i\\,\\mathrm{sum}(z)] / k

    The SC circuit (:mod:`repro.core.softmax_circuit`) adds thermometer
    quantisation and sub-sampling on top of exactly this recurrence, and the
    approximate-softmax-aware fine-tuning stage trains the ViT against this
    reference.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    x = np.asarray(x, dtype=float)
    x = np.moveaxis(x, axis, -1)
    m = x.shape[-1]
    y = np.full_like(x, 1.0 / m)
    for _ in range(iterations):
        z = x * y
        total = z.sum(axis=-1, keepdims=True)
        y = y + (z - y * total) / iterations
    return np.moveaxis(y, -1, axis)


def layer_norm_exact(x: np.ndarray, eps: float = 1e-5, axis: int = -1) -> np.ndarray:
    """Layer normalisation without affine parameters."""
    x = np.asarray(x, dtype=float)
    mean = x.mean(axis=axis, keepdims=True)
    var = x.var(axis=axis, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)
