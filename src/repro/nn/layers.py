"""Neural-network layers (Module system) for the compact ViT.

A small PyTorch-like module system: modules own parameters and submodules,
expose ``parameters()`` / ``named_parameters()`` / ``state_dict()`` and a
train/eval switch.  Only the layers the ASCEND pipeline needs are provided:
Linear, LayerNorm, BatchNorm (the LN -> BN substitution of Section V),
Dropout, GELU, Identity and Sequential.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.autograd import Tensor, no_grad, parameter
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ----------------------------------------------------------- registration
    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        """Register a trainable tensor under ``name`` and return it."""
        if not isinstance(tensor, Tensor):
            raise TypeError("parameters must be Tensors")
        tensor.requires_grad = True
        self._parameters[name] = tensor
        return tensor

    def register_buffer(self, name: str, value: np.ndarray) -> np.ndarray:
        """Register a non-trainable array (e.g. BN running statistics)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        return self._buffers[name]

    def add_module(self, name: str, module: "Module") -> "Module":
        """Register a child module under ``name`` and return it."""
        if not isinstance(module, Module):
            raise TypeError("child must be a Module")
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module) and name not in ("_modules",):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -------------------------------------------------------------- traversal
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Tensor]:
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------- train/eval
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ----------------------------------------------------------- state dicts
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        state.update({f"buffer::{name}": buf.copy() for name, buf in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = []
        for name, param in own_params.items():
            if name in state:
                if param.data.shape != state[name].shape:
                    raise ValueError(f"shape mismatch for parameter {name!r}")
                param.data[...] = state[name]
            else:
                missing.append(name)
        for name, buf in own_buffers.items():
            key = f"buffer::{name}"
            if key in state:
                buf[...] = state[key]
            elif strict:
                missing.append(key)
        if strict and missing:
            raise KeyError(f"missing entries in state dict: {missing}")

    # ----------------------------------------------------------------- call
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Identity(Module):
    """Pass-through layer."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with truncated-normal initialisation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: SeedLike = None) -> None:
        super().__init__()
        check_positive_int(in_features, "in_features")
        check_positive_int(out_features, "out_features")
        self.in_features = in_features
        self.out_features = out_features
        rng = as_generator(seed)
        std = float(np.sqrt(2.0 / (in_features + out_features)))
        weight = rng.normal(0.0, std, size=(out_features, in_features))
        self.weight = self.register_parameter("weight", parameter(weight))
        if bias:
            self.bias: Optional[Tensor] = self.register_parameter("bias", parameter(np.zeros(out_features)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class GELU(Module):
    """Exact GELU activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Dropout(Module):
    """Inverted dropout (active only in training mode)."""

    def __init__(self, rate: float = 0.0, seed: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must lie in [0, 1)")
        self.rate = rate
        self._rng = as_generator(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.training, seed=self._rng)


class LayerNorm(Module):
    """Layer normalisation with learnable affine parameters."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        check_positive_int(normalized_shape, "normalized_shape")
        self.eps = eps
        self.weight = self.register_parameter("weight", parameter(np.ones(normalized_shape)))
        self.bias = self.register_parameter("bias", parameter(np.zeros(normalized_shape)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class BatchNorm(Module):
    """Batch normalisation over all axes except the last (feature) axis.

    This is the SC-friendly replacement for LayerNorm (Section V): at
    inference time the normalisation folds into a per-feature scale and
    offset, which the accelerator implements with cheap binary units instead
    of computing per-token statistics on bitstreams.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        check_positive_int(num_features, "num_features")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must lie in (0, 1]")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = self.register_parameter("weight", parameter(np.ones(num_features)))
        self.bias = self.register_parameter("bias", parameter(np.zeros(num_features)))
        self.running_mean = self.register_buffer("running_mean", np.zeros(num_features))
        self.running_var = self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"expected last axis of size {self.num_features}, got {x.shape[-1]}"
            )
        if self.training:
            axes = tuple(range(x.ndim - 1))
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            with no_grad():
                self.running_mean *= 1.0 - self.momentum
                self.running_mean += self.momentum * mean.data.reshape(-1)
                self.running_var *= 1.0 - self.momentum
                self.running_var += self.momentum * var.data.reshape(-1)
        else:
            mean = Tensor(self.running_mean)
            var = Tensor(self.running_var)
        normalised = (x - mean) / (var + self.eps).sqrt()
        return normalised * self.weight + self.bias

    def folded_scale_offset(self) -> Tuple[np.ndarray, np.ndarray]:
        """Inference-time per-feature scale and offset (what the hardware uses)."""
        scale = self.weight.data / np.sqrt(self.running_var + self.eps)
        offset = self.bias.data - scale * self.running_mean
        return scale, offset


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for idx, module in enumerate(modules):
            self.add_module(str(idx), module)
            self._ordered.append(module)

    def __iter__(self):
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x
