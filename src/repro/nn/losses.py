"""Loss functions: cross-entropy, KL-divergence and MSE.

The knowledge-distillation objective of Section V combines a KL term on the
teacher/student logits with an MSE term on per-layer features:

.. math::
    \\mathcal{L} = \\ell_{KL}(Z_s, Z_t) + \\beta \\cdot \\frac{1}{M}
    \\sum_{i=1}^{M} \\ell_{MSE}(S_i, T_i)

with ``beta = 2`` in the paper; :func:`distillation_loss` assembles exactly
that (the feature term lives in :mod:`repro.training.distillation`, which
also handles collecting the per-layer outputs).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.autograd import Tensor


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits and integer class labels."""
    labels = np.asarray(labels, dtype=int)
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, classes)")
    if labels.shape != (logits.shape[0],):
        raise ValueError("labels must be a 1-D array matching the batch size")
    log_probs = F.log_softmax(logits, axis=-1)
    targets = Tensor(F.one_hot(labels, logits.shape[-1]))
    per_sample = -(log_probs * targets).sum(axis=-1)
    return per_sample.mean()


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in percent (plain numpy, no gradients)."""
    logits = np.asarray(logits)
    labels = np.asarray(labels, dtype=int)
    if logits.shape[0] != labels.shape[0]:
        raise ValueError("logits and labels must agree on the batch size")
    predictions = np.argmax(logits, axis=-1)
    return float(100.0 * np.mean(predictions == labels))


def kl_divergence_with_logits(student_logits: Tensor, teacher_logits: np.ndarray, temperature: float = 1.0) -> Tensor:
    """KL(teacher || student) from raw logits, averaged over the batch.

    The teacher side carries no gradient (it is a frozen model in the KD
    pipeline), so it is accepted as a plain array.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    teacher_logits = np.asarray(teacher_logits, dtype=float)
    if teacher_logits.shape != student_logits.shape:
        raise ValueError("teacher and student logits must have the same shape")
    from repro.nn.functional_math import log_softmax_exact

    teacher_log_probs = log_softmax_exact(teacher_logits / temperature, axis=-1)
    teacher_probs = np.exp(teacher_log_probs)
    student_log_probs = F.log_softmax(student_logits * (1.0 / temperature), axis=-1)
    per_sample = (Tensor(teacher_probs) * (Tensor(teacher_log_probs) - student_log_probs)).sum(axis=-1)
    return per_sample.mean() * (temperature**2)


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant (no-grad) target."""
    target = np.asarray(target, dtype=float)
    if target.shape != prediction.shape:
        raise ValueError("prediction and target must have the same shape")
    diff = prediction - Tensor(target)
    return (diff * diff).mean()


def distillation_loss(
    student_logits: Tensor,
    teacher_logits: np.ndarray,
    labels: Optional[np.ndarray] = None,
    hard_label_weight: float = 0.0,
    temperature: float = 1.0,
) -> Tensor:
    """Logit-level part of the KD objective, optionally mixed with CE.

    The paper's first-stage objective is pure KD (KL + feature MSE); the
    optional hard-label term is exposed for the ablation benches.
    """
    loss = kl_divergence_with_logits(student_logits, teacher_logits, temperature=temperature)
    if hard_label_weight > 0:
        if labels is None:
            raise ValueError("labels are required when hard_label_weight > 0")
        loss = loss + hard_label_weight * cross_entropy(student_logits, labels)
    return loss
