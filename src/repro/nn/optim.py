"""Optimizers: AdamW (used by the paper's training recipe) and SGD.

The paper trains with AdamW (momentum 0.9) and a staged learning-rate
schedule; both optimizers operate directly on the ``.data`` of the
registered parameters and read the gradients accumulated by autograd.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.autograd import Tensor


class Optimizer:
    """Base class holding the parameter list and the shared bookkeeping."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.setdefault(id(param), np.zeros_like(param.data))
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class AdamW(Optimizer):
    """AdamW with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must lie in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            m = self._m.setdefault(id(param), np.zeros_like(param.data))
            v = self._v.setdefault(id(param), np.zeros_like(param.data))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update


class CosineSchedule:
    """Cosine learning-rate decay with optional linear warm-up."""

    def __init__(self, optimizer: Optimizer, base_lr: float, total_steps: int, warmup_steps: int = 0, min_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if warmup_steps < 0 or warmup_steps > total_steps:
            raise ValueError("warmup_steps must lie in [0, total_steps]")
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr
        self._step_count = 0

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
        progress = min(max(progress, 0.0), 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + np.cos(np.pi * progress))

    def step(self) -> float:
        lr = self.lr_at(self._step_count)
        self.optimizer.set_lr(max(lr, 1e-12))
        self._step_count += 1
        return lr
