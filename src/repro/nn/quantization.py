"""Learned Step Size Quantization (LSQ) and the W/A/R precision schemes.

The paper quantises weights and activations to a 2-bit BSL and the residual
stream to a 16-bit BSL ("W2-A2-R16", following Hu et al. DATE'23) using LSQ
(Esser et al., ICLR'20).  An L-bit thermometer bitstream represents ``L + 1``
levels, so a BSL of ``L`` maps to the symmetric integer grid
``[-L/2, L/2]`` — ternary for L = 2, 17 levels for L = 16.

:class:`LsqQuantizer` implements the LSQ fake-quantisation with the learned
step size and its gradient; :class:`QuantizedLinear` wraps a linear layer
with weight + input quantisers; :class:`PrecisionScheme` describes a full
W/A/R assignment and knows how to apply itself to a model built with the
``QuantizedLinear`` layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.autograd import Tensor, parameter
from repro.nn.layers import Linear, Module
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int


def bsl_to_levels(bsl: int) -> int:
    """Number of representable levels of an ``bsl``-bit thermometer stream."""
    check_positive_int(bsl, "bsl")
    return bsl + 1


@dataclass(frozen=True)
class PrecisionScheme:
    """A W/A/R bitstream-length assignment, e.g. W2-A2-R16.

    ``None`` for a field means full precision (no quantiser inserted); the
    progressive-quantisation pipeline of Section V walks through
    FP -> W16-A16-R16 -> W16-A2-R16 -> W2-A2-R16 by changing these fields.
    """

    weight_bsl: Optional[int] = None
    activation_bsl: Optional[int] = None
    residual_bsl: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("weight_bsl", "activation_bsl", "residual_bsl"):
            value = getattr(self, name)
            if value is not None:
                check_positive_int(value, name)
                if value % 2 != 0:
                    raise ValueError(f"{name} must be even (symmetric thermometer grid)")

    @property
    def is_full_precision(self) -> bool:
        return self.weight_bsl is None and self.activation_bsl is None and self.residual_bsl is None

    def describe(self) -> str:
        """The paper's naming convention, e.g. ``"W2-A2-R16"`` or ``"FP"``."""
        if self.is_full_precision:
            return "FP"

        def fmt(prefix: str, value: Optional[int]) -> str:
            return f"{prefix}{value}" if value is not None else f"{prefix}fp"

        return "-".join(
            [fmt("W", self.weight_bsl), fmt("A", self.activation_bsl), fmt("R", self.residual_bsl)]
        )

    @classmethod
    def parse(cls, text: str) -> "PrecisionScheme":
        """Parse strings like ``"W2-A2-R16"`` / ``"FP"`` back into a scheme."""
        text = text.strip().upper()
        if text in ("FP", "FP32", "FULL"):
            return cls()
        parts = dict()
        for token in text.split("-"):
            if not token:
                continue
            prefix, value = token[0], token[1:]
            if prefix not in ("W", "A", "R"):
                raise ValueError(f"unknown precision token {token!r}")
            parts[prefix] = None if value in ("FP", "") else int(value)
        return cls(
            weight_bsl=parts.get("W"),
            activation_bsl=parts.get("A"),
            residual_bsl=parts.get("R"),
        )


#: The progressive-quantisation ladder of Fig. 6.
PROGRESSIVE_SCHEDULE = (
    PrecisionScheme(),  # FP
    PrecisionScheme(weight_bsl=16, activation_bsl=16, residual_bsl=16),
    PrecisionScheme(weight_bsl=16, activation_bsl=2, residual_bsl=16),
    PrecisionScheme(weight_bsl=2, activation_bsl=2, residual_bsl=16),
)


class LsqQuantizer(Module):
    """LSQ fake quantiser with a learnable step size.

    Forward: ``q = clip(round(v / s), qn, qp) * s``.
    Backward: straight-through estimator for ``v`` inside the clipping range,
    and the LSQ gradient for the step size ``s`` (Esser et al., eq. 3),
    scaled by ``1 / sqrt(numel * qp)``.
    """

    def __init__(self, bsl: int, per_tensor_init: float = 1.0) -> None:
        super().__init__()
        check_positive_int(bsl, "bsl")
        if bsl % 2 != 0:
            raise ValueError("bsl must be even (symmetric grid)")
        self.bsl = bsl
        self.qn = -(bsl // 2)
        self.qp = bsl // 2
        self.step = self.register_parameter("step", parameter(np.array(per_tensor_init)))
        self._initialised = False

    def initialise_from(self, values: np.ndarray) -> None:
        """LSQ initialisation: ``s = 2 <|v|> / sqrt(qp)``."""
        values = np.asarray(values, dtype=float)
        mean_abs = float(np.mean(np.abs(values))) if values.size else 1.0
        init = 2.0 * mean_abs / np.sqrt(self.qp) if mean_abs > 0 else 1.0
        self.step.data[...] = max(init, 1e-8)
        self._initialised = True

    @property
    def initialised(self) -> bool:
        return self._initialised

    def forward(self, x: Tensor) -> Tensor:
        if not self._initialised:
            self.initialise_from(x.data)
        step = self.step
        qn, qp = float(self.qn), float(self.qp)
        grad_scale = 1.0 / np.sqrt(max(x.size, 1) * qp)

        s = float(step.data)
        scaled = x.data / s
        clipped = np.clip(scaled, qn, qp)
        rounded = np.round(clipped)
        out_data = rounded * s

        below = scaled < qn
        above = scaled > qp
        inside = ~(below | above)

        def backward(grad: np.ndarray) -> None:
            if x.requires_grad:
                x._accumulate(grad * inside)
            if step.requires_grad:
                # d(out)/d(s): qn/qp outside the range, (round(v/s) - v/s) inside.
                ds = np.where(below, qn, np.where(above, qp, rounded - scaled))
                step._accumulate(np.sum(grad * ds) * grad_scale)

        return Tensor.custom(out_data, (x, step), backward)

    def quantize_levels(self, values: np.ndarray) -> np.ndarray:
        """Integer levels in ``[qn, qp]`` (what the SC hardware actually stores)."""
        s = float(self.step.data)
        return np.clip(np.round(np.asarray(values, dtype=float) / s), self.qn, self.qp).astype(np.int64)

    def extra_repr(self) -> str:  # pragma: no cover - debugging aid
        return f"bsl={self.bsl}, step={float(self.step.data):.4g}"


class QuantizedLinear(Module):
    """A linear layer with optional LSQ quantisers on weights and inputs.

    Quantisers are created lazily by :meth:`configure`; with no quantisers
    configured the layer behaves exactly like :class:`~repro.nn.layers.Linear`,
    which is what the progressive pipeline relies on when it starts from the
    full-precision model.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: SeedLike = None) -> None:
        super().__init__()
        self.inner = Linear(in_features, out_features, bias=bias, seed=seed)
        self.weight_quantizer: Optional[LsqQuantizer] = None
        self.input_quantizer: Optional[LsqQuantizer] = None

    @property
    def weight(self) -> Tensor:
        return self.inner.weight

    @property
    def bias(self) -> Optional[Tensor]:
        return self.inner.bias

    def configure(self, weight_bsl: Optional[int], activation_bsl: Optional[int]) -> None:
        """Attach/detach quantisers according to the precision scheme."""
        if weight_bsl is None:
            self.weight_quantizer = None
            self._modules.pop("weight_quantizer", None)
        else:
            quantizer = LsqQuantizer(weight_bsl)
            quantizer.initialise_from(self.inner.weight.data)
            self.weight_quantizer = quantizer
        if activation_bsl is None:
            self.input_quantizer = None
            self._modules.pop("input_quantizer", None)
        else:
            self.input_quantizer = LsqQuantizer(activation_bsl)

    def forward(self, x: Tensor) -> Tensor:
        if self.input_quantizer is not None:
            x = self.input_quantizer(x)
        weight = self.inner.weight
        if self.weight_quantizer is not None:
            weight = self.weight_quantizer(weight)
        return F.linear(x, weight, self.inner.bias)


class ResidualQuantizer(Module):
    """LSQ quantiser applied to the residual stream (the R in W-A-R).

    A no-op until configured with a BSL; the encoder block applies it right
    after each residual addition, mirroring where the accelerator's 16-bit
    residual bitstreams live.
    """

    def __init__(self) -> None:
        super().__init__()
        self.quantizer: Optional[LsqQuantizer] = None

    def configure(self, residual_bsl: Optional[int]) -> None:
        if residual_bsl is None:
            self.quantizer = None
            self._modules.pop("quantizer", None)
        else:
            self.quantizer = LsqQuantizer(residual_bsl)

    def forward(self, x: Tensor) -> Tensor:
        if self.quantizer is None:
            return x
        return self.quantizer(x)


def apply_precision_scheme(model: Module, scheme: PrecisionScheme) -> None:
    """Walk ``model`` and configure every quantised layer for ``scheme``."""
    for module in model.modules():
        if isinstance(module, QuantizedLinear):
            module.configure(scheme.weight_bsl, scheme.activation_bsl)
        elif isinstance(module, ResidualQuantizer):
            module.configure(scheme.residual_bsl)
