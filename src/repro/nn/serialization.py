"""Saving and loading model parameters.

State dicts are plain ``{name: ndarray}`` mappings (see
:meth:`repro.nn.layers.Module.state_dict`), stored as compressed ``.npz``
files so checkpoints produced by the training pipeline can be re-used by the
benchmark harness and the examples without retraining.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.layers import Module


def save_state_dict(path: Union[str, Path], state: Dict[str, np.ndarray]) -> Path:
    """Write a state dict to ``path`` (``.npz`` appended when missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in state.items()})
    return path


def load_state_dict(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path) as data:
        return {name: data[name].copy() for name in data.files}


def save_model(path: Union[str, Path], model: Module) -> Path:
    """Persist a module's parameters and buffers."""
    return save_state_dict(path, model.state_dict())


def load_model(path: Union[str, Path], model: Module, strict: bool = True) -> Module:
    """Load parameters into an already-constructed module (shapes must match)."""
    model.load_state_dict(load_state_dict(path), strict=strict)
    return model
