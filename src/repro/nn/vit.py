"""Compact Vision Transformer (the network evaluated in the paper).

The paper's network-level experiments use a lightweight ViT with 7 layers
and 4 heads (following Hassani et al.'s compact transformers) on CIFAR-10 /
CIFAR-100.  This module provides a configurable compact ViT on the numpy
autograd substrate with the knobs ASCEND's co-design needs:

* **normalisation** — LayerNorm (the vanilla ViT) or BatchNorm (the
  SC-friendly substitution of Section V),
* **softmax** — exact or iterative-approximate (Algorithm 1), switchable on
  a trained model for the approximate-softmax-aware fine-tuning stage,
* **precision** — every projection is a :class:`QuantizedLinear` and every
  residual addition passes through a :class:`ResidualQuantizer`, so the
  W/A/R precision schemes of the progressive-quantisation pipeline can be
  applied to the same weights at any point,
* **tracing** — ``forward_with_trace`` captures pre-softmax attention logits
  and pre-GELU activations, the test vectors of the paper's circuit-error
  methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.autograd import Tensor, parameter
from repro.nn.layers import BatchNorm, Dropout, GELU, LayerNorm, Module
from repro.nn.quantization import PrecisionScheme, QuantizedLinear, ResidualQuantizer, apply_precision_scheme
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_choices, check_positive_int


@dataclass(frozen=True)
class ViTConfig:
    """Hyper-parameters of the compact ViT."""

    image_size: int = 16
    patch_size: int = 4
    in_channels: int = 3
    num_classes: int = 10
    embed_dim: int = 64
    num_layers: int = 7
    num_heads: int = 4
    mlp_ratio: float = 2.0
    dropout: float = 0.0
    norm: str = "ln"  # "ln" (vanilla) or "bn" (SC-friendly)
    softmax_mode: str = "exact"  # "exact" or "iterative"
    softmax_iterations: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.image_size, "image_size")
        check_positive_int(self.patch_size, "patch_size")
        check_positive_int(self.in_channels, "in_channels")
        check_positive_int(self.num_classes, "num_classes")
        check_positive_int(self.embed_dim, "embed_dim")
        check_positive_int(self.num_layers, "num_layers")
        check_positive_int(self.num_heads, "num_heads")
        check_in_choices(self.norm, ("ln", "bn"), "norm")
        check_in_choices(self.softmax_mode, ("exact", "iterative"), "softmax_mode")
        if self.image_size % self.patch_size != 0:
            raise ValueError("patch_size must divide image_size")
        if self.embed_dim % self.num_heads != 0:
            raise ValueError("num_heads must divide embed_dim")
        if self.mlp_ratio <= 0:
            raise ValueError("mlp_ratio must be positive")

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @property
    def num_tokens(self) -> int:
        """Patch tokens plus the class token."""
        return self.num_patches + 1

    @property
    def patch_dim(self) -> int:
        return self.patch_size * self.patch_size * self.in_channels

    @property
    def mlp_hidden_dim(self) -> int:
        return int(self.embed_dim * self.mlp_ratio)

    def with_updates(self, **kwargs) -> "ViTConfig":
        return replace(self, **kwargs)


@dataclass
class ModelTrace:
    """Intermediate values captured by ``forward_with_trace``."""

    logits: np.ndarray
    attention_logits: List[np.ndarray] = field(default_factory=list)
    gelu_inputs: List[np.ndarray] = field(default_factory=list)
    residuals: List[np.ndarray] = field(default_factory=list)


def _make_norm(kind: str, dim: int) -> Module:
    return LayerNorm(dim) if kind == "ln" else BatchNorm(dim)


class PatchEmbedding(Module):
    """Split the image into patches and project them to the embedding dim."""

    def __init__(self, config: ViTConfig, seed: SeedLike = None) -> None:
        super().__init__()
        self.config = config
        self.projection = QuantizedLinear(config.patch_dim, config.embed_dim, seed=seed)

    def forward(self, images: Tensor) -> Tensor:
        cfg = self.config
        batch = images.shape[0]
        expected = (batch, cfg.image_size, cfg.image_size, cfg.in_channels)
        if images.shape != expected:
            raise ValueError(f"expected images of shape {expected}, got {images.shape}")
        grid = cfg.image_size // cfg.patch_size
        patches = images.reshape(
            batch, grid, cfg.patch_size, grid, cfg.patch_size, cfg.in_channels
        )
        patches = patches.transpose(0, 1, 3, 2, 4, 5)
        patches = patches.reshape(batch, grid * grid, cfg.patch_dim)
        return self.projection(patches)


class MlpBlock(Module):
    """The transformer MLP: Linear -> GELU -> Linear, with pre-GELU tracing."""

    def __init__(self, embed_dim: int, hidden_dim: int, dropout: float = 0.0, seed: SeedLike = None) -> None:
        super().__init__()
        rng = as_generator(seed)
        self.fc1 = QuantizedLinear(embed_dim, hidden_dim, seed=rng)
        self.fc2 = QuantizedLinear(hidden_dim, embed_dim, seed=rng)
        self.activation = GELU()
        self.drop = Dropout(dropout, seed=rng)
        self._last_gelu_input: Optional[np.ndarray] = None

    def forward(self, x: Tensor, collect_trace: bool = False) -> Tensor:
        hidden = self.fc1(x)
        self._last_gelu_input = hidden.data.copy() if collect_trace else None
        hidden = self.activation(hidden)
        hidden = self.drop(hidden)
        return self.drop(self.fc2(hidden))

    @property
    def last_gelu_input(self) -> Optional[np.ndarray]:
        return self._last_gelu_input


class EncoderBlock(Module):
    """One transformer encoder block (Fig. 1): MSA + MLP with residuals."""

    def __init__(self, config: ViTConfig, seed: SeedLike = None) -> None:
        super().__init__()
        rng = as_generator(seed)
        self.norm1 = _make_norm(config.norm, config.embed_dim)
        self.attention = MultiHeadSelfAttention(
            config.embed_dim,
            config.num_heads,
            dropout=config.dropout,
            softmax_mode=config.softmax_mode,
            softmax_iterations=config.softmax_iterations,
            seed=rng,
        )
        self.norm2 = _make_norm(config.norm, config.embed_dim)
        self.mlp = MlpBlock(config.embed_dim, config.mlp_hidden_dim, dropout=config.dropout, seed=rng)
        self.residual1 = ResidualQuantizer()
        self.residual2 = ResidualQuantizer()
        # The attention projections are QuantizedLinear only through the
        # quantization machinery; swap the plain Linears for quantisable ones.
        self.attention.qkv = QuantizedLinear(config.embed_dim, 3 * config.embed_dim, seed=rng)
        self.attention.proj = QuantizedLinear(config.embed_dim, config.embed_dim, seed=rng)

    def forward(self, x: Tensor, collect_trace: bool = False) -> Tensor:
        attended = self.attention(self.norm1(x), collect_trace=collect_trace)
        x = self.residual1(x + attended)
        mlp_out = self.mlp(self.norm2(x), collect_trace=collect_trace)
        x = self.residual2(x + mlp_out)
        return x


class CompactVisionTransformer(Module):
    """The compact ViT used throughout the paper's network-level evaluation."""

    def __init__(self, config: ViTConfig) -> None:
        super().__init__()
        self.config = config
        rng = as_generator(config.seed)
        self.patch_embedding = PatchEmbedding(config, seed=rng)
        self.class_token = self.register_parameter(
            "class_token", parameter(rng.normal(0.0, 0.02, size=(1, 1, config.embed_dim)))
        )
        self.positional_embedding = self.register_parameter(
            "positional_embedding",
            parameter(rng.normal(0.0, 0.02, size=(1, config.num_tokens, config.embed_dim))),
        )
        self.dropout = Dropout(config.dropout, seed=rng)
        self.blocks: List[EncoderBlock] = []
        for idx in range(config.num_layers):
            block = EncoderBlock(config, seed=rng)
            self.add_module(f"block{idx}", block)
            self.blocks.append(block)
        self.final_norm = _make_norm(config.norm, config.embed_dim)
        self.head = QuantizedLinear(config.embed_dim, config.num_classes, seed=rng)

    # --------------------------------------------------------------- forward
    def _embed(self, images: Tensor) -> Tensor:
        tokens = self.patch_embedding(images)
        batch = tokens.shape[0]
        cls = Tensor(np.ones((batch, 1, 1))) * self.class_token
        tokens = Tensor.concatenate([cls, tokens], axis=1)
        tokens = tokens + self.positional_embedding
        return self.dropout(tokens)

    def forward(self, images: Tensor) -> Tensor:
        tokens = self._embed(images)
        for block in self.blocks:
            tokens = block(tokens)
        tokens = self.final_norm(tokens)
        class_embedding = tokens[:, 0, :]
        return self.head(class_embedding)

    def forward_with_trace(self, images: Tensor) -> ModelTrace:
        """Forward pass harvesting the circuit-evaluation test vectors."""
        tokens = self._embed(images)
        trace = ModelTrace(logits=np.empty(0))
        for block in self.blocks:
            tokens = block(tokens, collect_trace=True)
            if block.attention.last_trace is not None:
                trace.attention_logits.append(block.attention.last_trace.logits)
            if block.mlp.last_gelu_input is not None:
                trace.gelu_inputs.append(block.mlp.last_gelu_input)
            trace.residuals.append(tokens.data.copy())
        tokens = self.final_norm(tokens)
        logits = self.head(tokens[:, 0, :])
        trace.logits = logits.data.copy()
        return trace

    # ------------------------------------------------------------ co-design
    def set_softmax_mode(self, mode: str, iterations: Optional[int] = None) -> None:
        """Switch every attention block between exact / iterative softmax."""
        for block in self.blocks:
            block.attention.set_softmax_mode(mode, iterations)

    def apply_precision(self, scheme: PrecisionScheme) -> None:
        """Configure every quantised layer of the model for ``scheme``."""
        apply_precision_scheme(self, scheme)

    def layer_outputs(self, images: Tensor) -> List[Tensor]:
        """Per-block residual-stream outputs (used by the KD feature loss)."""
        tokens = self._embed(images)
        outputs: List[Tensor] = []
        for block in self.blocks:
            tokens = block(tokens)
            outputs.append(tokens)
        return outputs

    def predict(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions for a numpy batch (inference mode, no grad)."""
        from repro.nn.autograd import no_grad

        was_training = self.training
        self.eval()
        predictions = []
        with no_grad():
            for start in range(0, len(images), batch_size):
                chunk = Tensor(np.asarray(images[start : start + batch_size], dtype=float))
                logits = self.forward(chunk)
                predictions.append(np.argmax(logits.data, axis=-1))
        if was_training:
            self.train()
        return np.concatenate(predictions) if predictions else np.empty(0, dtype=int)


def build_vanilla_vit(config: Optional[ViTConfig] = None) -> CompactVisionTransformer:
    """The FP LN-ViT baseline (first row of Table V)."""
    config = config or ViTConfig()
    return CompactVisionTransformer(config.with_updates(norm="ln", softmax_mode="exact"))


def build_bn_vit(config: Optional[ViTConfig] = None) -> CompactVisionTransformer:
    """The SC-friendly BN-ViT (LayerNorm replaced by BatchNorm, Section V)."""
    config = config or ViTConfig()
    return CompactVisionTransformer(config.with_updates(norm="bn"))
