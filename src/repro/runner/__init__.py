"""Sweep orchestration: parallel execution, disk-backed caching, repro CLI.

The paper's headline experiments are embarrassingly parallel sweeps over
config grids; this package turns them from serial single-process loops into
shardable, resumable, cacheable runs:

* :mod:`repro.runner.runner` — :class:`ParallelSweepRunner`, a
  multiprocessing-backed executor with deterministic per-index seeding and
  grid-order result assembly,
* :mod:`repro.runner.cache` — :class:`ResultCache`, a content-addressed
  on-disk store keyed by config + code-version fingerprint (JSON payloads,
  NPZ sidecars for arrays),
* :mod:`repro.runner.tasks` — the per-experiment
  :class:`~repro.runner.runner.SweepTask` implementations shared by the
  ``benchmarks/`` scripts and the ``python -m repro`` CLI.

See ``docs/orchestration.md`` for the design.
"""

from repro.runner.cache import (
    CachedResult,
    ResultCache,
    array_digest,
    cache_key,
    canonical_json,
    code_fingerprint,
    default_code_version,
)
from repro.runner.runner import ParallelSweepRunner, RunStats, SweepTask, derive_seed

__all__ = [
    "CachedResult",
    "ResultCache",
    "array_digest",
    "cache_key",
    "canonical_json",
    "code_fingerprint",
    "default_code_version",
    "ParallelSweepRunner",
    "RunStats",
    "SweepTask",
    "derive_seed",
]
