"""Content-addressed on-disk result cache for sweep orchestration.

The paper's headline experiments are embarrassingly parallel sweeps over
config grids (2916 softmax design points per input BSL, the GELU BSL/degree
sweep, the accelerator study).  Re-running a sweep after an interruption —
or re-running the same sweep from a different entry point (bench script,
CLI, notebook) — should not re-evaluate circuits whose results are already
known.  This module provides that reuse:

* every result is stored under a SHA-256 digest of its *cache key* — the
  canonical JSON of ``{task, config, version, code}`` where ``code`` is a
  fingerprint of the source files the evaluation depends on, so editing the
  circuit models automatically invalidates stale entries,
* payloads are JSON files (exact float round-trip via ``repr``); results
  that carry numpy arrays store them in an ``.npz`` sidecar next to the
  JSON, and
* writes go through a temp file + :func:`os.replace` so a crash mid-store
  never leaves a truncated entry — an interrupted sweep resumes from every
  fully stored result and recomputes only the rest.

The cache layout is ``<root>/<digest[:2]>/<digest>.json`` (two-level fanout
keeps directories small for full-grid sweeps).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from types import ModuleType
from typing import Any, Dict, Iterator, Mapping, Optional, Union

import numpy as np

__all__ = [
    "CachedResult",
    "ResultCache",
    "array_digest",
    "cache_key",
    "canonical_json",
    "code_fingerprint",
    "default_code_version",
]


def _plain(obj: Any) -> Any:
    """Convert numpy scalars/arrays and mappings into plain JSON-able types."""
    if isinstance(obj, Mapping):
        return {str(k): _plain(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_plain(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    return obj


def canonical_json(obj: Any) -> str:
    """Deterministic JSON used for cache keys.

    Sorted keys and no whitespace make the serialisation canonical; floats
    serialise via ``repr`` which round-trips exactly, so two configs hash
    equal iff their values are bit-identical.
    """
    return json.dumps(_plain(obj), sort_keys=True, separators=(",", ":"))


def array_digest(*arrays: np.ndarray) -> str:
    """Short content digest of one or more arrays (dtype + shape + bytes)."""
    h = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        h.update(str(array.dtype).encode())
        h.update(str(array.shape).encode())
        h.update(array.tobytes())
    return h.hexdigest()[:16]


def _module_files(module: ModuleType) -> Iterator[Path]:
    """Yield the source files a module (or package, recursively) consists of."""
    path = getattr(module, "__file__", None)
    if path is None:  # namespace package or builtin: nothing hashable
        return
    path = Path(path)
    if path.name == "__init__.py":
        yield from sorted(path.parent.rglob("*.py"))
    else:
        yield path


def code_fingerprint(*modules: ModuleType) -> str:
    """Fingerprint of the source files behind ``modules`` (packages recurse).

    Used as the ``code`` component of cache keys: any edit to the files a
    sweep's evaluation depends on changes the fingerprint and therefore
    invalidates every cached result computed with the old code.
    """
    h = hashlib.sha256()
    for module in modules:
        for file in _module_files(module):
            h.update(file.name.encode())
            h.update(file.read_bytes())
    return h.hexdigest()[:16]


def cache_key(task_name: str, config_key: Any, version: str = "", code_version: str = "") -> str:
    """SHA-256 digest of one ``(task, config, version, code)`` identity.

    The content-addressing scheme shared by every cache in the repo:
    :class:`ResultCache` keys sweep results with it, and
    :mod:`repro.serve` keys per-request predictions with it, so "same
    inputs, same code" means "same digest" everywhere.
    """
    material = canonical_json(
        {
            "task": task_name,
            "config": config_key,
            "version": version,
            "code": code_version,
        }
    )
    return hashlib.sha256(material.encode()).hexdigest()


def default_code_version() -> str:
    """Fingerprint of the whole ``repro`` package (conservative: any change
    to the library invalidates the cache, which is always safe)."""
    import repro

    return code_fingerprint(repro)


@dataclass
class CachedResult:
    """One cache entry: a JSON payload plus optional numpy arrays."""

    payload: Any
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)


class ResultCache:
    """Content-addressed result store on disk.

    Parameters
    ----------
    root:
        Cache directory (created on first store).
    code_version:
        Version token mixed into every key; defaults to a fingerprint of
        the ``repro`` package source.  Pass an explicit string to pin or
        deliberately segregate cache generations.
    """

    def __init__(self, root: Union[str, Path], code_version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.code_version = default_code_version() if code_version is None else str(code_version)
        # Plain-int hit/miss/store accounting for run summaries and /metrics;
        # observational only (never part of any key or payload).
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------ keys
    def key(self, task_name: str, config_key: Any, version: str = "") -> str:
        """SHA-256 digest addressing one (task, config) result."""
        return cache_key(task_name, config_key, version, self.code_version)

    def _json_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def _npz_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.npz"

    # -------------------------------------------------------------- load/store
    def load(self, digest: str) -> Optional[CachedResult]:
        """Return the stored result for ``digest``, or ``None`` on a miss.

        Unreadable/truncated entries (e.g. from a crash on a filesystem
        without atomic rename) count as misses rather than errors, so a
        damaged cache degrades to recomputation instead of failing a sweep.
        """
        path = self._json_path(digest)
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(document, dict) or "payload" not in document:
            self.misses += 1
            return None  # foreign or stale-format file: treat as a miss
        arrays: Dict[str, np.ndarray] = {}
        if document.get("has_arrays"):
            try:
                with np.load(self._npz_path(digest)) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            except (OSError, ValueError):
                self.misses += 1
                return None
        self.hits += 1
        return CachedResult(payload=document["payload"], arrays=arrays)

    def store(self, digest: str, payload: Any, arrays: Optional[Mapping[str, np.ndarray]] = None) -> None:
        """Persist ``payload`` (JSON) and optional ``arrays`` (NPZ) atomically."""
        json_path = self._json_path(digest)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        if arrays:
            npz_path = self._npz_path(digest)
            fd, tmp = tempfile.mkstemp(dir=str(npz_path.parent), suffix=".npz.tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.savez(handle, **{str(k): np.asarray(v) for k, v in arrays.items()})
                os.replace(tmp, npz_path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        document = {"payload": _plain(payload), "has_arrays": bool(arrays)}
        fd, tmp = tempfile.mkstemp(dir=str(json_path.parent), suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle)
            os.replace(tmp, json_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stores += 1

    def counters(self) -> Dict[str, int]:
        """Hit/miss/store totals since construction (JSON-able)."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    # ------------------------------------------------------------------ misc
    def __contains__(self, digest: str) -> bool:
        return self._json_path(digest).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of JSON entries removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*"):
            if path.suffix == ".json":
                removed += 1
            path.unlink()
        return removed
