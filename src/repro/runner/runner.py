"""Multiprocessing sweep executor with deterministic sharding and caching.

:class:`ParallelSweepRunner` evaluates an enumerable grid of configurations
through a :class:`SweepTask` and returns results **in grid order**, however
many workers evaluate them.  Three properties make a parallel run
indistinguishable from the serial one:

* **Deterministic seeding** — each grid index gets a seed derived from
  ``(base_seed, index)`` by :func:`derive_seed`, independent of how indices
  are sharded across workers, so stochastic evaluations reproduce exactly.
* **Canonical result round-trip** — every result passes through
  ``task.encode``/``task.decode`` whether it was computed in-process, in a
  worker, or loaded from the cache, so all three paths yield bit-identical
  objects (tasks must make the round-trip lossless).
* **Order restoration** — workers return ``(index, payload)`` pairs and the
  runner scatters them back into grid positions; completion order never
  leaks into the output.

When a :class:`~repro.runner.cache.ResultCache` is attached, cached configs
are served without evaluation and fresh results are stored as soon as they
arrive, so an interrupted sweep resumes from where it crashed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

import multiprocessing as mp

__all__ = ["ParallelSweepRunner", "RunStats", "SweepTask", "derive_seed"]


def derive_seed(base_seed: int, index: int) -> int:
    """Stable per-grid-index seed, independent of sharding.

    Hashing ``base_seed:index`` (rather than e.g. ``base_seed + index``)
    decorrelates neighbouring grid points and keeps the mapping identical
    for any worker count, which is what makes parallel sweeps bit-for-bit
    reproducible against the serial path.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)


class SweepTask:
    """One kind of sweep evaluation; subclass per experiment.

    Subclasses must be picklable (they are shipped to worker processes
    once, via the pool initializer) and must implement a **lossless**
    ``encode``/``decode`` pair: ``decode(json.loads(json.dumps(encode(r))))``
    has to reproduce ``r`` exactly, because cached results round-trip
    through JSON.
    """

    #: Stable identifier mixed into cache keys; override per subclass.
    name: str = "sweep"

    def config_key(self, config: Any) -> Any:
        """JSON-able identity of one config (cache key component)."""
        raise NotImplementedError

    def version(self) -> str:
        """Task-level cache-version token (e.g. a digest of test vectors)."""
        return ""

    def evaluate(self, config: Any, seed: int) -> Any:
        """Evaluate one config.  ``seed`` derives from the grid index;
        deterministic tasks are free to ignore it."""
        raise NotImplementedError

    def encode(self, result: Any) -> Any:
        """Result -> JSON-able payload (must be lossless; see class doc)."""
        return result

    def decode(self, payload: Any, arrays: Optional[dict] = None) -> Any:
        """JSON-able payload (+ any :meth:`result_arrays`) -> result object.

        The inverse of :meth:`encode`: ``arrays`` carries whatever
        :meth:`result_arrays` returned for this result (from the worker or
        the cache's NPZ sidecar), so array-bearing results round-trip too.
        """
        return payload

    def result_arrays(self, result: Any) -> Optional[dict]:
        """Optional numpy arrays to persist alongside the JSON payload.

        Anything returned here is stored in the cache's ``.npz`` sidecar
        and handed back to :meth:`decode` as its ``arrays`` argument.
        """
        return None


@dataclass
class RunStats:
    """Accounting of one :meth:`ParallelSweepRunner.run` call."""

    total: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    workers: int = 1
    seconds: float = 0.0

    def summary(self) -> str:
        parts = [f"{self.total} configs", f"{self.evaluated} evaluated"]
        if self.cache_hits or self.cache_stores:
            parts.append(f"{self.cache_hits} cache hits")
        parts.append(f"{self.workers} worker{'s' if self.workers != 1 else ''}")
        parts.append(f"{self.seconds:.2f}s")
        return ", ".join(parts)


# ---------------------------------------------------------------------------
# Worker plumbing.  The task object is pickled once and installed in each
# worker by the pool initializer; work items then carry only (index, config,
# seed).  Results come back pre-encoded so the parent never re-pickles
# heavyweight objects and the decode path is shared with the cache.
# ---------------------------------------------------------------------------

_WORKER_TASK: Optional[SweepTask] = None


def _worker_init(task_blob: bytes) -> None:
    global _WORKER_TASK
    _WORKER_TASK = pickle.loads(task_blob)


def _worker_evaluate(item: Tuple[int, Any, int]) -> Tuple[int, Any, Optional[dict]]:
    index, config, seed = item
    assert _WORKER_TASK is not None, "worker used before initialisation"
    result = _WORKER_TASK.evaluate(config, seed)
    return index, _WORKER_TASK.encode(result), _WORKER_TASK.result_arrays(result)


def _resolve_workers(workers: Optional[int]) -> int:
    if workers is None or workers <= 0:
        return max(1, os.cpu_count() or 1)
    return int(workers)


class ParallelSweepRunner:
    """Shard a config grid across worker processes, with optional caching.

    Parameters
    ----------
    task:
        The :class:`SweepTask` describing how to evaluate one config.
    workers:
        Process count; ``1`` runs everything in-process (the serial
        fallback), ``None``/``0`` uses every available CPU.
    cache:
        Optional :class:`~repro.runner.cache.ResultCache`; hits skip
        evaluation entirely, misses are stored as they complete.
    base_seed:
        Root of the per-index seed derivation (:func:`derive_seed`).
    reporter:
        Optional progress sink with ``start(total)`` /
        ``update(done, total, cached=...)`` / ``finish(message)`` methods
        (see :class:`repro.evaluation.reporting.ProgressReporter`).
    mp_context:
        Multiprocessing start method.  Defaults to ``fork`` where available
        (cheap, shares the already-imported library) and ``spawn`` elsewhere.
    """

    def __init__(
        self,
        task: SweepTask,
        workers: Optional[int] = 1,
        cache: Optional[Any] = None,
        base_seed: int = 0,
        reporter: Optional[Any] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.task = task
        self.workers = _resolve_workers(workers)
        self.cache = cache
        self.base_seed = int(base_seed)
        self.reporter = reporter
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self.mp_context = mp_context
        self.stats = RunStats()

    # ----------------------------------------------------------------- run
    def run(self, configs: Iterable[Any]) -> List[Any]:
        """Evaluate every config; returns results in input (grid) order."""
        configs = list(configs)
        start_time = time.perf_counter()
        stats = RunStats(total=len(configs), workers=self.workers)
        self.stats = stats
        results: List[Any] = [None] * len(configs)
        digests: List[Optional[str]] = [None] * len(configs)
        pending: List[Tuple[int, Any, int]] = []

        if self.reporter is not None:
            self.reporter.start(len(configs))

        # Serve cache hits first; everything else becomes a work item.
        version = self.task.version()
        for index, config in enumerate(configs):
            if self.cache is not None:
                digest = self.cache.key(self.task.name, self.task.config_key(config), version)
                digests[index] = digest
                hit = self.cache.load(digest)
                if hit is not None:
                    results[index] = self.task.decode(hit.payload, hit.arrays or None)
                    stats.cache_hits += 1
                    continue
            pending.append((index, config, derive_seed(self.base_seed, index)))

        done = stats.cache_hits
        if self.reporter is not None and done:
            self.reporter.update(done, stats.total, cached=stats.cache_hits)

        def _finish_one(index: int, payload: Any, arrays: Optional[dict]) -> None:
            nonlocal done
            results[index] = self.task.decode(payload, arrays)
            stats.evaluated += 1
            if self.cache is not None:
                self.cache.store(digests[index], payload, arrays=arrays)
                stats.cache_stores += 1
            done += 1
            if self.reporter is not None:
                self.reporter.update(done, stats.total, cached=stats.cache_hits)

        if pending:
            if self.workers == 1 or len(pending) == 1:
                # Serial fallback: same encode/decode round-trip as workers use.
                for index, config, seed in pending:
                    result = self.task.evaluate(config, seed)
                    _finish_one(index, self.task.encode(result), self.task.result_arrays(result))
            else:
                context = mp.get_context(self.mp_context)
                task_blob = pickle.dumps(self.task)
                processes = min(self.workers, len(pending))
                chunksize = max(1, len(pending) // (processes * 4))
                with context.Pool(processes, initializer=_worker_init, initargs=(task_blob,)) as pool:
                    for index, payload, arrays in pool.imap_unordered(
                        _worker_evaluate, pending, chunksize=chunksize
                    ):
                        _finish_one(index, payload, arrays)

        stats.seconds = time.perf_counter() - start_time
        if self.reporter is not None:
            self.reporter.finish(stats.summary())
        return results
