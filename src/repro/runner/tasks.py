"""Sweep tasks for the paper's artifacts (DSE, GELU sweep, tables).

Each :class:`~repro.runner.runner.SweepTask` subclass here is the single
source of truth for one experiment's per-config evaluation: the benchmark
scripts under ``benchmarks/`` and the ``python -m repro`` CLI both drive
these tasks through :class:`~repro.runner.runner.ParallelSweepRunner`, so a
figure regenerated from either entry point (serial, parallel, or cached)
produces byte-identical rows.

Tasks are plain picklable dataclasses: they are shipped to worker processes
once via the pool initializer, and their ``version()`` token (a digest of
the test vectors / model weights they close over) keys the disk cache so
results computed against different inputs never alias.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocks.specs import (
    SoftmaxCircuitConfig,
    calibrate_alpha_x,
    calibrate_alpha_y,
)
from repro.core.dse import DesignPoint, evaluate_design
from repro.runner.cache import array_digest
from repro.runner.runner import ParallelSweepRunner, SweepTask

__all__ = [
    "FabricTask",
    "ScenarioTask",
    "SoftmaxDesignTask",
    "GeluSweepTask",
    "Table4Task",
    "Table6Task",
    "FIG7_BERNSTEIN_TERMS",
    "FIG7_BERNSTEIN_BSLS",
    "FIG7_SI_BSLS",
    "fig7_gelu_configs",
    "fig7_gelu_rows",
    "TABLE4_FSM_BSLS",
    "TABLE4_BY_CHOICES",
    "table4_configs",
    "table4_rows",
]


# ---------------------------------------------------------------------------
# Fig. 8 / Table VI input — the softmax design-space exploration.
# ---------------------------------------------------------------------------


@dataclass
class SoftmaxDesignTask(SweepTask):
    """Evaluate one :class:`SoftmaxCircuitConfig` of the DSE grid.

    The config objects themselves are the sweep's grid entries; the task
    carries what every evaluation shares (test vectors, cell library).
    """

    test_vectors: np.ndarray
    library: Optional[Any] = None

    name = "softmax-dse"

    def config_key(self, config: SoftmaxCircuitConfig) -> Dict[str, Any]:
        return asdict(config)

    def version(self) -> str:
        library = getattr(self.library, "name", "default")
        return f"vectors:{array_digest(self.test_vectors)};library:{library}"

    def evaluate(self, config: SoftmaxCircuitConfig, seed: int) -> DesignPoint:
        # Deterministic: the circuit emulation uses no RNG, so the derived
        # seed is unused and parallel == serial bit-for-bit.
        return evaluate_design(config, self.test_vectors, self.library)

    def encode(self, result: DesignPoint) -> Dict[str, Any]:
        return {
            "config": asdict(result.config),
            "feasible": result.feasible,
            "area_um2": result.area_um2,
            "delay_ns": result.delay_ns,
            "adp": result.adp,
            "mae": result.mae,
        }

    def decode(self, payload: Dict[str, Any], arrays: Optional[dict] = None) -> DesignPoint:
        return DesignPoint(
            config=SoftmaxCircuitConfig(**payload["config"]),
            feasible=bool(payload["feasible"]),
            area_um2=float(payload["area_um2"]),
            delay_ns=float(payload["delay_ns"]),
            adp=float(payload["adp"]),
            mae=float(payload["mae"]),
        )


# ---------------------------------------------------------------------------
# Fig. 7 — GELU block ADP/MAE across bitstream lengths.
# ---------------------------------------------------------------------------

FIG7_BERNSTEIN_TERMS: Tuple[int, ...] = (4, 5, 6)
FIG7_BERNSTEIN_BSLS: Tuple[int, ...] = (128, 256, 1024)
FIG7_SI_BSLS: Tuple[int, ...] = (2, 4, 8)


@dataclass
class GeluSweepTask(SweepTask):
    """Evaluate one GELU-block operating point of the Fig. 7 sweep.

    Configs are dicts: ``{"kind": "bernstein", "terms": t, "bsl": b}`` for
    the polynomial baseline (seeded by ``terms``, evaluated on the first
    ``bernstein_eval_rows`` samples — the figure's historical protocol) or
    ``{"kind": "si", "bsl": b}`` for the gate-assisted SI block (calibrated
    and evaluated on the full sample set).
    """

    samples: np.ndarray
    bernstein_eval_rows: int = 1500
    input_range: float = 3.0

    name = "gelu-sweep"

    def config_key(self, config: Dict[str, Any]) -> Dict[str, Any]:
        return dict(config)

    def version(self) -> str:
        return (
            f"samples:{array_digest(self.samples)};"
            f"rows:{self.bernstein_eval_rows};range:{self.input_range}"
        )

    def evaluate(self, config: Dict[str, Any], seed: int) -> Tuple[str, int, float, float]:
        from repro.blocks import build
        from repro.nn.functional_math import gelu_exact

        samples = self.samples
        reference = gelu_exact(samples)
        bsl = int(config["bsl"])
        if config["kind"] == "bernstein":
            terms = int(config["terms"])
            # Historical protocol: the per-series noise seed is the term count.
            block = build(
                "gelu/bernstein",
                num_terms=terms,
                input_range=self.input_range,
                bitstream_length=bsl,
                seed=terms,
            )
            rows = self.bernstein_eval_rows
            out = block.evaluate(samples[:rows])
            mae = float(np.mean(np.abs(out - reference[:rows])))
            return (f"{terms}-term Bern. Poly.", bsl, block.hardware_summary()["adp"], mae)
        if config["kind"] == "si":
            block = build("gelu/si", output_length=bsl, calibration_samples=samples)
            mae = float(np.mean(np.abs(block.evaluate(samples) - reference)))
            return ("Gate-Assisted SI (ours)", bsl, block.hardware_summary()["adp"], mae)
        raise ValueError(f"unknown GELU sweep config kind: {config['kind']!r}")

    def decode(self, payload: Sequence[Any], arrays: Optional[dict] = None) -> Tuple[str, int, float, float]:
        label, bsl, adp, mae = payload
        return (str(label), int(bsl), float(adp), float(mae))


def fig7_gelu_configs() -> List[Dict[str, Any]]:
    """The Fig. 7 grid in its historical row order (Bernstein, then SI)."""
    configs: List[Dict[str, Any]] = []
    for terms in FIG7_BERNSTEIN_TERMS:
        for bsl in FIG7_BERNSTEIN_BSLS:
            configs.append({"kind": "bernstein", "terms": terms, "bsl": bsl})
    for bsl in FIG7_SI_BSLS:
        configs.append({"kind": "si", "bsl": bsl})
    return configs


def fig7_gelu_rows(
    samples: np.ndarray,
    workers: int = 1,
    cache: Optional[Any] = None,
    reporter: Optional[Any] = None,
) -> List[Tuple[str, int, float, float]]:
    """Regenerate the Fig. 7 rows through the sweep runner."""
    runner = ParallelSweepRunner(
        GeluSweepTask(samples=np.asarray(samples, dtype=float)),
        workers=workers,
        cache=cache,
        reporter=reporter,
    )
    rows = runner.run(fig7_gelu_configs())
    fig7_gelu_rows.last_run_stats = runner.stats
    return rows


# ---------------------------------------------------------------------------
# Table IV — softmax block comparison (FSM baseline vs ours).
# ---------------------------------------------------------------------------

TABLE4_FSM_BSLS: Tuple[int, ...] = (128, 256, 1024)
TABLE4_BY_CHOICES: Tuple[int, ...] = (4, 8, 16)


@dataclass
class Table4Task(SweepTask):
    """Evaluate one Table IV row (FSM baseline or iterative circuit).

    Configs: ``{"kind": "fsm", "bsl": b}`` or ``{"kind": "ours", "by": by}``.
    ``alpha_x`` is pre-calibrated by the caller so every row shares the
    exact calibration the table's methodology prescribes.
    """

    logits: np.ndarray
    m: int = 64
    bx: int = 4
    s1: int = 32
    s2: int = 8
    iterations: int = 3
    alpha_x: float = 2.0

    name = "table4-softmax"

    def config_key(self, config: Dict[str, Any]) -> Dict[str, Any]:
        return dict(config)

    def version(self) -> str:
        params = (self.m, self.bx, self.s1, self.s2, self.iterations, self.alpha_x)
        return f"logits:{array_digest(self.logits)};params:{params}"

    def evaluate(self, config: Dict[str, Any], seed: int) -> Tuple[str, float, float, float, float]:
        from repro.blocks import build

        if config["kind"] == "fsm":
            bsl = int(config["bsl"])
            block = build("softmax/fsm", m=self.m, bitstream_length=bsl, seed=bsl)
            cost = block.hardware_summary()
            mae = block.mean_absolute_error(self.logits)
            return (f"FSM [17] {bsl}b BSL", cost["area_um2"], cost["delay_ns"], cost["adp"], mae)
        if config["kind"] == "ours":
            by = int(config["by"])
            circuit_config = SoftmaxCircuitConfig(
                m=self.m,
                iterations=self.iterations,
                bx=self.bx,
                alpha_x=self.alpha_x,
                by=by,
                alpha_y=calibrate_alpha_y(by, self.m),
                s1=self.s1,
                s2=self.s2,
            )
            block = build("softmax/iterative", spec=circuit_config)
            cost = block.hardware_summary()
            mae = block.mean_absolute_error(self.logits)
            return (f"Ours By={by}", cost["area_um2"], cost["delay_ns"], cost["adp"], mae)
        raise ValueError(f"unknown Table IV config kind: {config['kind']!r}")

    def decode(self, payload: Sequence[Any], arrays: Optional[dict] = None) -> Tuple[str, float, float, float, float]:
        label, area, delay, adp, mae = payload
        return (str(label), float(area), float(delay), float(adp), float(mae))


def table4_configs() -> List[Dict[str, Any]]:
    """The Table IV rows in their historical order (FSM rows, then ours)."""
    configs: List[Dict[str, Any]] = [{"kind": "fsm", "bsl": bsl} for bsl in TABLE4_FSM_BSLS]
    configs.extend({"kind": "ours", "by": by} for by in TABLE4_BY_CHOICES)
    return configs


def table4_rows(
    logits: np.ndarray,
    workers: int = 1,
    cache: Optional[Any] = None,
    reporter: Optional[Any] = None,
    m: int = 64,
    bx: int = 4,
    s1: int = 32,
    s2: int = 8,
    iterations: int = 3,
) -> List[Tuple[str, float, float, float, float]]:
    """Regenerate the Table IV rows through the sweep runner."""
    logits = np.asarray(logits, dtype=float)
    task = Table4Task(
        logits=logits,
        m=m,
        bx=bx,
        s1=s1,
        s2=s2,
        iterations=iterations,
        alpha_x=calibrate_alpha_x(logits, bx),
    )
    runner = ParallelSweepRunner(task, workers=workers, cache=cache, reporter=reporter)
    rows = runner.run(table4_configs())
    table4_rows.last_run_stats = runner.stats
    return rows


# ---------------------------------------------------------------------------
# Table VI — accelerator-level area and accuracy per softmax configuration.
# ---------------------------------------------------------------------------


@dataclass
class Table6Task(SweepTask):
    """Evaluate one Table VI configuration ``[By, s1, s2, k]``.

    The task carries the trained model and the evaluation split; its cache
    version digests the model weights, so re-training invalidates cached
    accuracies automatically.  Configs are ``{"by", "s1", "s2", "k"}`` dicts.
    """

    model: Any
    images: np.ndarray
    labels: np.ndarray
    calibration_images: np.ndarray
    max_images: Optional[int] = None
    m: int = 64
    _weights_digest: str = field(default="", repr=False)

    name = "table6-accelerator"

    def __post_init__(self) -> None:
        if not self._weights_digest:
            state = self.model.state_dict()
            self._weights_digest = array_digest(*(state[k] for k in sorted(state)))

    def config_key(self, config: Dict[str, Any]) -> Dict[str, Any]:
        key = dict(config)
        key["max_images"] = self.max_images
        return key

    def version(self) -> str:
        return (
            f"weights:{self._weights_digest};"
            f"images:{array_digest(self.images)};"
            f"calibration:{array_digest(self.calibration_images)};m:{self.m}"
        )

    def softmax_config(self, config: Dict[str, Any]) -> SoftmaxCircuitConfig:
        by = int(config["by"])
        return SoftmaxCircuitConfig(
            m=self.m,
            iterations=int(config["k"]),
            bx=4,
            alpha_x=2.0,
            by=by,
            alpha_y=calibrate_alpha_y(by, self.m),
            s1=int(config["s1"]),
            s2=int(config["s2"]),
        )

    def evaluate(self, config: Dict[str, Any], seed: int) -> Dict[str, float]:
        from repro.core.accelerator import AcceleratorConfig, AscendAccelerator, ViTArchitecture
        from repro.core.sc_vit import ScViTEvaluator
        from repro.training.datasets import DatasetSplit

        softmax = self.softmax_config(config)
        accel_config = AcceleratorConfig(architecture=ViTArchitecture(), softmax=softmax)
        accelerator = AscendAccelerator(accel_config)
        breakdown = accelerator.area_breakdown()
        block_area = accelerator.softmax_block_report().area_um2

        evaluator = ScViTEvaluator(
            self.model, softmax, calibration_images=self.calibration_images, calibrate=True
        )
        split = DatasetSplit(images=self.images, labels=self.labels)
        accuracy = evaluator.evaluate(split, max_images=self.max_images).accuracy
        return {
            "block_area": float(block_area),
            "total": float(breakdown["total"]),
            "softmax_fraction": float(breakdown["softmax_fraction"]),
            "accuracy": float(accuracy),
        }

    def decode(self, payload: Dict[str, Any], arrays: Optional[dict] = None) -> Dict[str, float]:
        return {k: float(v) for k, v in payload.items()}


# ---------------------------------------------------------------------------
# Serving-tier resilience scenarios (repro.scenarios).
# ---------------------------------------------------------------------------


@dataclass
class ScenarioTask(SweepTask):
    """Run one ``serve/scenario`` spec through the sweep orchestrator.

    The config is the scenario's *canonical dict* (``ScenarioSpec.to_dict``
    — every field expanded), which doubles as the content-addressed cache
    identity: two invocations of the same scenario file hit the same cache
    entry, and any edit to the deployment, workload, events or assertions
    re-runs.  The result payload is already JSON-able (the runner's output
    dict), so the default ``encode``/``decode`` pair is lossless.

    Latencies and the stats timeline are wall-clock measurements, so a
    cached result replays the *original* run's observations — exactly the
    sweep-cache semantics (a cached DSE row also replays its original
    evaluation).  Pass ``--no-cache`` to force a fresh drive.

    The deployment's ``telemetry`` field is stripped from the cache
    identity (:meth:`config_key`): telemetry is observational by contract,
    so a scenario run with tracing on must hit the same cache entry — and
    produce the same payload — as one with tracing off.
    """

    #: Directory relative ``trace_path`` entries resolve against.
    base_dir: Optional[str] = None
    #: Directory trace exports land in when telemetry is on (never cached).
    trace_dir: Optional[str] = None

    name = "scenario"

    def config_key(self, config: Dict[str, Any]) -> Dict[str, Any]:
        key = dict(config)
        params = key.get("params")
        if isinstance(params, dict):
            params = dict(params)
            deployment = params.get("deployment")
            if isinstance(deployment, dict) and "telemetry" in deployment:
                deployment = dict(deployment)
                del deployment["telemetry"]
                params["deployment"] = deployment
            key["params"] = params
        return key

    def evaluate(self, config: Dict[str, Any], seed: int) -> Dict[str, Any]:
        # Deterministic in everything the assertions judge except wall-clock
        # latencies; the derived sweep seed is unused (the workload carries
        # its own seeds in the spec).
        from repro.scenarios import ScenarioRunner, ScenarioSpec

        spec = ScenarioSpec.from_dict(config)
        return ScenarioRunner(spec, base_dir=self.base_dir, trace_dir=self.trace_dir).run()


# ---------------------------------------------------------------------------
# Accelerator-fabric workloads (repro.fabric).
# ---------------------------------------------------------------------------


@dataclass
class FabricTask(SweepTask):
    """Run one ``fabric/run`` spec through the sweep orchestrator.

    The config is the run spec's *canonical dict* (``FabricRunSpec.to_dict``
    — design, schedule, seeds and fault knobs fully expanded), which is
    also the content-addressed cache identity: re-running an unchanged
    spec file is a pure cache hit, while any edit to the grid, the
    schedule or the seed re-compiles and re-executes.  The result (the
    :func:`repro.fabric.run_fabric` payload: bitstream digest, compile
    timings, per-slot output digests, golden bit-identity verdicts,
    resource counts) is JSON-able, so the default ``encode``/``decode``
    pair is lossless.  Compile/execute timings are wall-clock, so a cached
    result replays the original run's measurements — the same semantics as
    every other sweep artifact.
    """

    name = "fabric"

    def config_key(self, config: Dict[str, Any]) -> Dict[str, Any]:
        return dict(config)

    def evaluate(self, config: Dict[str, Any], seed: int) -> Dict[str, Any]:
        # Fully deterministic: the spec carries its own placement seed, so
        # the derived sweep seed is unused.
        from repro.fabric import FabricRunSpec, run_fabric

        spec = FabricRunSpec.from_dict(config)
        return run_fabric(spec)
