"""Stochastic-computing (SC) substrate.

This package provides everything below the ASCEND-specific blocks:

* bitstream containers for the three encodings used in the paper —
  unipolar, bipolar and deterministic thermometer coding
  (:mod:`repro.sc.bitstream`, :mod:`repro.sc.encodings`),
* stochastic number generators built from linear-feedback shift registers
  (:mod:`repro.sc.sng`),
* SC arithmetic: AND/XNOR stochastic multipliers, MUX scaled adders, the
  thermometer truth-table multiplier and the bitonic-sorting-network (BSN)
  adder (:mod:`repro.sc.arithmetic`, :mod:`repro.sc.sorting_network`),
* re-scaling / sub-sampling blocks used to align scaling factors
  (:mod:`repro.sc.rescaling`),
* the three families of baseline nonlinear-function designs the paper
  compares against: FSM-based units, Bernstein-polynomial units and naive
  selective interconnect (:mod:`repro.sc.fsm`, :mod:`repro.sc.bernstein`,
  :mod:`repro.sc.selective_interconnect`),
* pluggable kernel backends for the packed engine — ``numpy`` (default),
  ``threaded`` and ``numba`` — selected process-wide or per spec with a
  strict bit-identity contract (:mod:`repro.sc.backends`).

Every functional block also knows how to describe itself structurally for
the hardware cost model via a ``build_hardware()`` method.
"""

from repro.sc.bitstream import StochasticStream, ThermometerStream
from repro.sc.packed import PackedBitPlane
from repro.sc.encodings import (
    bipolar_decode,
    bipolar_encode,
    thermometer_levels,
    unipolar_decode,
    unipolar_encode,
)
from repro.sc.sng import LinearFeedbackShiftRegister, StochasticNumberGenerator
from repro.sc.arithmetic import (
    bsn_add,
    divide_by_constant,
    draw_select_planes,
    fused_multiply_decode,
    negate,
    thermometer_add,
    thermometer_multiply,
    unipolar_multiply,
    bipolar_multiply,
    mux_scaled_add,
)
from repro.sc.rescaling import RescalingBlock, align_scales, rescale
from repro.sc.sorting_network import BitonicSortingNetwork
from repro.sc.fsm import FsmNonlinearUnit, FsmGeluUnit, FsmTanhUnit, FsmReluUnit
from repro.sc.bernstein import BernsteinPolynomialUnit, fit_bernstein_coefficients
from repro.sc.selective_interconnect import NaiveSelectiveInterconnect

__all__ = [
    "StochasticStream",
    "PackedBitPlane",
    "ThermometerStream",
    "unipolar_encode",
    "unipolar_decode",
    "bipolar_encode",
    "bipolar_decode",
    "thermometer_levels",
    "LinearFeedbackShiftRegister",
    "StochasticNumberGenerator",
    "thermometer_multiply",
    "thermometer_add",
    "bsn_add",
    "divide_by_constant",
    "negate",
    "unipolar_multiply",
    "bipolar_multiply",
    "mux_scaled_add",
    "draw_select_planes",
    "fused_multiply_decode",
    "RescalingBlock",
    "align_scales",
    "rescale",
    "BitonicSortingNetwork",
    "FsmNonlinearUnit",
    "FsmGeluUnit",
    "FsmTanhUnit",
    "FsmReluUnit",
    "BernsteinPolynomialUnit",
    "fit_bernstein_coefficients",
    "NaiveSelectiveInterconnect",
]
