"""SC arithmetic primitives.

Stochastic (random) encodings:

* unipolar multiplication — AND gate on two independent streams,
* bipolar multiplication — XNOR gate,
* scaled addition — MUX gate with a 0.5-probability select stream.

Deterministic thermometer encoding (Section II-A):

* multiplication — truth-table unit producing the exact product of the two
  quantised operands at the product scale,
* addition — concatenation of the operand streams followed by a bitonic
  sorting network (BSN); on one-counts this is exact integer addition,
* negation — bitwise inversion (count -> L - count),
* division by a constant — a pure scaling-factor change, no logic at all
  (the property the iterative softmax circuit exploits for its ``/k``).

Each primitive also has a ``*_hardware`` builder so the cost model can price
larger blocks out of the same pieces the functional emulation uses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.sc.bitstream import StochasticStream, ThermometerStream
from repro.sc.encodings import bipolar_decode, unipolar_decode
from repro.sc.packed import PackedBitPlane, _kernels, tail_mask
from repro.sc.sorting_network import BitonicSortingNetwork
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

# --------------------------------------------------------------------------
# Stochastic (random) encodings
# --------------------------------------------------------------------------


def unipolar_multiply(a: StochasticStream, b: StochasticStream) -> StochasticStream:
    """Multiply two unipolar streams with a bitwise AND.

    Runs word-wise on the packed bitplanes (64 stream bits per machine op);
    the result is bit-identical to ANDing the explicit ``int8`` arrays.
    """
    if a.encoding != "unipolar" or b.encoding != "unipolar":
        raise ValueError("unipolar_multiply requires unipolar streams")
    if a.length != b.length:
        raise ValueError("streams must have equal length")
    return StochasticStream(packed=a.packed & b.packed, encoding="unipolar")


def bipolar_multiply(a: StochasticStream, b: StochasticStream) -> StochasticStream:
    """Multiply two bipolar streams with a bitwise XNOR (packed fast path)."""
    if a.encoding != "bipolar" or b.encoding != "bipolar":
        raise ValueError("bipolar_multiply requires bipolar streams")
    if a.length != b.length:
        raise ValueError("streams must have equal length")
    return StochasticStream(packed=a.packed.xnor(b.packed), encoding="bipolar")


def mux_scaled_add(
    a: StochasticStream,
    b: StochasticStream,
    seed: SeedLike = None,
    *,
    select: Optional[PackedBitPlane] = None,
) -> StochasticStream:
    """Scaled addition ``(a + b) / 2`` with a MUX and a fair select stream.

    The select stream is drawn exactly as in the explicit-bit implementation
    (one Bernoulli draw per cycle, so seeded results are reproducible across
    versions); the MUX itself runs as three word-wise ops on the packed
    planes.  Callers adding many pairs with the same shape should draw the
    select planes once per batch with :func:`draw_select_planes` and pass
    each via ``select=`` — bit-identical to per-call draws from the same
    generator, but the RNG work is batched (and ``seed`` is then ignored).
    """
    if a.encoding != b.encoding:
        raise ValueError("streams must share an encoding")
    if a.length != b.length:
        raise ValueError("streams must have equal length")
    if select is None:
        rng = as_generator(seed)
        # Same draw as the explicit-bit implementation (one integers(0, 2)
        # per cycle) so seeded results stay reproducible across versions.
        select = _kernels().select_plane(a.value_shape, a.length, rng)
    else:
        if select.length != a.length:
            raise ValueError("select plane must match the operand length")
        if select.value_shape != a.value_shape:
            raise ValueError("select plane must match the operand value shape")
    return StochasticStream(packed=select.mux(a.packed, b.packed), encoding=a.encoding)


def draw_select_planes(
    value_shape: Tuple[int, ...],
    length: int,
    count: int,
    seed: SeedLike = None,
) -> List[PackedBitPlane]:
    """Draw ``count`` fair-coin select planes in one batched RNG pass.

    Bit-identical to ``count`` sequential :func:`mux_scaled_add` draws from
    the same generator (the batched ``integers`` call consumes the uniform
    stream in the same C order), but generation is amortised across the
    whole batch — one backend call instead of ``count``, which is where the
    per-call overhead of `mux_scaled_add` lived.
    """
    check_positive_int(length, "length")
    check_positive_int(count, "count")
    rng = as_generator(seed)
    batched = _kernels().select_plane((count,) + tuple(value_shape), length, rng)
    return [PackedBitPlane(batched.words[i], length) for i in range(count)]


def fused_multiply_decode(a: StochasticStream, b: StochasticStream) -> np.ndarray:
    """Multiply two streams and decode the product in one popcount pass.

    Equivalent to ``unipolar_multiply(a, b).decode()`` (or the bipolar
    pair) but never materialises the product plane: the backend gates and
    popcounts word-by-word, which halves memory traffic on the hottest
    decode path of the eval pipeline.
    """
    if a.encoding != b.encoding:
        raise ValueError("streams must share an encoding")
    if a.length != b.length:
        raise ValueError("streams must have equal length")
    op = "and" if a.encoding == "unipolar" else "xnor"
    counts = _kernels().multiply_popcount(
        a.packed.words, b.packed.words, op, tail_mask(a.length)
    )
    probs = counts / a.length
    if a.encoding == "unipolar":
        return unipolar_decode(probs)
    return bipolar_decode(probs)


# --------------------------------------------------------------------------
# Deterministic thermometer encoding
# --------------------------------------------------------------------------


def thermometer_multiply(a: ThermometerStream, b: ThermometerStream) -> ThermometerStream:
    """Exact product of two thermometer-coded operands.

    The truth-table multiplier of the deterministic SC literature produces
    the product of the two signed quantised levels.  The natural output
    format has length ``La * Lb / 2`` (so its signed range ``±La*Lb/4``
    covers every possible product) and scale ``scale_a * scale_b``.
    """
    out_length = a.length * b.length // 2
    if out_length * 2 != a.length * b.length:
        raise ValueError("operand lengths must have an even product")
    product_levels = a.signed_levels() * b.signed_levels()
    out_scale = a.scale * b.scale
    counts = product_levels + out_length // 2
    # For even operand lengths the signed levels are symmetric (±L/2), so
    # products provably land on [0, out_length] and the range scan can be
    # skipped.  An odd operand length has asymmetric levels whose products
    # can overflow the output grid — keep the constructor's check there.
    needs_check = bool(a.length % 2 or b.length % 2)
    return ThermometerStream(counts=counts, length=out_length, scale=out_scale, validate=needs_check)


def thermometer_add(a: ThermometerStream, b: ThermometerStream) -> ThermometerStream:
    """Exact sum of two thermometer operands sharing a scaling factor.

    Implemented in hardware by concatenating the streams and re-sorting with
    a BSN; on one-counts that is plain integer addition.
    """
    if not a.compatible_with(b):
        raise ValueError(
            f"BSN addition requires equal scales, got {a.scale} and {b.scale}; "
            "re-scale one operand first (repro.sc.rescaling.align_scales)"
        )
    return ThermometerStream(
        counts=a.counts + b.counts,
        length=a.length + b.length,
        scale=a.scale,
        validate=False,
    )


def bsn_add(streams: Sequence[ThermometerStream]) -> ThermometerStream:
    """Sum an arbitrary number of thermometer streams with one wide BSN."""
    if not streams:
        raise ValueError("bsn_add needs at least one stream")
    result = streams[0]
    for stream in streams[1:]:
        result = thermometer_add(result, stream)
    return result


def negate(stream: ThermometerStream) -> ThermometerStream:
    """Negate a thermometer value (bitwise NOT + reverse in hardware)."""
    return ThermometerStream(
        counts=stream.length - stream.counts,
        length=stream.length,
        scale=stream.scale,
        validate=False,
    )


def divide_by_constant(stream: ThermometerStream, k: float) -> ThermometerStream:
    """Divide by a constant by shrinking the scaling factor — zero hardware.

    This is the trick that lets the iterative softmax avoid real dividers:
    the ``/k`` in Algorithm 1 line 4 touches only the scale, not the bits.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    return ThermometerStream(counts=stream.counts, length=stream.length, scale=stream.scale / k, validate=False)


# --------------------------------------------------------------------------
# Hardware builders
# --------------------------------------------------------------------------


def thermometer_multiplier_hardware(
    length_a: int,
    length_b: int,
    name: str = "tt_mul",
) -> HardwareModule:
    """Structural model of the truth-table thermometer multiplier.

    The unit ANDs every input-bit pair (``La * Lb`` gates) and re-sorts the
    partial products into a thermometer output with a BSN over the output
    width.  This is the dominant per-unit cost inside the softmax block.
    """
    check_positive_int(length_a, "length_a")
    check_positive_int(length_b, "length_b")
    out_width = max(2, length_a * length_b // 2)
    inventory = ComponentInventory(
        {
            "AND2": length_a * length_b,
            "XOR2": length_a + length_b,  # sign handling of the signed levels
        }
    )
    bsn = BitonicSortingNetwork(out_width).build_hardware(name=f"{name}_sorter")
    return HardwareModule(
        name=f"{name}_{length_a}x{length_b}",
        inventory=inventory,
        critical_path=("AND2", "XOR2"),
        cycles=1,
        submodules=[(bsn, 1)],
        metadata={"length_a": length_a, "length_b": length_b, "out_length": out_width},
    )


def bsn_adder_hardware(total_width: int, name: str = "bsn_add") -> HardwareModule:
    """Structural model of a BSN adder over ``total_width`` concatenated bits."""
    check_positive_int(total_width, "total_width")
    return BitonicSortingNetwork(total_width).build_hardware(name=name)


def stochastic_multiplier_hardware(encoding: str = "unipolar") -> HardwareModule:
    """Single-gate stochastic multiplier (AND for unipolar, XNOR for bipolar)."""
    cell = "AND2" if encoding == "unipolar" else "XNOR2"
    return HardwareModule(
        name=f"sc_mul_{encoding}",
        inventory=ComponentInventory({cell: 1}),
        critical_path=(cell,),
        cycles=1,
        metadata={"encoding": encoding},
    )


def mux_adder_hardware() -> HardwareModule:
    """Single-MUX scaled adder for stochastic encodings."""
    return HardwareModule(
        name="sc_mux_add",
        inventory=ComponentInventory({"MUX2": 1, "LFSR_BIT": 4}),
        critical_path=("MUX2",),
        cycles=1,
    )
