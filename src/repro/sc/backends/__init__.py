"""Pluggable kernel backends for the packed SC engine.

Every hot kernel of the engine (word-wise gate ops, popcount reductions,
Bernoulli/select plane generation, the FSM transition scan, BSN stages) is
routed through a process-wide *active backend*.  Three backends ship:

``numpy``
    The single-threaded reference (default) — byte-identical to the
    pre-backend engine.
``threaded``
    Tiles large planes across a thread pool and batches RNG word
    generation; bit-identical via runtime self-checks with canonical
    fallback.
``numba``
    JIT-compiled reductions and FSM scans, available only when numba is
    importable; requesting it without numba warns once and falls back to
    ``numpy`` (never an error).

Selection precedence (lowest to highest):

1. ``REPRO_SC_BACKEND`` environment variable — deployment-wide default.
2. :func:`use_backend` context (what block specs' ``backend`` field uses).
3. :func:`set_backend` with ``force=True`` — the ``repro bench --backend``
   override; wins over everything until cleared.

Every backend must pass the packed-vs-legacy bit-identity suite unchanged:
for identical seeds and inputs, all backends produce bit-for-bit identical
streams and decoded values.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.sc.backends.base import KernelBackend
from repro.sc.backends.numpy_backend import NumpyBackend
from repro.sc.backends.threaded_backend import ThreadedBackend
from repro.sc.backends.numba_backend import HAVE_NUMBA, NumbaBackend

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "NumbaBackend",
    "HAVE_NUMBA",
    "BACKEND_ENV_VAR",
    "available_backends",
    "get_backend",
    "active_backend",
    "install_instrumentation",
    "set_backend",
    "use_backend",
]

#: Environment variable naming the default backend for the process.
BACKEND_ENV_VAR = "REPRO_SC_BACKEND"

_FACTORIES = {
    "numpy": NumpyBackend,
    "threaded": ThreadedBackend,
    "numba": NumbaBackend,
}

_instances: Dict[str, KernelBackend] = {}
_context_stack: List[str] = []
_forced_name: Optional[str] = None
_warned_unavailable = set()

#: Optional instrumentation hook (``repro.telemetry`` kernel profiling):
#: a callable wrapping the resolved backend instance.  ``None`` — the
#: default — keeps :func:`active_backend` on the raw instance with a
#: single ``is None`` check of overhead, which is the telemetry layer's
#: zero-cost-when-off contract at this seam.
_instrument = None


def install_instrumentation(wrapper) -> None:
    """Install (or with ``None`` remove) the backend instrumentation hook.

    ``wrapper`` receives the resolved :class:`KernelBackend` instance on
    every :func:`active_backend` call and returns the instance to hand to
    the engine (typically a cached delegating proxy — see
    :mod:`repro.telemetry.profiling`).  Wrapped backends must stay
    bit-identical: the hook is observational only.
    """
    global _instrument
    _instrument = wrapper


def available_backends() -> List[str]:
    """Names accepted by :func:`get_backend`, in registry order.

    ``"numba"`` is always listed (it is a valid *request*); whether it
    resolves to the JIT backend or falls back depends on the environment.
    """
    return list(_FACTORIES)


def _fallback_warning(name: str, reason: str) -> None:
    if name in _warned_unavailable:
        return
    _warned_unavailable.add(name)
    warnings.warn(
        f"SC kernel backend {name!r} is unavailable ({reason}); "
        "falling back to the 'numpy' reference backend",
        RuntimeWarning,
        stacklevel=3,
    )


def get_backend(name: str) -> KernelBackend:
    """The (cached) backend instance for ``name``.

    Unknown names raise ``ValueError``.  A known-but-unavailable backend
    (``"numba"`` without numba installed) warns once per process and
    returns the numpy reference backend, so seeded experiments still run —
    just slower — on machines without the optional dependency.
    """
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown SC kernel backend {name!r}; expected one of {available_backends()}"
        )
    if name == "numba" and not HAVE_NUMBA:
        _fallback_warning(name, "numba is not installed")
        return get_backend("numpy")
    instance = _instances.get(name)
    if instance is None:
        instance = _FACTORIES[name]()
        _instances[name] = instance
    return instance


def _resolve_active() -> KernelBackend:
    if _forced_name is not None:
        return get_backend(_forced_name)
    if _context_stack:
        return get_backend(_context_stack[-1])
    env_name = os.environ.get(BACKEND_ENV_VAR)
    if env_name:
        if env_name in _FACTORIES:
            return get_backend(env_name)
        _fallback_warning(env_name, f"unknown name in ${BACKEND_ENV_VAR}")
    return get_backend("numpy")


def active_backend() -> KernelBackend:
    """The backend the engine's kernels are currently routed through.

    Resolution order: :func:`set_backend`'s forced name, the innermost
    :func:`use_backend` context, the ``REPRO_SC_BACKEND`` environment
    variable, then ``"numpy"``.  Unknown names in the environment variable
    warn (once per name) rather than raise, so a typo in a shell profile
    cannot brick every seeded run.

    When an instrumentation hook is installed
    (:func:`install_instrumentation`), the resolved instance passes
    through it; otherwise it is returned raw.
    """
    backend = _resolve_active()
    if _instrument is None:
        return backend
    return _instrument(backend)


def set_backend(name: Optional[str], force: bool = False) -> Optional[str]:
    """Set (or with ``name=None`` clear) the process-wide forced backend.

    With ``force=True`` the choice overrides contexts and the environment —
    this is what ``repro bench --backend`` uses so a benchmark measures the
    backend it claims to.  Without ``force``, the call just validates the
    name and returns the previous forced name unchanged, which makes the
    common "validate then maybe force" dance a single call.
    """
    global _forced_name
    previous = _forced_name
    if name is not None and name not in _FACTORIES:
        raise ValueError(
            f"unknown SC kernel backend {name!r}; expected one of {available_backends()}"
        )
    if force or name is None:
        _forced_name = name
    return previous


@contextmanager
def use_backend(name: Optional[str]):
    """Scoped backend selection (what block specs' ``backend`` field uses).

    ``None`` is a no-op context so callers can pass an optional spec field
    straight through.  Contexts nest; the innermost wins (unless a forced
    backend is set, which wins over all contexts by design).
    """
    if name is None:
        yield active_backend()
        return
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown SC kernel backend {name!r}; expected one of {available_backends()}"
        )
    _context_stack.append(name)
    try:
        yield active_backend()
    finally:
        _context_stack.pop()
