"""The :class:`KernelBackend` protocol and its pure-numpy reference kernels.

A backend owns the handful of hot kernels the packed SC engine is built
from: word-wise gate ops, popcount reduction, Bernoulli/select plane
generation, the FSM transition scan and the BSN compare-exchange stage.
The base class *is* the reference implementation — every method body here
is the exact algorithm the engine used before the backend seam existed, so
:class:`~repro.sc.backends.numpy_backend.NumpyBackend` (the default) is a
trivial subclass and stays byte-identical to the historical code paths.

Subclasses may override any kernel with a faster implementation, but the
contract is strict: **every backend must produce bit-identical results**
for identical inputs (including identical RNG consumption, so a seeded
experiment decodes to the same floats regardless of backend).  The
packed-vs-legacy property suite runs against every registered backend to
enforce this.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class KernelBackend:
    """Kernel provider for the packed SC engine (reference implementations).

    Instances are stateless apart from optional worker pools; one instance
    per backend name is cached by the registry and shared process-wide.
    """

    #: Registry name; subclasses override.
    name = "base"

    # ------------------------------------------------------------- metadata
    def describe(self) -> dict:
        """Backend facts recorded into bench reports (JSON-serialisable)."""
        return {"name": self.name}

    def close(self) -> None:
        """Release any worker pools (no-op for poolless backends)."""

    # ------------------------------------------------------------- word ops
    def and_words(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Bitwise AND of two word planes (unipolar multiply)."""
        return a & b

    def or_words(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Bitwise OR of two word planes."""
        return a | b

    def xor_words(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Bitwise XOR of two word planes."""
        return a ^ b

    def invert_words(self, words: np.ndarray, last_word_mask: np.uint64) -> np.ndarray:
        """Bitwise NOT with the tail of the last word re-masked to zero."""
        out = ~words
        out[..., -1] &= last_word_mask
        return out

    def xnor_words(self, a: np.ndarray, b: np.ndarray, last_word_mask: np.uint64) -> np.ndarray:
        """Word-wise XNOR (bipolar multiply) with the tail re-masked."""
        out = ~(a ^ b)
        out[..., -1] &= last_word_mask
        return out

    def mux_words(self, sel: np.ndarray, on_one: np.ndarray, on_zero: np.ndarray) -> np.ndarray:
        """Per-bit 2:1 MUX (the SC scaled adder)."""
        return (sel & on_one) | (~sel & on_zero)

    # ------------------------------------------------------------- popcount
    def popcount_words(self, words: np.ndarray) -> np.ndarray:
        """Population count per word.

        Delegates to :func:`repro.sc.packed.popcount_words` so the
        ``HAVE_BITWISE_COUNT`` feature switch (and its byte-LUT fallback)
        stays a single module-level knob shared by every backend.
        """
        from repro.sc import packed

        return packed.popcount_words(words)

    def popcount_reduce(self, words: np.ndarray) -> np.ndarray:
        """Number of set bits per stream: popcount summed over the word axis."""
        return self.popcount_words(words).sum(axis=-1, dtype=np.int64)

    def multiply_popcount(
        self, a: np.ndarray, b: np.ndarray, op: str, last_word_mask: np.uint64
    ) -> np.ndarray:
        """Fused multiply + decode: gate two planes and popcount in one pass.

        ``op`` is ``"and"`` (unipolar) or ``"xnor"`` (bipolar).  Fusing skips
        the intermediate product plane the separate multiply/decode calls
        materialise; the counts are bit-identical to popcounting the product.
        """
        if op == "and":
            return self.popcount_reduce(a & b)
        if op == "xnor":
            prod = ~(a ^ b)
            prod[..., -1] &= last_word_mask
            return self.popcount_reduce(prod)
        raise ValueError(f"unknown multiply op {op!r} (expected 'and' or 'xnor')")

    # ------------------------------------------------------ plane generation
    def bernoulli_plane(
        self, value_shape: Tuple[int, ...], length: int, probs, rng: np.random.Generator
    ):
        """Packed plane of Bernoulli draws: bit ``t`` of value ``v`` is
        ``rng.random() < probs[v]``.

        This is the canonical encode draw: one uniform per (value, cycle) in
        C order, consumed from ``rng`` exactly as the explicit-bit
        implementation always has, so seeded streams are reproducible across
        versions *and* backends.  ``probs`` is a scalar or an array of shape
        ``value_shape``.
        """
        from repro.sc.packed import PackedBitPlane

        draws = rng.random(tuple(value_shape) + (length,))
        p = np.asarray(probs, dtype=float)
        bits = draws < (p[..., None] if p.ndim else p)
        return PackedBitPlane.from_bits(bits)

    def select_plane(self, value_shape: Tuple[int, ...], length: int, rng: np.random.Generator):
        """Packed fair-coin select plane for the MUX scaled adder.

        The canonical draw is ``rng.integers(0, 2, size=value_shape + (L,))``
        — kept verbatim so seeded ``mux_scaled_add`` results never move.
        """
        from repro.sc.packed import PackedBitPlane

        select = rng.integers(0, 2, size=tuple(value_shape) + (length,)).astype(np.uint8)
        return PackedBitPlane.from_bits(select)

    # ------------------------------------------------------------------- FSM
    def fsm_trajectory(
        self,
        stream_bytes: np.ndarray,
        pre: np.ndarray,
        nxt: np.ndarray,
        initial_state: int,
        num_states: int,
    ) -> np.ndarray:
        """Counter state before every cycle, shape ``(..., num_bytes, 8)``.

        ``stream_bytes`` is the packed plane's byte view (8 stream bits per
        byte, zero tail included); ``pre``/``nxt`` are the byte-granular
        transition tables of the saturating counter (see
        :func:`repro.sc.fsm._fsm_scan_tables`).
        """
        num_bytes = stream_bytes.shape[-1]
        state = np.full(stream_bytes.shape[:-1], initial_state, dtype=np.intp)
        trajectory = np.empty(stream_bytes.shape[:-1] + (num_bytes, 8), dtype=np.uint8)
        for t in range(num_bytes):
            chunk = stream_bytes[..., t]
            trajectory[..., t, :] = pre[state, chunk]
            state = nxt[state, chunk].astype(np.intp)
        return trajectory

    def fsm_forward_bytes(
        self,
        stream_bytes: np.ndarray,
        nxt: np.ndarray,
        outbyte: np.ndarray,
        initial_state: int,
        num_states: int,
    ) -> np.ndarray:
        """Fused FSM forward: output *bytes* straight from the byte scan.

        ``outbyte[s, b]`` packs the 8 output bits the unit emits while
        consuming input byte ``b`` entered in state ``s`` (valid whenever the
        output rule's cycle dependence has period dividing 8, which the
        caller checks).  Skips materialising the per-cycle trajectory and the
        rule evaluation over the whole stream.
        """
        num_bytes = stream_bytes.shape[-1]
        state = np.full(stream_bytes.shape[:-1], initial_state, dtype=np.intp)
        out = np.empty_like(stream_bytes)
        for t in range(num_bytes):
            chunk = stream_bytes[..., t]
            out[..., t] = outbyte[state, chunk]
            state = nxt[state, chunk].astype(np.intp)
        return out

    # ------------------------------------------------------------------- BSN
    def bsn_stage(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """One compare-exchange stage on single-bit lanes: (max, min) = (OR, AND)."""
        return a | b, a & b
