"""Optional numba JIT backend, feature-detected at import.

Only the reduction- and scan-shaped kernels are JIT-compiled — the ones
where numpy either materialises large temporaries (multiply + popcount,
3-op MUX) or loops in Python (the per-byte FSM scan).  Plane generation is
deliberately **inherited** from the reference backend: bit-identity of
seeded streams is defined by numpy ``Generator`` draws, and re-implementing
those in numba would either break identity or just call back into numpy.

All SWAR constants are ``np.uint64`` scalars so every intermediate stays
unsigned 64-bit inside nopython mode (mixing uint64 with signed literals
promotes to float64 under numpy/numba rules and silently corrupts bits).

When numba is not installed this module still imports cleanly with
``HAVE_NUMBA = False``; the registry then resolves ``"numba"`` to the numpy
backend with a warning instead of raising.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.sc.backends.base import KernelBackend

try:  # pragma: no cover - exercised only where numba is installed (CI job)
    import numba as _numba
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the local/default environment
    _numba = None
    HAVE_NUMBA = False

#: Minimum words in a plane before the JIT kernels beat plain numpy.
MIN_JIT_WORDS = 1 << 10

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_ALL = np.uint64(0xFFFFFFFFFFFFFFFF)
_S1 = np.uint64(1)
_S2 = np.uint64(2)
_S4 = np.uint64(4)
_S56 = np.uint64(56)


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @njit(inline="always")
    def _popcount64(x):
        x = x - ((x >> _S1) & _M1)
        x = (x & _M2) + ((x >> _S2) & _M2)
        x = (x + (x >> _S4)) & _M4
        return (x * _H01) >> _S56

    @njit(parallel=True, nogil=True, cache=True)
    def _popcount_reduce_rows(words):
        rows, num_words = words.shape
        out = np.empty(rows, dtype=np.int64)
        for i in prange(rows):
            total = np.uint64(0)
            for j in range(num_words):
                total += _popcount64(words[i, j])
            out[i] = np.int64(total)
        return out

    @njit(parallel=True, nogil=True, cache=True)
    def _multiply_popcount_rows(a, b, is_xnor, last_word_mask):
        rows, num_words = a.shape
        out = np.empty(rows, dtype=np.int64)
        for i in prange(rows):
            total = np.uint64(0)
            for j in range(num_words):
                if is_xnor:
                    word = (a[i, j] ^ b[i, j]) ^ _ALL
                    if j == num_words - 1:
                        word = word & last_word_mask
                else:
                    word = a[i, j] & b[i, j]
                total += _popcount64(word)
            out[i] = np.int64(total)
        return out

    @njit(parallel=True, nogil=True, cache=True)
    def _mux_words_flat(sel, on_one, on_zero):
        out = np.empty_like(sel)
        for i in prange(sel.shape[0]):
            s = sel[i]
            out[i] = (s & on_one[i]) | ((s ^ _ALL) & on_zero[i])
        return out

    @njit(parallel=True, nogil=True, cache=True)
    def _fsm_trajectory_rows(stream_bytes, pre, nxt, initial_state):
        rows, num_bytes = stream_bytes.shape
        out = np.empty((rows, num_bytes, 8), dtype=np.uint8)
        for i in prange(rows):
            state = np.int64(initial_state)
            for t in range(num_bytes):
                chunk = np.int64(stream_bytes[i, t])
                for k in range(8):
                    out[i, t, k] = pre[state, chunk, k]
                state = np.int64(nxt[state, chunk])
        return out

    @njit(parallel=True, nogil=True, cache=True)
    def _fsm_forward_rows(stream_bytes, nxt, outbyte, initial_state):
        rows, num_bytes = stream_bytes.shape
        out = np.empty((rows, num_bytes), dtype=np.uint8)
        for i in prange(rows):
            state = np.int64(initial_state)
            for t in range(num_bytes):
                chunk = np.int64(stream_bytes[i, t])
                out[i, t] = outbyte[state, chunk]
                state = np.int64(nxt[state, chunk])
        return out


class NumbaBackend(KernelBackend):  # pragma: no cover - CI optional-deps job
    """JIT backend for reductions, MUX and the FSM scan (requires numba)."""

    name = "numba"

    def __init__(self) -> None:
        if not HAVE_NUMBA:
            raise RuntimeError(
                "numba is not installed; the 'numba' backend is unavailable "
                "(the registry falls back to 'numpy' with a warning)"
            )

    def describe(self) -> dict:
        return {
            "name": self.name,
            "numpy": np.__version__,
            "numba": _numba.__version__,
            "threads": int(_numba.get_num_threads()),
        }

    # ------------------------------------------------------------- popcount
    def popcount_reduce(self, words: np.ndarray) -> np.ndarray:
        if words.ndim < 2 or words.size < MIN_JIT_WORDS:
            return super().popcount_reduce(words)
        flat = np.ascontiguousarray(words).reshape(-1, words.shape[-1])
        return _popcount_reduce_rows(flat).reshape(words.shape[:-1])

    def multiply_popcount(
        self, a: np.ndarray, b: np.ndarray, op: str, last_word_mask: np.uint64
    ) -> np.ndarray:
        if a.ndim < 2 or a.size < MIN_JIT_WORDS:
            return super().multiply_popcount(a, b, op, last_word_mask)
        if op not in ("and", "xnor"):
            raise ValueError(f"unknown multiply op {op!r} (expected 'and' or 'xnor')")
        av = np.ascontiguousarray(a).reshape(-1, a.shape[-1])
        bv = np.ascontiguousarray(b).reshape(-1, b.shape[-1])
        counts = _multiply_popcount_rows(av, bv, op == "xnor", np.uint64(last_word_mask))
        return counts.reshape(a.shape[:-1])

    # ------------------------------------------------------------- word ops
    def mux_words(self, sel: np.ndarray, on_one: np.ndarray, on_zero: np.ndarray) -> np.ndarray:
        if sel.size < MIN_JIT_WORDS:
            return super().mux_words(sel, on_one, on_zero)
        out = _mux_words_flat(
            np.ascontiguousarray(sel).reshape(-1),
            np.ascontiguousarray(on_one).reshape(-1),
            np.ascontiguousarray(on_zero).reshape(-1),
        )
        return out.reshape(sel.shape)

    # ------------------------------------------------------------------- FSM
    def fsm_trajectory(
        self,
        stream_bytes: np.ndarray,
        pre: np.ndarray,
        nxt: np.ndarray,
        initial_state: int,
        num_states: int,
    ) -> np.ndarray:
        num_bytes = stream_bytes.shape[-1]
        flat = np.ascontiguousarray(stream_bytes).reshape(-1, num_bytes)
        out = _fsm_trajectory_rows(
            flat,
            np.ascontiguousarray(pre),
            np.ascontiguousarray(nxt),
            int(initial_state),
        )
        return out.reshape(stream_bytes.shape + (8,))

    def fsm_forward_bytes(
        self,
        stream_bytes: np.ndarray,
        nxt: np.ndarray,
        outbyte: np.ndarray,
        initial_state: int,
        num_states: int,
    ) -> np.ndarray:
        num_bytes = stream_bytes.shape[-1]
        flat = np.ascontiguousarray(stream_bytes).reshape(-1, num_bytes)
        out = _fsm_forward_rows(
            flat,
            np.ascontiguousarray(nxt),
            np.ascontiguousarray(outbyte),
            int(initial_state),
        )
        return out.reshape(stream_bytes.shape)
