"""The default pure-numpy backend: the reference kernels, unmodified.

:class:`KernelBackend` base-class bodies *are* the historical engine code
paths, so this subclass adds nothing — it exists so ``"numpy"`` is a
first-class registry name and so ``describe()`` reports the numpy version
the kernels actually ran on.
"""

from __future__ import annotations

import numpy as np

from repro.sc.backends.base import KernelBackend


class NumpyBackend(KernelBackend):
    """Reference backend — single-threaded numpy, byte-identical to the
    pre-backend engine."""

    name = "numpy"

    def describe(self) -> dict:
        return {"name": self.name, "numpy": np.__version__}
