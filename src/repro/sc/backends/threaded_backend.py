"""Multicore + batched-generation backend for the packed SC engine.

Two families of wins over the reference backend, both bit-identical:

* **Thread tiling** — numpy's bitwise/popcount ufuncs and the Generator
  bulk-fill loops release the GIL, so large planes are split along the
  value axis across a worker pool.  Bernoulli plane generation is split by
  *advancing* cloned bit generators to each chunk's offset (one PCG64
  ``advance`` step per double), which reproduces the exact uniform stream
  of a single contiguous draw.
* **Batched raw-word generation** — the fair-coin select draw
  ``rng.integers(0, 2, ...)`` spends most of its time in numpy's bounded-
  integers rejection machinery.  For a range of 2 that machinery reduces to
  "top bit of each buffered 32-bit draw", so the same bits can be read
  straight out of ``random_raw`` words at ~2x the speed.  The equivalence
  (including the generator's buffered half-word carry between calls) is
  **self-checked at runtime** against the canonical call for the concrete
  bit-generator type; any mismatch silently falls back to the canonical
  draw, so bit-identity can never regress even if numpy's internals change.

The FSM byte scan keeps the reference algorithm (its table gathers are
already vectorised over values) but tiles the value axis across the pool —
each worker scans its own row block independently, since rows never
interact through the counter state.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.sc.backends.base import KernelBackend

#: Below this many packed words a plane is not worth sending to the pool.
MIN_PARALLEL_WORDS = 1 << 14

#: Below this many Bernoulli draws the advance-split setup cost dominates.
MIN_PARALLEL_DRAWS = 1 << 16


def _clone_bitgen(bg) -> object:
    """Fresh bit generator of the same type carrying the same state."""
    clone = type(bg)()
    clone.state = bg.state
    return clone


@lru_cache(maxsize=8)
def _advance_split_supported(bitgen_cls) -> bool:
    """Does ``advance(n)`` reproduce a contiguous ``Generator.random`` draw?

    Checked once per bit-generator type with a throwaway instance: split a
    5-double draw as 2 + 3 via ``advance`` and compare against the
    contiguous draw.  True for PCG64/PCG64DXSM/Philox; generators without
    ``advance`` (MT19937, SFC64) return False and use the serial path.
    """
    if not hasattr(bitgen_cls, "advance"):
        return False
    try:
        probe = bitgen_cls(12345)
        ref = np.random.Generator(_clone_bitgen(probe)).random(5)
        head = np.random.Generator(_clone_bitgen(probe)).random(2)
        tail_bg = _clone_bitgen(probe)
        tail_bg.advance(2)
        tail = np.random.Generator(tail_bg).random(3)
        return bool(np.array_equal(ref, np.concatenate([head, tail])))
    except (TypeError, AttributeError, ValueError):  # pragma: no cover - exotic bitgens
        return False


@lru_cache(maxsize=8)
def _raw_select_supported(bitgen_cls) -> bool:
    """Does ``integers(0, 2, n)`` equal the top bits of the raw uint32 stream?

    numpy's bounded-integers path for a range of 2 buffers each 64-bit raw
    word into two 32-bit halves (low half first) and keeps the top bit of
    each — equivalent to ``random_raw(ceil(n/2)).view(uint32) >> 31`` on a
    little-endian host.  Verified once per bit-generator type with two
    probes: an even-sized raw draw followed by another raw draw, and an
    odd-sized raw draw (which must write the leftover half-word back into
    the generator's buffer) followed by the canonical call that consumes
    that buffer.  Both also check ``random()`` continuity afterwards; any
    mismatch means every select draw uses the canonical call instead.
    """
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        return False
    try:
        # Probe A: even draws stay raw end to end.
        probe = bitgen_cls(12345)
        ref_gen = np.random.Generator(_clone_bitgen(probe))
        ref = np.concatenate([ref_gen.integers(0, 2, size=128), ref_gen.integers(0, 2, size=6)])
        raw_bg = _clone_bitgen(probe)
        first = _raw_select_bits(raw_bg, 128)
        second = _raw_select_bits(raw_bg, 6)
        if first is None or second is None:
            return False
        if not np.array_equal(ref, np.concatenate([first, second]).astype(ref.dtype)):
            return False
        if not np.array_equal(ref_gen.random(3), np.random.Generator(raw_bg).random(3)):
            return False
        # Probe B: an odd draw leaves a buffered half-word that the next
        # canonical bounded draw must consume exactly as numpy would.
        probe = bitgen_cls(54321)
        ref_gen = np.random.Generator(_clone_bitgen(probe))
        ref = np.concatenate([ref_gen.integers(0, 2, size=129), ref_gen.integers(0, 2, size=8)])
        raw_bg = _clone_bitgen(probe)
        first = _raw_select_bits(raw_bg, 129)
        if first is None or raw_bg.state.get("has_uint32") != 1:
            return False
        follow_gen = np.random.Generator(raw_bg)
        second = follow_gen.integers(0, 2, size=8)
        if not np.array_equal(ref, np.concatenate([first.astype(ref.dtype), second])):
            return False
        return bool(np.array_equal(ref_gen.random(3), follow_gen.random(3)))
    except (TypeError, AttributeError, ValueError, KeyError):  # pragma: no cover
        return False


def _raw_select_bits(bg, n: int) -> Optional[np.ndarray]:
    """``n`` fair-coin bits from raw words, bit-identical to ``integers(0, 2, n)``.

    Returns ``None`` when the generator holds a buffered 32-bit half (only
    possible after an odd-sized bounded draw elsewhere) — the caller then
    uses the canonical call, which consumes that buffer first.  After an odd
    ``n`` the leftover high half of the last word is written back into the
    generator's buffer, exactly as the canonical path leaves it.
    """
    state = bg.state
    if state.get("has_uint32"):
        return None
    raw = bg.random_raw((n + 1) // 2)
    raw = np.atleast_1d(np.asarray(raw, dtype=np.uint64))
    if n % 2:
        state = bg.state
        state["has_uint32"] = 1
        state["uinteger"] = int(raw[-1] >> np.uint64(32))
        bg.state = state
    # Sign of the int32 view == top bit of the uint32 half; one compare pass
    # beats shift + astype, and packbits accepts the bool result directly.
    return raw.view(np.int32)[:n] < 0


class ThreadedBackend(KernelBackend):
    """Worker-pool + batched-generation backend (bit-identical fast paths)."""

    name = "threaded"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------- plumbing
    def describe(self) -> dict:
        return {"name": self.name, "workers": self.workers, "numpy": np.__version__}

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-sc"
            )
        return self._pool

    def _chunks(self, n: int) -> Tuple[Tuple[int, int], ...]:
        """Split ``range(n)`` into up to ``workers`` contiguous spans."""
        parts = min(self.workers, n)
        bounds = np.linspace(0, n, parts + 1, dtype=np.int64)
        return tuple(
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(parts)
            if bounds[i + 1] > bounds[i]
        )

    def _run_tiled(self, n: int, task) -> None:
        """Run ``task(start, stop)`` over row spans on the pool."""
        spans = self._chunks(n)
        if len(spans) == 1:
            task(*spans[0])
            return
        pool = self._ensure_pool()
        futures = [pool.submit(task, start, stop) for start, stop in spans]
        for future in futures:
            future.result()

    def _tile_binary(self, ufunc, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.workers == 1 or a.size < MIN_PARALLEL_WORDS:
            return ufunc(a, b)
        out = np.empty_like(a)
        av, bv, ov = a.reshape(-1), b.reshape(-1), out.reshape(-1)

        def task(start: int, stop: int) -> None:
            ufunc(av[start:stop], bv[start:stop], out=ov[start:stop])

        self._run_tiled(av.size, task)
        return out

    # ------------------------------------------------------------- word ops
    def and_words(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._tile_binary(np.bitwise_and, a, b)

    def or_words(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._tile_binary(np.bitwise_or, a, b)

    def xor_words(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._tile_binary(np.bitwise_xor, a, b)

    def xnor_words(self, a: np.ndarray, b: np.ndarray, last_word_mask: np.uint64) -> np.ndarray:
        out = self._tile_binary(np.bitwise_xor, a, b)
        np.invert(out, out=out)
        out[..., -1] &= last_word_mask
        return out

    def mux_words(self, sel: np.ndarray, on_one: np.ndarray, on_zero: np.ndarray) -> np.ndarray:
        if self.workers == 1 or sel.size < MIN_PARALLEL_WORDS:
            return super().mux_words(sel, on_one, on_zero)
        out = np.empty_like(sel)
        sv = sel.reshape(-1)
        a_v, b_v, ov = on_one.reshape(-1), on_zero.reshape(-1), out.reshape(-1)

        def task(start: int, stop: int) -> None:
            s = sv[start:stop]
            ov[start:stop] = (s & a_v[start:stop]) | (~s & b_v[start:stop])

        self._run_tiled(sv.size, task)
        return out

    # ------------------------------------------------------------- popcount
    def popcount_reduce(self, words: np.ndarray) -> np.ndarray:
        if self.workers == 1 or words.ndim < 2 or words.size < MIN_PARALLEL_WORDS:
            return super().popcount_reduce(words)
        flat = words.reshape(-1, words.shape[-1])
        out = np.empty(flat.shape[0], dtype=np.int64)

        def task(start: int, stop: int) -> None:
            out[start:stop] = self.popcount_words(flat[start:stop]).sum(axis=-1, dtype=np.int64)

        self._run_tiled(flat.shape[0], task)
        return out.reshape(words.shape[:-1])

    def multiply_popcount(
        self, a: np.ndarray, b: np.ndarray, op: str, last_word_mask: np.uint64
    ) -> np.ndarray:
        if self.workers == 1 or a.ndim < 2 or a.size < MIN_PARALLEL_WORDS:
            return super().multiply_popcount(a, b, op, last_word_mask)
        if op not in ("and", "xnor"):
            raise ValueError(f"unknown multiply op {op!r} (expected 'and' or 'xnor')")
        av = a.reshape(-1, a.shape[-1])
        bv = b.reshape(-1, b.shape[-1])
        out = np.empty(av.shape[0], dtype=np.int64)

        def task(start: int, stop: int) -> None:
            if op == "and":
                prod = av[start:stop] & bv[start:stop]
            else:
                prod = ~(av[start:stop] ^ bv[start:stop])
                prod[..., -1] &= last_word_mask
            out[start:stop] = self.popcount_words(prod).sum(axis=-1, dtype=np.int64)

        self._run_tiled(av.shape[0], task)
        return out.reshape(a.shape[:-1])

    # ------------------------------------------------------ plane generation
    def bernoulli_plane(
        self, value_shape: Tuple[int, ...], length: int, probs, rng: np.random.Generator
    ):
        from repro.sc.packed import PackedBitPlane, WORD_BITS, _words_for

        value_shape = tuple(value_shape)
        rows = int(np.prod(value_shape, dtype=np.int64)) if value_shape else 1
        total = rows * length
        bg = rng.bit_generator
        if (
            self.workers == 1
            or total < MIN_PARALLEL_DRAWS
            or rows < 2
            or not _advance_split_supported(type(bg))
            or bg.state.get("has_uint32")
        ):
            return super().bernoulli_plane(value_shape, length, probs, rng)

        p = np.asarray(probs, dtype=float)
        p_rows = np.broadcast_to(p, value_shape).reshape(rows) if p.ndim else None
        num_words = _words_for(length)
        packed_bytes = (length + 7) // 8
        out = np.zeros((rows, num_words * 8), dtype=np.uint8)

        def task(start: int, stop: int) -> None:
            chunk_bg = _clone_bitgen(bg)
            if start:
                chunk_bg.advance(start * length)
            draws = np.random.Generator(chunk_bg).random((stop - start, length))
            if p_rows is None:
                bits = draws < p
            else:
                bits = draws < p_rows[start:stop, None]
            out[start:stop, :packed_bytes] = np.packbits(bits, axis=-1, bitorder="little")

        self._run_tiled(rows, task)
        bg.advance(total)  # the original generator consumed every draw
        words = out.view(np.uint64).reshape(value_shape + (num_words,))
        return PackedBitPlane(words, length)

    def select_plane(self, value_shape: Tuple[int, ...], length: int, rng: np.random.Generator):
        from repro.sc.packed import PackedBitPlane, _words_for

        value_shape = tuple(value_shape)
        rows = int(np.prod(value_shape, dtype=np.int64)) if value_shape else 1
        total = rows * length
        bg = rng.bit_generator
        if not _raw_select_supported(type(bg)):
            return super().select_plane(value_shape, length, rng)
        num_raw = (total + 1) // 2
        if (
            self.workers > 1
            and num_raw >= MIN_PARALLEL_DRAWS
            and _advance_split_supported(type(bg))
            and not bg.state.get("has_uint32")
        ):
            raw = np.empty(num_raw, dtype=np.uint64)

            def task(start: int, stop: int) -> None:
                chunk_bg = _clone_bitgen(bg)
                if start:
                    chunk_bg.advance(start)
                raw[start:stop] = chunk_bg.random_raw(stop - start)

            self._run_tiled(num_raw, task)
            bg.advance(num_raw)
            if total % 2:
                state = bg.state
                state["has_uint32"] = 1
                state["uinteger"] = int(raw[-1] >> np.uint64(32))
                bg.state = state
            bits = raw.view(np.int32)[:total] < 0
        else:
            bits = _raw_select_bits(bg, total)
            if bits is None:  # pending buffered half-word: canonical path
                return super().select_plane(value_shape, length, rng)
        num_words = _words_for(length)
        packed_bytes = (length + 7) // 8
        out = np.zeros((rows, num_words * 8), dtype=np.uint8)
        out[:, :packed_bytes] = np.packbits(
            bits.reshape(rows, length), axis=-1, bitorder="little"
        )
        words = out.view(np.uint64).reshape(value_shape + (num_words,))
        return PackedBitPlane(words, length)

    # ------------------------------------------------------------------- FSM
    def fsm_trajectory(
        self,
        stream_bytes: np.ndarray,
        pre: np.ndarray,
        nxt: np.ndarray,
        initial_state: int,
        num_states: int,
    ) -> np.ndarray:
        flat = np.ascontiguousarray(stream_bytes).reshape(-1, stream_bytes.shape[-1])
        if self.workers == 1 or flat.shape[0] < 2 or flat.size < MIN_PARALLEL_WORDS:
            return super().fsm_trajectory(stream_bytes, pre, nxt, initial_state, num_states)
        out = np.empty(flat.shape + (8,), dtype=pre.dtype)

        def task(start: int, stop: int) -> None:
            out[start:stop] = KernelBackend.fsm_trajectory(
                self, flat[start:stop], pre, nxt, initial_state, num_states
            )

        self._run_tiled(flat.shape[0], task)
        return out.reshape(stream_bytes.shape + (8,))

    def fsm_forward_bytes(
        self,
        stream_bytes: np.ndarray,
        nxt: np.ndarray,
        outbyte: np.ndarray,
        initial_state: int,
        num_states: int,
    ) -> np.ndarray:
        flat = np.ascontiguousarray(stream_bytes).reshape(-1, stream_bytes.shape[-1])
        if self.workers == 1 or flat.shape[0] < 2 or flat.size < MIN_PARALLEL_WORDS:
            return super().fsm_forward_bytes(stream_bytes, nxt, outbyte, initial_state, num_states)
        out = np.empty(flat.shape, dtype=outbyte.dtype)

        def task(start: int, stop: int) -> None:
            out[start:stop] = KernelBackend.fsm_forward_bytes(
                self, flat[start:stop], nxt, outbyte, initial_state, num_states
            )

        self._run_tiled(flat.shape[0], task)
        return out.reshape(stream_bytes.shape)
