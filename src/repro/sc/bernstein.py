"""Bernstein-polynomial SC nonlinear units (baseline family #2).

The ReSC-style architecture (Qian et al., the paper's reference [18])
approximates a function ``f: [0, 1] -> [0, 1]`` with a Bernstein polynomial
whose coefficients lie in the unit interval.  Every clock cycle the unit
draws ``degree`` independent stochastic copies of the input, counts how many
are 1 (say ``j``), and emits one bit of the stochastic stream encoding the
``j``-th Bernstein coefficient.  Averaged over the stream, the output
probability is exactly the Bernstein polynomial evaluated at the input
probability.

For functions on a general interval (GELU on ``[-x_range, x_range]``) the
unit brackets the polynomial with affine input/output maps, the standard
trick in the SC literature.

The baseline's weaknesses, per Section III-A of the paper: the approximation
error falls only slowly with the number of terms, the random fluctuation
falls only as ``1/sqrt(BSL)``, and every term costs another stochastic
number generator.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
from scipy.optimize import lsq_linear
from scipy.special import comb

from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


def bernstein_basis(u: np.ndarray, degree: int) -> np.ndarray:
    """Matrix of Bernstein basis polynomials ``B_{k,degree}(u)``.

    Shape: ``(len(u), degree + 1)``.
    """
    u = np.atleast_1d(np.asarray(u, dtype=float))
    ks = np.arange(degree + 1)
    return comb(degree, ks)[None, :] * u[:, None] ** ks[None, :] * (1 - u[:, None]) ** (degree - ks)[None, :]


def fit_bernstein_coefficients(
    target: Callable[[np.ndarray], np.ndarray],
    degree: int,
    num_samples: int = 512,
    sample_points: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Least-squares fit of unit-interval Bernstein coefficients to ``target``.

    ``target`` maps ``[0, 1] -> [0, 1]``.  Coefficients are constrained to
    ``[0, 1]`` — a hard requirement of the stochastic implementation, which
    realises each coefficient as a probability — so the fit is a bounded
    linear least-squares problem.  ``sample_points`` (values in [0, 1])
    selects where the fit is evaluated; passing calibration data here makes
    the fit distribution-aware, the same courtesy the SI blocks get from
    their scale calibration.
    """
    check_positive_int(degree, "degree")
    if sample_points is None:
        u = np.linspace(0.0, 1.0, num_samples)
    else:
        u = np.clip(np.asarray(sample_points, dtype=float).reshape(-1), 0.0, 1.0)
        if u.size < degree + 1:
            raise ValueError("need at least degree + 1 sample points for the fit")
        # Anchor the fit with a light uniform grid so the polynomial stays
        # sane outside the bulk of the calibration distribution.
        u = np.concatenate([u, np.linspace(0.0, 1.0, 64)])
    basis = bernstein_basis(u, degree)
    y = np.clip(np.asarray(target(u), dtype=float), 0.0, 1.0)
    result = lsq_linear(basis, y, bounds=(0.0, 1.0))
    return np.clip(result.x, 0.0, 1.0)


class BernsteinPolynomialUnit:
    """Stochastic Bernstein-polynomial evaluator for a scalar function.

    Parameters
    ----------
    target:
        The real function to approximate (e.g. exact GELU).
    num_terms:
        Number of Bernstein coefficients (= polynomial degree + 1); the
        paper's Table III evaluates 4, 5 and 6 terms.
    input_range:
        The input interval ``[-input_range, input_range]`` mapped onto
        ``[0, 1]`` for the stochastic core.
    output_range:
        Optional output interval ``(lo, hi)``; inferred from the target on
        the input range when omitted.
    calibration_samples:
        Optional operand samples used to weight the coefficient fit towards
        the distribution the unit will actually see (the counterpart of the
        SI blocks' output-scale calibration).
    """

    def __init__(
        self,
        target: Callable[[np.ndarray], np.ndarray],
        num_terms: int = 4,
        input_range: float = 4.0,
        output_range: Optional[tuple] = None,
        calibration_samples: Optional[np.ndarray] = None,
    ) -> None:
        check_positive_int(num_terms, "num_terms")
        if num_terms < 2:
            raise ValueError("a Bernstein unit needs at least 2 terms")
        if input_range <= 0:
            raise ValueError("input_range must be positive")
        self.target = target
        self.num_terms = num_terms
        self.degree = num_terms - 1
        self.input_range = float(input_range)

        xs = np.linspace(-self.input_range, self.input_range, 1024)
        ys = np.asarray(target(xs), dtype=float)
        if output_range is None:
            lo, hi = float(ys.min()), float(ys.max())
            pad = 0.05 * (hi - lo + 1e-12)
            output_range = (lo - pad, hi + pad)
        self.output_lo, self.output_hi = float(output_range[0]), float(output_range[1])
        if self.output_hi <= self.output_lo:
            raise ValueError("output range must be non-degenerate")

        def unit_target(u: np.ndarray) -> np.ndarray:
            x = self._u_to_x(u)
            y = np.asarray(target(x), dtype=float)
            return self._y_to_v(y)

        sample_points = None
        if calibration_samples is not None:
            sample_points = self._x_to_u(np.asarray(calibration_samples, dtype=float))
        self.coefficients = fit_bernstein_coefficients(
            unit_target, self.degree, sample_points=sample_points
        )

    # ------------------------------------------------------------- mappings
    def _x_to_u(self, x: np.ndarray) -> np.ndarray:
        return np.clip((np.asarray(x, dtype=float) + self.input_range) / (2 * self.input_range), 0.0, 1.0)

    def _u_to_x(self, u: np.ndarray) -> np.ndarray:
        return np.asarray(u, dtype=float) * 2 * self.input_range - self.input_range

    def _y_to_v(self, y: np.ndarray) -> np.ndarray:
        return np.clip((np.asarray(y, dtype=float) - self.output_lo) / (self.output_hi - self.output_lo), 0.0, 1.0)

    def _v_to_y(self, v: np.ndarray) -> np.ndarray:
        return np.asarray(v, dtype=float) * (self.output_hi - self.output_lo) + self.output_lo

    # ------------------------------------------------------------- analytic
    def polynomial(self, values: np.ndarray) -> np.ndarray:
        """Deterministic (infinite-BSL) output of the fitted polynomial."""
        u = self._x_to_u(values)
        basis = bernstein_basis(u, self.degree)
        v = basis @ self.coefficients
        return self._v_to_y(v).reshape(np.shape(values))

    def approximation_error(self, values: np.ndarray) -> float:
        """Mean absolute error of the polynomial itself (no stochastic noise)."""
        values = np.asarray(values, dtype=float)
        return float(np.mean(np.abs(self.polynomial(values) - self.target(values))))

    # ------------------------------------------------------------ stochastic
    def evaluate(self, values: np.ndarray, bitstream_length: int, seed: SeedLike = None) -> np.ndarray:
        """Stochastic evaluation with the ReSC counting architecture.

        Every cycle, ``degree`` independent Bernoulli copies of the input
        probability are summed; the sum selects which coefficient's stochastic
        bit is forwarded to the output.  The decoded output is the empirical
        probability mapped back to the real output range.

        .. note::
           Since the packed-engine refactor this draws one uniform per
           output bit instead of one per coefficient stream, so seeded noise
           realisations differ from earlier versions (the distribution of
           the outputs is unchanged — only the per-seed sample moves).

        .. deprecated::
           The per-call ``bitstream_length``/``seed`` arguments are the
           historical signature drift between block families.  New code
           should build the unit through the block registry —
           ``repro.blocks.build("gelu/bernstein", num_terms=t,
           bitstream_length=L, seed=s)`` — where those parameters live in
           the spec and ``evaluate(values)`` is uniform across families.
        """
        check_positive_int(bitstream_length, "bitstream_length")
        rng = as_generator(seed)
        values = np.asarray(values, dtype=float)
        u = self._x_to_u(values)
        flat_u = u.reshape(-1)

        # degree independent input streams per value: (n_values, degree, L)
        draws = rng.random((flat_u.size, self.degree, bitstream_length))
        input_bits = draws < flat_u[:, None, None]
        select = input_bits.sum(axis=1)  # in [0, degree]

        # Only the selected coefficient's stochastic bit reaches the output
        # each cycle, so one uniform draw per output bit compared against the
        # selected coefficient suffices — the num_terms unselected coefficient
        # streams of the hardware never need to be materialised.
        coeff_draws = rng.random((flat_u.size, bitstream_length))
        out_bits = coeff_draws < self.coefficients[select]
        v = out_bits.mean(axis=1)
        return self._v_to_y(v).reshape(values.shape)

    # -------------------------------------------------------------- hardware
    def build_hardware(self, bitstream_length: int, lfsr_width: int = 8) -> HardwareModule:
        """Structural model of the ReSC unit at a given bitstream length.

        One shared LFSR, ``degree`` comparators for the independent input
        copies, ``num_terms`` comparators for the coefficient streams, an
        adder counting the input bits, a coefficient-selection MUX tree and
        pipeline registers.  The datapath has no cycle-to-cycle recurrence,
        so the design is deeply pipelined and the per-cycle period is set by
        a register-to-register stage; one result still takes ``bitstream_length``
        cycles because the output probability is only defined over the whole
        stream.
        """
        check_positive_int(bitstream_length, "bitstream_length")
        adder_cells = max(1, int(np.ceil(np.log2(self.num_terms))))
        inventory = ComponentInventory(
            {
                "LFSR_BIT": lfsr_width,
                "CMP_BIT": lfsr_width * (self.degree + self.num_terms) // 2,
                "FULL_ADDER": adder_cells,
                "MUX2": self.num_terms - 1,
                "DFF": 3,
                "SRAM_BIT": 8 * self.num_terms,  # coefficient storage
            }
        )
        return HardwareModule(
            name=f"bernstein_{self.num_terms}term_L{bitstream_length}",
            inventory=inventory,
            critical_path=("DFF",),
            cycles=bitstream_length,
            pipelined=True,
            metadata={
                "num_terms": self.num_terms,
                "degree": self.degree,
                "input_range": self.input_range,
                "bitstream_length": bitstream_length,
            },
        )
