"""Bitstream containers for stochastic and thermometer coding.

Two containers cover everything the paper needs:

* :class:`StochasticStream` stores explicit random bit arrays for the
  traditional unipolar/bipolar encodings used by the FSM and Bernstein
  baselines.  Bits are materialised because those designs process them
  serially and their error *is* the random fluctuation of the bits.

* :class:`ThermometerStream` stores only the one-count per value, because a
  thermometer (deterministic) stream is fully described by how many leading
  1s it has.  All deterministic SC arithmetic (truth-table multiply, BSN
  add, re-scaling) is exact arithmetic on these counts, which keeps the
  emulation fast enough to run inside a ViT forward pass.

Both containers are batch-first: a single object holds a whole tensor of SC
values, mirroring how a parallel SC accelerator processes a whole tile at
once.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sc.encodings import (
    bipolar_decode,
    bipolar_encode,
    thermometer_decode_counts,
    thermometer_encode_counts,
    unipolar_decode,
    unipolar_encode,
)
from repro.sc.packed import PackedBitPlane
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_binary_array, check_in_choices, check_positive_int

_ENCODINGS = ("unipolar", "bipolar")


class StochasticStream:
    """A batch of stochastic bitstreams (unipolar or bipolar encoding).

    ``bits`` has shape ``values.shape + (length,)``; the last axis is the
    bitstream (time) axis.

    Internally the stream holds at least one of two equivalent
    representations and converts between them lazily:

    * an explicit ``int8`` bit array (the seed representation, still what
      the public ``bits`` attribute exposes), and
    * a :class:`repro.sc.packed.PackedBitPlane` storing 64 bits per
      ``uint64`` word, which is what the SC arithmetic fast paths operate
      on (word-wise AND/XNOR/MUX, popcount decode).

    Construction from explicit bits validates them by default; internal fast
    paths that produce bits by construction pass ``validate=False``.  The two
    representations are bit-for-bit interchangeable; converting never changes
    a single bit.  (The cached packed view assumes ``bits`` is not mutated in
    place afterwards — assign a fresh array to ``bits`` instead.)
    """

    def __init__(
        self,
        bits: Optional[np.ndarray] = None,
        encoding: str = "unipolar",
        *,
        packed: Optional[PackedBitPlane] = None,
        validate: bool = True,
    ) -> None:
        check_in_choices(encoding, _ENCODINGS, "encoding")
        self.encoding = encoding
        self._bits: Optional[np.ndarray] = None
        self._packed: Optional[PackedBitPlane] = None
        if packed is not None:
            if bits is not None:
                raise ValueError("pass either bits or packed, not both")
            self._packed = packed
        else:
            if bits is None:
                raise TypeError("StochasticStream needs bits or packed")
            arr = np.asarray(bits)
            if arr.ndim < 1:
                raise ValueError("bits must have at least one (stream) axis")
            if validate:
                check_binary_array(arr, "bits")
            self._bits = arr.astype(np.int8)

    # ------------------------------------------------------------ properties
    @property
    def bits(self) -> np.ndarray:
        """Explicit ``int8`` bit array (materialised on first access)."""
        if self._bits is None:
            self._bits = self._packed.to_bits(np.int8)
        return self._bits

    @bits.setter
    def bits(self, value: np.ndarray) -> None:
        arr = np.asarray(value)
        if arr.ndim < 1:
            raise ValueError("bits must have at least one (stream) axis")
        check_binary_array(arr, "bits")
        self._bits = arr.astype(np.int8)
        self._packed = None

    @property
    def packed(self) -> PackedBitPlane:
        """Packed-word view of the same bits (built on first access)."""
        if self._packed is None:
            self._packed = PackedBitPlane.from_bits(self._bits)
        return self._packed

    @property
    def length(self) -> int:
        """Bitstream length (BSL)."""
        if self._bits is not None:
            return int(self._bits.shape[-1])
        return self._packed.length

    @property
    def value_shape(self) -> Tuple[int, ...]:
        """Shape of the encoded value tensor."""
        if self._bits is not None:
            return self._bits.shape[:-1]
        return self._packed.value_shape

    # -------------------------------------------------------------- codecs
    @classmethod
    def from_packed(cls, packed: PackedBitPlane, encoding: str = "unipolar") -> "StochasticStream":
        """Wrap an existing packed plane without materialising bits."""
        return cls(packed=packed, encoding=encoding)

    @classmethod
    def encode(
        cls,
        values: np.ndarray,
        length: int,
        encoding: str = "unipolar",
        seed: SeedLike = None,
    ) -> "StochasticStream":
        """Encode real values into random bitstreams of the given length.

        Each bit is an independent Bernoulli draw with the probability given
        by the encoding — exactly what a comparator-based SNG produces with
        an ideal random source.  Use :class:`repro.sc.sng.StochasticNumberGenerator`
        for LFSR-driven (correlated, hardware-faithful) generation.
        """
        check_positive_int(length, "length")
        check_in_choices(encoding, _ENCODINGS, "encoding")
        rng = as_generator(seed)
        values = np.asarray(values, dtype=float)
        probs = unipolar_encode(values) if encoding == "unipolar" else bipolar_encode(values)
        from repro.sc.packed import _kernels

        packed = _kernels().bernoulli_plane(values.shape, length, probs, rng)
        return cls(packed=packed, encoding=encoding)

    def probabilities(self) -> np.ndarray:
        """Empirical probability of a 1 along the stream axis."""
        return self.ones_count() / self.length

    def decode(self) -> np.ndarray:
        """Decode the streams back to real values (empirical estimate)."""
        probs = self.probabilities()
        if self.encoding == "unipolar":
            return unipolar_decode(probs)
        return bipolar_decode(probs)

    def ones_count(self) -> np.ndarray:
        """Number of 1s per stream (popcount on the packed fast path)."""
        if self._packed is not None:
            return self._packed.popcount()
        return self._bits.sum(axis=-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = "packed" if self._bits is None else "bits"
        return (
            f"StochasticStream(value_shape={self.value_shape}, "
            f"length={self.length}, encoding={self.encoding!r}, backing={backing})"
        )


class ThermometerStream:
    """A batch of deterministic thermometer-coded values.

    A value ``x`` is represented as ``x = scale * (count - length / 2)``
    where ``count`` is the number of leading 1s in the L-bit stream
    (Section II-A of the paper).  Only the counts are stored.
    """

    def __init__(self, counts: np.ndarray, length: int, scale: float, *, validate: bool = True) -> None:
        if validate:
            check_positive_int(length, "length")
            if scale <= 0:
                raise ValueError("scale must be positive")
        counts = np.asarray(counts)
        if validate and counts.size:
            if counts.min() < 0 or counts.max() > length:
                raise ValueError(f"counts must lie in [0, {length}]")
            if not np.issubdtype(counts.dtype, np.integer):
                if not np.allclose(counts, np.round(counts)):
                    raise ValueError("counts must be integers")
        self.counts = counts.astype(np.int64)
        self.length = int(length)
        self.scale = float(scale)

    # ------------------------------------------------------------ properties
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the encoded value tensor."""
        return self.counts.shape

    @property
    def max_abs_value(self) -> float:
        """Largest magnitude representable: ``scale * length / 2``."""
        return self.scale * self.length / 2.0

    @property
    def resolution(self) -> float:
        """Value difference between adjacent levels (= scale)."""
        return self.scale

    # -------------------------------------------------------------- codecs
    @classmethod
    def encode(cls, values: np.ndarray, length: int, scale: float) -> "ThermometerStream":
        """Quantise real values onto the thermometer grid (saturating)."""
        counts = thermometer_encode_counts(values, length, scale)
        # The encoder clips onto [0, length], so re-validating the counts
        # would only re-scan the array the hot loops just produced.
        return cls(counts=counts, length=length, scale=scale, validate=False)

    @classmethod
    def from_quantized(
        cls,
        signed_levels: np.ndarray,
        length: int,
        scale: float,
        *,
        validate: bool = True,
    ) -> "ThermometerStream":
        """Build a stream from signed integer levels in ``[-L/2, L/2]``.

        Useful when an upstream quantizer (e.g. LSQ in the network substrate)
        already produced integer levels and no further rounding is wanted.
        Internal callers whose levels are bounded by construction may pass
        ``validate=False`` to skip the range scan.
        """
        levels = np.asarray(signed_levels)
        counts = levels + length // 2
        return cls(counts=counts, length=length, scale=scale, validate=validate)

    def decode(self) -> np.ndarray:
        """Return the represented real values."""
        return thermometer_decode_counts(self.counts, self.length, self.scale)

    def signed_levels(self) -> np.ndarray:
        """Signed integer levels ``count - L/2`` in ``[-L/2, L/2]``."""
        return self.counts - self.length // 2

    # ------------------------------------------------------------ utilities
    def copy(self) -> "ThermometerStream":
        """Deep copy (counts array is copied)."""
        return ThermometerStream(self.counts.copy(), self.length, self.scale, validate=False)

    def with_counts(self, counts: np.ndarray) -> "ThermometerStream":
        """New stream sharing length/scale but holding different counts."""
        return ThermometerStream(counts, self.length, self.scale)

    def quantization_error(self, reference: np.ndarray) -> np.ndarray:
        """Elementwise error of this stream against reference real values."""
        reference = np.asarray(reference, dtype=float)
        if reference.shape != self.shape:
            raise ValueError("reference shape must match the stream shape")
        return self.decode() - reference

    def compatible_with(self, other: "ThermometerStream", rtol: float = 1e-9) -> bool:
        """True when two streams share scale (requirement for BSN addition)."""
        return bool(np.isclose(self.scale, other.scale, rtol=rtol))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThermometerStream(shape={self.shape}, length={self.length}, "
            f"scale={self.scale:g})"
        )


def expand_thermometer_bits(stream: ThermometerStream) -> np.ndarray:
    """Materialise the explicit bit patterns of a thermometer stream.

    Shape: ``stream.shape + (length,)``.  Exponential in memory for long
    streams — intended for tests, visualisation and the didactic examples,
    not for the accelerator emulation path.
    """
    counts = stream.counts[..., None]
    positions = np.arange(stream.length)
    return (positions < counts).astype(np.int8)
