"""Bitstream containers for stochastic and thermometer coding.

Two containers cover everything the paper needs:

* :class:`StochasticStream` stores explicit random bit arrays for the
  traditional unipolar/bipolar encodings used by the FSM and Bernstein
  baselines.  Bits are materialised because those designs process them
  serially and their error *is* the random fluctuation of the bits.

* :class:`ThermometerStream` stores only the one-count per value, because a
  thermometer (deterministic) stream is fully described by how many leading
  1s it has.  All deterministic SC arithmetic (truth-table multiply, BSN
  add, re-scaling) is exact arithmetic on these counts, which keeps the
  emulation fast enough to run inside a ViT forward pass.

Both containers are batch-first: a single object holds a whole tensor of SC
values, mirroring how a parallel SC accelerator processes a whole tile at
once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sc.encodings import (
    bipolar_decode,
    bipolar_encode,
    thermometer_decode_counts,
    thermometer_encode_counts,
    unipolar_decode,
    unipolar_encode,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_choices, check_positive_int

_ENCODINGS = ("unipolar", "bipolar")


@dataclass
class StochasticStream:
    """A batch of stochastic bitstreams (unipolar or bipolar encoding).

    ``bits`` has shape ``values.shape + (length,)``; the last axis is the
    bitstream (time) axis.
    """

    bits: np.ndarray
    encoding: str = "unipolar"

    def __post_init__(self) -> None:
        check_in_choices(self.encoding, _ENCODINGS, "encoding")
        bits = np.asarray(self.bits)
        if bits.ndim < 1:
            raise ValueError("bits must have at least one (stream) axis")
        if bits.size and not np.isin(bits, (0, 1)).all():
            raise ValueError("bits must contain only 0s and 1s")
        self.bits = bits.astype(np.int8)

    # ------------------------------------------------------------ properties
    @property
    def length(self) -> int:
        """Bitstream length (BSL)."""
        return int(self.bits.shape[-1])

    @property
    def value_shape(self) -> Tuple[int, ...]:
        """Shape of the encoded value tensor."""
        return self.bits.shape[:-1]

    # -------------------------------------------------------------- codecs
    @classmethod
    def encode(
        cls,
        values: np.ndarray,
        length: int,
        encoding: str = "unipolar",
        seed: SeedLike = None,
    ) -> "StochasticStream":
        """Encode real values into random bitstreams of the given length.

        Each bit is an independent Bernoulli draw with the probability given
        by the encoding — exactly what a comparator-based SNG produces with
        an ideal random source.  Use :class:`repro.sc.sng.StochasticNumberGenerator`
        for LFSR-driven (correlated, hardware-faithful) generation.
        """
        check_positive_int(length, "length")
        check_in_choices(encoding, _ENCODINGS, "encoding")
        rng = as_generator(seed)
        values = np.asarray(values, dtype=float)
        probs = unipolar_encode(values) if encoding == "unipolar" else bipolar_encode(values)
        draws = rng.random(values.shape + (length,))
        bits = (draws < probs[..., None]).astype(np.int8)
        return cls(bits=bits, encoding=encoding)

    def probabilities(self) -> np.ndarray:
        """Empirical probability of a 1 along the stream axis."""
        return self.bits.mean(axis=-1)

    def decode(self) -> np.ndarray:
        """Decode the streams back to real values (empirical estimate)."""
        probs = self.probabilities()
        if self.encoding == "unipolar":
            return unipolar_decode(probs)
        return bipolar_decode(probs)

    def ones_count(self) -> np.ndarray:
        """Number of 1s per stream."""
        return self.bits.sum(axis=-1)


class ThermometerStream:
    """A batch of deterministic thermometer-coded values.

    A value ``x`` is represented as ``x = scale * (count - length / 2)``
    where ``count`` is the number of leading 1s in the L-bit stream
    (Section II-A of the paper).  Only the counts are stored.
    """

    def __init__(self, counts: np.ndarray, length: int, scale: float) -> None:
        check_positive_int(length, "length")
        if scale <= 0:
            raise ValueError("scale must be positive")
        counts = np.asarray(counts)
        if counts.size and (counts.min() < 0 or counts.max() > length):
            raise ValueError(f"counts must lie in [0, {length}]")
        if counts.size and not np.issubdtype(counts.dtype, np.integer):
            if not np.allclose(counts, np.round(counts)):
                raise ValueError("counts must be integers")
        self.counts = counts.astype(np.int64)
        self.length = int(length)
        self.scale = float(scale)

    # ------------------------------------------------------------ properties
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the encoded value tensor."""
        return self.counts.shape

    @property
    def max_abs_value(self) -> float:
        """Largest magnitude representable: ``scale * length / 2``."""
        return self.scale * self.length / 2.0

    @property
    def resolution(self) -> float:
        """Value difference between adjacent levels (= scale)."""
        return self.scale

    # -------------------------------------------------------------- codecs
    @classmethod
    def encode(cls, values: np.ndarray, length: int, scale: float) -> "ThermometerStream":
        """Quantise real values onto the thermometer grid (saturating)."""
        counts = thermometer_encode_counts(values, length, scale)
        return cls(counts=counts, length=length, scale=scale)

    @classmethod
    def from_quantized(cls, signed_levels: np.ndarray, length: int, scale: float) -> "ThermometerStream":
        """Build a stream from signed integer levels in ``[-L/2, L/2]``.

        Useful when an upstream quantizer (e.g. LSQ in the network substrate)
        already produced integer levels and no further rounding is wanted.
        """
        levels = np.asarray(signed_levels)
        counts = levels + length // 2
        return cls(counts=counts, length=length, scale=scale)

    def decode(self) -> np.ndarray:
        """Return the represented real values."""
        return thermometer_decode_counts(self.counts, self.length, self.scale)

    def signed_levels(self) -> np.ndarray:
        """Signed integer levels ``count - L/2`` in ``[-L/2, L/2]``."""
        return self.counts - self.length // 2

    # ------------------------------------------------------------ utilities
    def copy(self) -> "ThermometerStream":
        """Deep copy (counts array is copied)."""
        return ThermometerStream(self.counts.copy(), self.length, self.scale)

    def with_counts(self, counts: np.ndarray) -> "ThermometerStream":
        """New stream sharing length/scale but holding different counts."""
        return ThermometerStream(counts, self.length, self.scale)

    def quantization_error(self, reference: np.ndarray) -> np.ndarray:
        """Elementwise error of this stream against reference real values."""
        reference = np.asarray(reference, dtype=float)
        if reference.shape != self.shape:
            raise ValueError("reference shape must match the stream shape")
        return self.decode() - reference

    def compatible_with(self, other: "ThermometerStream", rtol: float = 1e-9) -> bool:
        """True when two streams share scale (requirement for BSN addition)."""
        return bool(np.isclose(self.scale, other.scale, rtol=rtol))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThermometerStream(shape={self.shape}, length={self.length}, "
            f"scale={self.scale:g})"
        )


def expand_thermometer_bits(stream: ThermometerStream) -> np.ndarray:
    """Materialise the explicit bit patterns of a thermometer stream.

    Shape: ``stream.shape + (length,)``.  Exponential in memory for long
    streams — intended for tests, visualisation and the didactic examples,
    not for the accelerator emulation path.
    """
    counts = stream.counts[..., None]
    positions = np.arange(stream.length)
    return (positions < counts).astype(np.int8)
