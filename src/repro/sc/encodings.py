"""Value <-> probability mappings for the SC encodings used in the paper.

Three encodings appear in ASCEND and its baselines:

* **unipolar** — a value in [0, 1] is the probability of a 1 in the stream,
* **bipolar** — a value in [-1, 1] is ``2 p - 1`` where ``p`` is the
  probability of a 1,
* **thermometer** — a deterministic format where all 1s appear at the start
  of the stream; an L-bit stream with ``n`` ones represents
  ``alpha * (n - L / 2)`` for a scaling factor ``alpha`` (Section II-A).

The functions here convert between real values, probabilities and integer
one-counts.  The stream containers in :mod:`repro.sc.bitstream` use them.
"""

from __future__ import annotations

import numpy as np

from repro.utils.numeric import round_half_away_from_zero
from repro.utils.validation import check_positive_int


def unipolar_encode(values: np.ndarray) -> np.ndarray:
    """Map real values in [0, 1] to 1-probabilities (identity with checks)."""
    arr = np.asarray(values, dtype=float)
    if arr.size and (arr.min() < 0.0 or arr.max() > 1.0):
        raise ValueError("unipolar encoding requires values in [0, 1]")
    return arr


def unipolar_decode(probabilities: np.ndarray) -> np.ndarray:
    """Map 1-probabilities back to values (identity)."""
    return np.asarray(probabilities, dtype=float)


def bipolar_encode(values: np.ndarray) -> np.ndarray:
    """Map real values in [-1, 1] to 1-probabilities ``(x + 1) / 2``."""
    arr = np.asarray(values, dtype=float)
    if arr.size and (arr.min() < -1.0 or arr.max() > 1.0):
        raise ValueError("bipolar encoding requires values in [-1, 1]")
    return (arr + 1.0) / 2.0


def bipolar_decode(probabilities: np.ndarray) -> np.ndarray:
    """Map 1-probabilities back to bipolar values ``2 p - 1``."""
    return 2.0 * np.asarray(probabilities, dtype=float) - 1.0


def thermometer_levels(length: int, scale: float) -> np.ndarray:
    """All representable values of an L-bit thermometer stream with ``scale``.

    An L-bit stream represents L + 1 levels
    ``scale * (-L/2), ..., scale * (L/2)`` — the coding-efficiency fact
    behind the paper's Section III-C efficiency discussion.
    """
    check_positive_int(length, "length")
    if scale <= 0:
        raise ValueError("scale must be positive")
    counts = np.arange(length + 1)
    return scale * (counts - length / 2.0)


def thermometer_encode_counts(values: np.ndarray, length: int, scale: float) -> np.ndarray:
    """Quantise real values to thermometer one-counts.

    Returns integer counts in ``[0, length]``; values outside the
    representable range saturate (the hardware clamps the same way).
    """
    check_positive_int(length, "length")
    if scale <= 0:
        raise ValueError("scale must be positive")
    arr = np.asarray(values, dtype=float)
    counts = round_half_away_from_zero(arr / scale + length / 2.0)
    return np.clip(counts, 0, length).astype(np.int64)


def thermometer_decode_counts(counts: np.ndarray, length: int, scale: float) -> np.ndarray:
    """Map thermometer one-counts back to real values."""
    check_positive_int(length, "length")
    if scale <= 0:
        raise ValueError("scale must be positive")
    arr = np.asarray(counts, dtype=float)
    if arr.size and (arr.min() < 0 or arr.max() > length):
        raise ValueError(f"counts must lie in [0, {length}]")
    return scale * (arr - length / 2.0)


def thermometer_bits_from_count(count: int, length: int) -> np.ndarray:
    """Expand a one-count into the explicit L-bit thermometer pattern.

    Only used by tests and didactic examples; the arithmetic blocks operate
    on counts directly because the bit patterns are fully determined by them.
    """
    check_positive_int(length, "length")
    if not 0 <= count <= length:
        raise ValueError(f"count must lie in [0, {length}], got {count}")
    bits = np.zeros(length, dtype=np.int8)
    bits[:count] = 1
    return bits


def count_from_thermometer_bits(bits: np.ndarray) -> int:
    """Recover the one-count from an explicit thermometer bit pattern.

    Raises when the pattern is not a valid thermometer code (a 1 after a 0).
    """
    arr = np.asarray(bits).astype(np.int8)
    if arr.ndim != 1:
        raise ValueError("expected a 1-D bit pattern")
    count = int(arr.sum())
    if not np.array_equal(arr, thermometer_bits_from_count(count, arr.size)):
        raise ValueError("bit pattern is not a valid thermometer code")
    return count
