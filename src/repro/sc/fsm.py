"""FSM-based SC nonlinear function units (baseline family #1).

The classical way to compute a nonlinear function on a stochastic bitstream
is a finite state machine built around a saturating up/down counter (Brown &
Card; used for tanh/sigmoid/ReLU by the CNN-oriented SC accelerators the
paper cites as [6]-[9]).  The input stream drives the counter up on 1s and
down on 0s; an output rule maps the current state (and optionally the input
bit) to the output bit.

These designs have the two weaknesses Section III-A describes:

* they process the stream serially, so latency grows linearly with the BSL
  and the output exhibits random fluctuation that only long streams average
  out,
* for GELU-like functions the output saturates at zero over the negative
  input range, which is a *systematic* error no BSL can remove (Fig. 2a).

The implementations here are functional bit-level simulations plus the
structural hardware description used by the cost model.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.sc.bitstream import StochasticStream
from repro.sc.sng import StochasticNumberGenerator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


class FsmNonlinearUnit:
    """Generic saturating-counter FSM processing a bipolar bitstream.

    Parameters
    ----------
    num_states:
        Number of counter states; the classic stanh(N/2 * x) uses the state
        threshold rule with ``N`` states.
    output_rule:
        Callable ``(state, input_bit, cycle) -> output_bit`` evaluated every
        cycle.  ``state`` is the counter value *before* the update.
    name:
        Unit name used for hardware reports.
    """

    def __init__(
        self,
        num_states: int,
        output_rule: Callable[[np.ndarray, np.ndarray, int], np.ndarray],
        name: str = "fsm_unit",
    ) -> None:
        check_positive_int(num_states, "num_states")
        if num_states < 2:
            raise ValueError("an FSM unit needs at least 2 states")
        self.num_states = num_states
        self.output_rule = output_rule
        self.name = name

    # -------------------------------------------------------------- simulate
    def process(self, stream: StochasticStream, initial_state: Optional[int] = None) -> StochasticStream:
        """Run the FSM over a bipolar input stream, producing a bipolar stream."""
        if stream.encoding != "bipolar":
            raise ValueError("FSM nonlinear units operate on bipolar streams")
        bits = stream.bits
        length = stream.length
        if initial_state is None:
            initial_state = self.num_states // 2
        state = np.full(stream.value_shape, initial_state, dtype=np.int64)
        out = np.empty_like(bits)
        for cycle in range(length):
            in_bit = bits[..., cycle]
            out[..., cycle] = self.output_rule(state, in_bit, cycle)
            state = np.clip(state + (2 * in_bit - 1), 0, self.num_states - 1)
        return StochasticStream(bits=out.astype(np.int8), encoding="bipolar")

    def evaluate(
        self,
        values: np.ndarray,
        bitstream_length: int,
        seed: SeedLike = None,
        input_scale: float = 1.0,
    ) -> np.ndarray:
        """End-to-end: encode values, run the FSM, decode the outputs.

        ``input_scale`` maps real values into the bipolar range: the encoded
        stream represents ``value / input_scale`` and the decoded output is
        multiplied back, mirroring how scaling factors bracket an SC unit.
        """
        check_positive_int(bitstream_length, "bitstream_length")
        values = np.asarray(values, dtype=float)
        rng = as_generator(seed)
        scaled = np.clip(values / input_scale, -1.0, 1.0)
        stream = StochasticStream.encode(scaled, bitstream_length, encoding="bipolar", seed=rng)
        out_stream = self.process(stream)
        return out_stream.decode() * input_scale

    # -------------------------------------------------------------- hardware
    def build_hardware(self, bitstream_length: int, lfsr_width: int = 8) -> HardwareModule:
        """Counter bits + output logic + the SNG that feeds the unit.

        The counter update is a cycle-to-cycle recurrence, so the design
        cannot be pipelined across cycles; producing one result takes
        ``bitstream_length`` clock periods of the counter's critical path.
        """
        check_positive_int(bitstream_length, "bitstream_length")
        counter_bits = max(1, int(np.ceil(np.log2(self.num_states))))
        inventory = ComponentInventory(
            {
                "COUNTER_BIT": counter_bits,
                "AND2": 2,
                "OR2": 1,
                "MUX2": 1,
                "DFF": 1,
            }
        )
        sng = StochasticNumberGenerator(length=bitstream_length, encoding="bipolar", lfsr_width=lfsr_width)
        return HardwareModule(
            name=f"{self.name}_L{bitstream_length}",
            inventory=inventory,
            critical_path=("COUNTER_BIT", "AND2", "MUX2"),
            cycles=bitstream_length,
            submodules=[(sng.build_hardware(), 1)],
            metadata={
                "num_states": self.num_states,
                "counter_bits": counter_bits,
                "bitstream_length": bitstream_length,
            },
        )


class FsmTanhUnit(FsmNonlinearUnit):
    """The classic stanh FSM: output 1 when the counter is in the upper half.

    Approximates ``tanh(num_states / 2 * x)`` on bipolar inputs.
    """

    def __init__(self, num_states: int = 8) -> None:
        half = num_states // 2

        def rule(state, in_bit, cycle):
            return (state >= half).astype(np.int8)

        super().__init__(num_states=num_states, output_rule=rule, name="fsm_tanh")

    def reference(self, values: np.ndarray, input_scale: float = 1.0) -> np.ndarray:
        """The mathematical function the unit approximates."""
        x = np.asarray(values, dtype=float) / input_scale
        return np.tanh(self.num_states / 2.0 * x) * input_scale


class FsmReluUnit(FsmNonlinearUnit):
    """FSM-based ReLU (the SC-DCNN / HEIF style design).

    While the counter estimates the sign of the running input, the output
    follows the input bit in the positive region and an alternating 0/1
    pattern (value 0 in bipolar coding) in the negative region.
    """

    def __init__(self, num_states: int = 16) -> None:
        half = num_states // 2

        def rule(state, in_bit, cycle):
            positive = state >= half
            zero_bit = np.full_like(in_bit, cycle % 2)
            return np.where(positive, in_bit, zero_bit).astype(np.int8)

        super().__init__(num_states=num_states, output_rule=rule, name="fsm_relu")

    @staticmethod
    def reference(values: np.ndarray, input_scale: float = 1.0) -> np.ndarray:
        """The mathematical function the unit approximates (ReLU)."""
        return np.maximum(np.asarray(values, dtype=float), 0.0)


class FsmGeluUnit(FsmNonlinearUnit):
    """FSM baseline for GELU.

    No published FSM design computes GELU exactly; the closest achievable
    behaviour (and the one Fig. 2a of the paper illustrates) gates the input
    stream by a smooth sign estimate: the output follows the input bit with a
    probability that ramps up with the counter state, approximating
    ``x * sigmoid(1.702 x)`` for positive inputs but saturating at zero for
    negative inputs — the systematic error ASCEND's gate-assisted SI removes.
    """

    def __init__(self, num_states: int = 16) -> None:
        self._gate_states = num_states

        def rule(state, in_bit, cycle):
            # The gate opens gradually across the upper half of the counter
            # range, emulating the sigmoid factor of GELU; cycling through
            # the threshold pattern avoids correlation with the input bit.
            threshold = (cycle % (num_states // 2)) + num_states // 2
            gate = state >= threshold
            zero_bit = np.full_like(in_bit, cycle % 2)
            return np.where(gate, in_bit, zero_bit).astype(np.int8)

        super().__init__(num_states=num_states, output_rule=rule, name="fsm_gelu")

    @staticmethod
    def reference(values: np.ndarray) -> np.ndarray:
        """Exact GELU, the target the baseline is measured against."""
        from repro.nn.functional_math import gelu_exact

        return gelu_exact(np.asarray(values, dtype=float))
