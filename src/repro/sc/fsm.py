"""FSM-based SC nonlinear function units (baseline family #1).

The classical way to compute a nonlinear function on a stochastic bitstream
is a finite state machine built around a saturating up/down counter (Brown &
Card; used for tanh/sigmoid/ReLU by the CNN-oriented SC accelerators the
paper cites as [6]-[9]).  The input stream drives the counter up on 1s and
down on 0s; an output rule maps the current state (and optionally the input
bit) to the output bit.

These designs have the two weaknesses Section III-A describes:

* they process the stream serially, so latency grows linearly with the BSL
  and the output exhibits random fluctuation that only long streams average
  out,
* for GELU-like functions the output saturates at zero over the negative
  input range, which is a *systematic* error no BSL can remove (Fig. 2a).

The implementations here are functional bit-level simulations plus the
structural hardware description used by the cost model.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Optional

import numpy as np

from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.sc.bitstream import StochasticStream
from repro.sc.packed import PackedBitPlane, _NATIVE_LITTLE_ENDIAN, _kernels
from repro.sc.sng import StochasticNumberGenerator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


@lru_cache(maxsize=32)
def _fsm_scan_tables(num_states: int):
    """Byte-granular transition tables of the saturating up/down counter.

    The counter recurrence ``s' = clip(s + 2b - 1, 0, N - 1)`` depends only
    on ``num_states``, so the whole trajectory through 8 input bits can be
    tabulated once per state and input byte:

    * ``pre[s, byte, i]`` — counter value *before* consuming bit ``i`` of
      ``byte`` (little-endian, matching the packed-bitplane byte layout)
      when the byte is entered in state ``s``,
    * ``nxt[s, byte]`` — state after all 8 bits.

    A bitstream of length L is then scanned in ``ceil(L / 8)`` vectorised
    table lookups instead of L Python-level clip/update steps.  Returns
    ``None`` for counters too large to tabulate (> 256 states), where the
    per-cycle fallback is used.
    """
    if num_states > 256:
        return None
    pre = np.empty((num_states, 256, 8), dtype=np.uint8)
    nxt = np.empty((num_states, 256), dtype=np.uint8)
    states = np.arange(num_states, dtype=np.int64)
    for byte in range(256):
        current = states.copy()
        for i in range(8):
            bit = (byte >> i) & 1
            pre[:, byte, i] = current
            current = np.clip(current + (2 * bit - 1), 0, num_states - 1)
        nxt[:, byte] = current
    return pre, nxt


class FsmNonlinearUnit:
    """Generic saturating-counter FSM processing a bipolar bitstream.

    Parameters
    ----------
    num_states:
        Number of counter states; the classic stanh(N/2 * x) uses the state
        threshold rule with ``N`` states.
    output_rule:
        Callable ``(state, input_bit, cycle) -> output_bit`` evaluated every
        cycle.  ``state`` is the counter value *before* the update.
    name:
        Unit name used for hardware reports.
    vectorized_rule:
        When True, ``output_rule`` is guaranteed to broadcast over the whole
        stream at once (``state``/``input_bit`` of shape ``(..., L)`` and
        ``cycle`` an ``arange(L)``), letting :meth:`process` skip the
        per-cycle Python loop entirely.  The built-in tanh/ReLU/GELU units
        opt in; arbitrary user rules keep the exact cycle-by-cycle calling
        convention.
    """

    def __init__(
        self,
        num_states: int,
        output_rule: Callable[[np.ndarray, np.ndarray, int], np.ndarray],
        name: str = "fsm_unit",
        vectorized_rule: bool = False,
    ) -> None:
        check_positive_int(num_states, "num_states")
        if num_states < 2:
            raise ValueError("an FSM unit needs at least 2 states")
        self.num_states = num_states
        self.output_rule = output_rule
        self.name = name
        self.vectorized_rule = bool(vectorized_rule)
        #: Period (in cycles) of the output rule's dependence on ``cycle``,
        #: or ``None`` when unknown.  Built-in units declare theirs; when the
        #: period divides 8 the whole forward pass can run on byte-granular
        #: output tables (see :meth:`_outbyte_table`).  Custom rules keep
        #: ``None`` and always take the exact per-cycle path.
        self.cycle_period: Optional[int] = None
        self._outbyte_cache: Optional[np.ndarray] = None

    # -------------------------------------------------------------- simulate
    def _state_trajectory(self, stream: StochasticStream, initial_state: int) -> np.ndarray:
        """Counter value before every cycle, shape ``value_shape + (L,)``.

        Uses the byte-granular transition-table scan on the packed input
        bitplanes; the zero-padded tail bytes of the packed representation
        are scanned too (cheap) and their trajectory entries sliced away.
        """
        length = stream.length
        tables = _fsm_scan_tables(self.num_states)
        if tables is None:  # giant counters: legacy per-cycle update
            bits = stream.bits
            state = np.full(stream.value_shape, initial_state, dtype=np.int64)
            trajectory = np.empty(bits.shape, dtype=np.int64)
            for cycle in range(length):
                trajectory[..., cycle] = state
                state = np.clip(state + (2 * bits[..., cycle] - 1), 0, self.num_states - 1)
            return trajectory
        pre, nxt = tables
        stream_bytes = stream.packed.byte_view()
        num_bytes = stream_bytes.shape[-1]
        trajectory = _kernels().fsm_trajectory(
            stream_bytes, pre, nxt, initial_state, self.num_states
        )
        return trajectory.reshape(stream.value_shape + (num_bytes * 8,))[..., :length]

    def _outbyte_table(self) -> Optional[np.ndarray]:
        """``outbyte[s, byte]``: the 8 output bits emitted while consuming
        ``byte`` entered in state ``s``, packed little-endian.

        Only defined when the output rule's cycle dependence has a declared
        period dividing 8 — then every byte starts at cycle phase 0 and the
        rule evaluated on ``arange(8)`` matches its value at any global
        cycle, so one table gather per byte replaces the per-cycle rule
        evaluation over the whole stream.  Returns ``None`` otherwise.
        """
        if self._outbyte_cache is not None:
            return self._outbyte_cache
        if not self.vectorized_rule or self.cycle_period is None or 8 % self.cycle_period:
            return None
        tables = _fsm_scan_tables(self.num_states)
        if tables is None:
            return None
        pre, _ = tables
        # Input bit i of every byte value, broadcast against the state axis.
        bits_in = ((np.arange(256)[None, :, None] >> np.arange(8)) & 1).astype(np.int8)
        out_bits = np.asarray(self.output_rule(pre, bits_in, np.arange(8)))
        outbyte = np.packbits(out_bits.astype(np.uint8), axis=-1, bitorder="little")
        self._outbyte_cache = outbyte[..., 0]
        return self._outbyte_cache

    def process(self, stream: StochasticStream, initial_state: Optional[int] = None) -> StochasticStream:
        """Run the FSM over a bipolar input stream, producing a bipolar stream."""
        if stream.encoding != "bipolar":
            raise ValueError("FSM nonlinear units operate on bipolar streams")
        length = stream.length
        if initial_state is None:
            initial_state = self.num_states // 2
        outbyte = self._outbyte_table()
        if outbyte is not None:
            # Fused path: state scan and output-rule evaluation collapse into
            # byte-table gathers; bit-identical to the vectorized-rule path
            # (the constructor re-masks rule output on the zero-padded tail).
            pre, nxt = _fsm_scan_tables(self.num_states)
            stream_bytes = stream.packed.byte_view()
            out_bytes = _kernels().fsm_forward_bytes(
                stream_bytes, nxt, outbyte, initial_state, self.num_states
            )
            words = np.ascontiguousarray(out_bytes).view(np.uint64)
            if not _NATIVE_LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts
                words = words.byteswap()
            packed = PackedBitPlane(words, length)
            return StochasticStream(packed=packed, encoding="bipolar")
        states = self._state_trajectory(stream, initial_state)
        bits = stream.bits
        if self.vectorized_rule:
            cycles = np.arange(length)
            out = np.asarray(self.output_rule(states, bits, cycles))
        else:
            out = np.empty_like(bits)
            states = states.astype(np.int64, copy=False)
            for cycle in range(length):
                out[..., cycle] = self.output_rule(states[..., cycle], bits[..., cycle], cycle)
        # A unit declaring vectorized_rule guarantees 0/1 outputs, so the
        # full-array re-scan is skipped on that hot path; arbitrary per-cycle
        # rules keep the constructor's check (the seed behaviour).
        return StochasticStream(bits=out, encoding="bipolar", validate=not self.vectorized_rule)

    def evaluate(
        self,
        values: np.ndarray,
        bitstream_length: int,
        seed: SeedLike = None,
        input_scale: float = 1.0,
    ) -> np.ndarray:
        """End-to-end: encode values, run the FSM, decode the outputs.

        ``input_scale`` maps real values into the bipolar range: the encoded
        stream represents ``value / input_scale`` and the decoded output is
        multiplied back, mirroring how scaling factors bracket an SC unit.

        .. deprecated::
           The per-call ``bitstream_length``/``seed``/``input_scale``
           arguments are the historical signature drift between block
           families.  New code should build the unit through the block
           registry — ``repro.blocks.build("gelu/fsm", bitstream_length=L,
           seed=s, input_scale=a)`` — where those parameters live in the
           spec and ``evaluate(values)`` is uniform across families.
        """
        check_positive_int(bitstream_length, "bitstream_length")
        values = np.asarray(values, dtype=float)
        rng = as_generator(seed)
        scaled = np.clip(values / input_scale, -1.0, 1.0)
        stream = StochasticStream.encode(scaled, bitstream_length, encoding="bipolar", seed=rng)
        out_stream = self.process(stream)
        return out_stream.decode() * input_scale

    # -------------------------------------------------------------- hardware
    def build_hardware(self, bitstream_length: int, lfsr_width: int = 8) -> HardwareModule:
        """Counter bits + output logic + the SNG that feeds the unit.

        The counter update is a cycle-to-cycle recurrence, so the design
        cannot be pipelined across cycles; producing one result takes
        ``bitstream_length`` clock periods of the counter's critical path.
        """
        check_positive_int(bitstream_length, "bitstream_length")
        counter_bits = max(1, int(np.ceil(np.log2(self.num_states))))
        inventory = ComponentInventory(
            {
                "COUNTER_BIT": counter_bits,
                "AND2": 2,
                "OR2": 1,
                "MUX2": 1,
                "DFF": 1,
            }
        )
        sng = StochasticNumberGenerator(length=bitstream_length, encoding="bipolar", lfsr_width=lfsr_width)
        return HardwareModule(
            name=f"{self.name}_L{bitstream_length}",
            inventory=inventory,
            critical_path=("COUNTER_BIT", "AND2", "MUX2"),
            cycles=bitstream_length,
            submodules=[(sng.build_hardware(), 1)],
            metadata={
                "num_states": self.num_states,
                "counter_bits": counter_bits,
                "bitstream_length": bitstream_length,
            },
        )


class FsmTanhUnit(FsmNonlinearUnit):
    """The classic stanh FSM: output 1 when the counter is in the upper half.

    Approximates ``tanh(num_states / 2 * x)`` on bipolar inputs.
    """

    def __init__(self, num_states: int = 8) -> None:
        half = num_states // 2

        def rule(state, in_bit, cycle):
            # Broadcasts over a whole (..., L) trajectory or a single cycle.
            return (state >= half).astype(np.int8)

        super().__init__(num_states=num_states, output_rule=rule, name="fsm_tanh", vectorized_rule=True)
        self.cycle_period = 1  # the rule ignores the cycle index entirely

    def reference(self, values: np.ndarray, input_scale: float = 1.0) -> np.ndarray:
        """The mathematical function the unit approximates."""
        x = np.asarray(values, dtype=float) / input_scale
        return np.tanh(self.num_states / 2.0 * x) * input_scale


class FsmReluUnit(FsmNonlinearUnit):
    """FSM-based ReLU (the SC-DCNN / HEIF style design).

    While the counter estimates the sign of the running input, the output
    follows the input bit in the positive region and an alternating 0/1
    pattern (value 0 in bipolar coding) in the negative region.
    """

    def __init__(self, num_states: int = 16) -> None:
        half = num_states // 2

        def rule(state, in_bit, cycle):
            # ``cycle`` may be a scalar or the full arange(L); the 0/1
            # alternation broadcasts against the trajectory either way.
            positive = state >= half
            zero_bit = np.asarray(cycle) % 2
            return np.where(positive, in_bit, zero_bit).astype(np.int8)

        super().__init__(num_states=num_states, output_rule=rule, name="fsm_relu", vectorized_rule=True)
        self.cycle_period = 2  # only the 0/1 alternation depends on the cycle

    @staticmethod
    def reference(values: np.ndarray, input_scale: float = 1.0) -> np.ndarray:
        """The mathematical function the unit approximates (ReLU)."""
        return np.maximum(np.asarray(values, dtype=float), 0.0)


class FsmGeluUnit(FsmNonlinearUnit):
    """FSM baseline for GELU.

    No published FSM design computes GELU exactly; the closest achievable
    behaviour (and the one Fig. 2a of the paper illustrates) gates the input
    stream by a smooth sign estimate: the output follows the input bit with a
    probability that ramps up with the counter state, approximating
    ``x * sigmoid(1.702 x)`` for positive inputs but saturating at zero for
    negative inputs — the systematic error ASCEND's gate-assisted SI removes.
    """

    def __init__(self, num_states: int = 16) -> None:
        self._gate_states = num_states

        def rule(state, in_bit, cycle):
            # The gate opens gradually across the upper half of the counter
            # range, emulating the sigmoid factor of GELU; cycling through
            # the threshold pattern avoids correlation with the input bit.
            # ``cycle`` may be a scalar or the full arange(L).
            cycle = np.asarray(cycle)
            threshold = (cycle % (num_states // 2)) + num_states // 2
            gate = state >= threshold
            zero_bit = cycle % 2
            return np.where(gate, in_bit, zero_bit).astype(np.int8)

        super().__init__(num_states=num_states, output_rule=rule, name="fsm_gelu", vectorized_rule=True)
        # The threshold ramp repeats every num_states // 2 cycles and the
        # 0/1 alternation every 2; the fused byte path engages only when
        # this combined period divides 8 (true for the default 16 states).
        self.cycle_period = int(np.lcm(num_states // 2, 2))

    @staticmethod
    def reference(values: np.ndarray) -> np.ndarray:
        """Exact GELU, the target the baseline is measured against."""
        from repro.nn.functional_math import gelu_exact

        return gelu_exact(np.asarray(values, dtype=float))
