"""Packed-bitplane representation for stochastic bitstreams.

The seed implementation stored one ``int8`` per stream bit and stepped every
gate cycle-by-cycle, which made the stochastic baselines (and everything
built on them) the slowest part of the reproduction.  This module packs the
time axis of a bitstream into ``uint64`` words — 64 stream bits per word —
so that all gate-level SC arithmetic becomes word-wise bitwise machine ops:

* AND multiply (unipolar) / XNOR multiply (bipolar) touch 64 bits per
  instruction instead of one,
* MUX scaled addition is three bitwise ops on words,
* decoding is a population count (``np.bitwise_count`` where available, a
  byte lookup table otherwise) over ~L/64 words instead of a float mean over
  L ``int8`` entries.

Packing uses ``np.packbits`` with **little-endian bit order**: stream cycle
``t`` lives at bit ``t % 64`` of word ``t // 64``.  Bits past the logical
length (the tail of the last word) are always kept at zero; every operation
that could set them (NOT, XNOR) re-masks the tail, so popcounts never see
phantom bits and representations stay canonical (equal streams have equal
words).

:class:`PackedBitPlane` is deliberately a thin container: the public SC API
remains :class:`repro.sc.bitstream.StochasticStream`, which now carries a
packed plane internally and materialises ``int8`` bits only when somebody
actually asks for them.
"""

from __future__ import annotations

import sys
from typing import Tuple

import numpy as np

#: Word values are normalised so stream bit ``t % 64`` is integer bit
#: ``t % 64`` regardless of host endianness (byteswap on big-endian hosts).
_NATIVE_LITTLE_ENDIAN = sys.byteorder == "little"

#: Number of stream bits stored per packed word.
WORD_BITS = 64

#: Whether the fast native popcount ufunc is available (numpy >= 2.0).
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Byte-indexed popcount lookup table, the fallback for older numpy.
_POPCOUNT_LUT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.uint8)

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _words_for(length: int) -> int:
    """Number of uint64 words needed for ``length`` bits."""
    return (length + WORD_BITS - 1) // WORD_BITS


def _kernels():
    """The active kernel backend (see :mod:`repro.sc.backends`).

    Imported lazily per call: the backends package imports this module for
    :class:`PackedBitPlane`, and per-call resolution is what lets
    ``use_backend`` / ``set_backend`` switch kernels at any point without
    invalidating existing planes.
    """
    from repro.sc.backends import active_backend

    return active_backend()


def tail_mask(length: int) -> np.uint64:
    """Mask of the valid bits in the last word of an ``length``-bit plane."""
    rem = length % WORD_BITS
    if rem == 0:
        return _ALL_ONES
    return np.uint64((1 << rem) - 1)


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Population count per word (vectorised; LUT fallback without numpy 2)."""
    if HAVE_BITWISE_COUNT:
        return np.bitwise_count(words)
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    counts = _POPCOUNT_LUT[as_bytes].astype(np.uint64)
    return counts.reshape(words.shape + (8,)).sum(axis=-1)


class PackedBitPlane:
    """A batch of bitstreams packed 64 bits per ``uint64`` word.

    ``words`` has shape ``value_shape + (num_words,)``; ``length`` is the
    logical number of bits per stream.  Tail bits (positions ``>= length``
    in the last word) are an invariant zero.
    """

    __slots__ = ("words", "length")

    def __init__(self, words: np.ndarray, length: int) -> None:
        words = np.asarray(words, dtype=np.uint64)
        if length < 1:
            raise ValueError("length must be positive")
        if words.ndim < 1 or words.shape[-1] != _words_for(length):
            raise ValueError(
                f"expected {_words_for(length)} words on the last axis for "
                f"{length} bits, got shape {words.shape}"
            )
        # Enforce the zero-tail invariant on externally supplied words so
        # popcounts/decodes can never see phantom bits.  Internal ops always
        # hand over clean tails, so the common case is one cheap reduction.
        mask = tail_mask(length)
        if mask != _ALL_ONES and words.size:
            dirty = words[..., -1] & ~mask
            if np.any(dirty):
                words = words.copy()
                words[..., -1] &= mask
        self.words = words
        self.length = int(length)

    # ------------------------------------------------------------ properties
    @property
    def value_shape(self) -> Tuple[int, ...]:
        """Shape of the batch of streams (everything but the word axis)."""
        return self.words.shape[:-1]

    @property
    def num_words(self) -> int:
        return int(self.words.shape[-1])

    # ------------------------------------------------------------- packing
    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "PackedBitPlane":
        """Pack an explicit 0/1 array (any dtype) along its last axis."""
        arr = np.asarray(bits)
        if arr.ndim < 1:
            raise ValueError("bits must have at least one (stream) axis")
        if arr.dtype != np.uint8 and arr.dtype != bool:
            arr = arr.astype(np.uint8)
        length = arr.shape[-1]
        pad = _words_for(length) * WORD_BITS - length
        if pad:
            pad_block = np.zeros(arr.shape[:-1] + (pad,), dtype=np.uint8)
            arr = np.concatenate([arr, pad_block], axis=-1)
        packed_bytes = np.packbits(arr, axis=-1, bitorder="little")
        words = np.ascontiguousarray(packed_bytes).view(np.uint64)
        if not _NATIVE_LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts
            words = words.byteswap()
        return cls(words, length)

    @classmethod
    def zeros(cls, value_shape: Tuple[int, ...], length: int) -> "PackedBitPlane":
        """All-zero plane for a batch of ``length``-bit streams."""
        return cls(np.zeros(tuple(value_shape) + (_words_for(length),), np.uint64), length)

    @classmethod
    def from_thermometer_counts(cls, counts: np.ndarray, length: int) -> "PackedBitPlane":
        """Pack a batch of thermometer streams directly from their one-counts.

        A thermometer stream with one-count ``c`` has its first ``c`` bits set,
        so each packed word can be computed arithmetically: word ``w`` holds
        ``min(max(c - 64w, 0), 64)`` leading 1s.  This builds the plane without
        ever materialising the ``value_shape + (length,)`` bit array, which is
        what makes whole-split fault-injection sweeps affordable — packing is
        one vectorised op per batch, not per stream.
        """
        counts = np.asarray(counts)
        if counts.size and (counts.min() < 0 or counts.max() > length):
            raise ValueError(f"counts must lie in [0, {length}]")
        num_words = _words_for(length)
        word_base = np.arange(num_words, dtype=np.int64) * WORD_BITS
        in_word = np.clip(counts[..., None].astype(np.int64) - word_base, 0, WORD_BITS)
        # (1 << 64) overflows a uint64 shift, so full words are patched in
        # afterwards instead of shifted into existence.
        partial = in_word.astype(np.uint64)
        words = np.where(
            in_word >= WORD_BITS,
            _ALL_ONES,
            (np.uint64(1) << (partial % np.uint64(WORD_BITS))) - np.uint64(1),
        )
        words[..., -1] &= tail_mask(length)
        return cls(words, length)

    @classmethod
    def random(
        cls, value_shape: Tuple[int, ...], length: int, p: float, rng: np.random.Generator
    ) -> "PackedBitPlane":
        """Plane whose bits are independent Bernoulli(``p``) draws.

        Used as the XOR fault mask of the bit-flip injection knob: each valid
        stream bit flips with probability ``p``; tail bits stay zero.  Draws
        consume ``prod(value_shape) * length`` uniforms from ``rng`` in C
        order, so the plane is a pure function of the generator state.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must lie in [0, 1]")
        if p == 0.0:
            return cls.zeros(value_shape, length)
        return _kernels().bernoulli_plane(tuple(value_shape), length, p, rng)

    def to_bits(self, dtype=np.int8) -> np.ndarray:
        """Materialise the explicit bit array, shape ``value_shape + (length,)``."""
        bits = np.unpackbits(self.byte_view(), axis=-1, count=self.length, bitorder="little")
        return bits.astype(dtype)

    def byte_view(self) -> np.ndarray:
        """The packed plane as little-endian bytes (8 stream bits per byte).

        Shape ``value_shape + (num_words * 8,)``.  Bytes past
        ``ceil(length / 8)`` belong to the zero tail.  This is the view the
        FSM transition-table scanner consumes.
        """
        words = self.words
        if not _NATIVE_LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts
            words = words.byteswap()
        return np.ascontiguousarray(words).view(np.uint8)

    def copy(self) -> "PackedBitPlane":
        return PackedBitPlane(self.words.copy(), self.length)

    # ------------------------------------------------------------ decoding
    def popcount(self) -> np.ndarray:
        """Number of 1s per stream, shape ``value_shape`` (int64)."""
        return _kernels().popcount_reduce(self.words)

    # ------------------------------------------------------------ gate ops
    def _check_mate(self, other: "PackedBitPlane") -> None:
        if self.length != other.length:
            raise ValueError("planes must have equal bit length")

    def __and__(self, other: "PackedBitPlane") -> "PackedBitPlane":
        self._check_mate(other)
        return PackedBitPlane(_kernels().and_words(self.words, other.words), self.length)

    def __or__(self, other: "PackedBitPlane") -> "PackedBitPlane":
        self._check_mate(other)
        return PackedBitPlane(_kernels().or_words(self.words, other.words), self.length)

    def __xor__(self, other: "PackedBitPlane") -> "PackedBitPlane":
        self._check_mate(other)
        return PackedBitPlane(_kernels().xor_words(self.words, other.words), self.length)

    def __invert__(self) -> "PackedBitPlane":
        words = _kernels().invert_words(self.words, tail_mask(self.length))
        return PackedBitPlane(words, self.length)

    def xnor(self, other: "PackedBitPlane") -> "PackedBitPlane":
        """Word-wise XNOR with the tail re-masked to zero."""
        self._check_mate(other)
        words = _kernels().xnor_words(self.words, other.words, tail_mask(self.length))
        return PackedBitPlane(words, self.length)

    def mux(self, on_one: "PackedBitPlane", on_zero: "PackedBitPlane") -> "PackedBitPlane":
        """Per-bit 2:1 MUX with ``self`` as the select plane.

        Output bit = ``on_one`` where the select bit is 1, ``on_zero`` where
        it is 0 — the SC scaled adder.  The zero tail of ``on_zero`` keeps
        the output tail clean without an extra mask.
        """
        self._check_mate(on_one)
        self._check_mate(on_zero)
        words = _kernels().mux_words(self.words, on_one.words, on_zero.words)
        return PackedBitPlane(words, self.length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedBitPlane(value_shape={self.value_shape}, length={self.length})"
