"""Re-scaling (sub-sampling) blocks for thermometer streams.

After multiplications and BSN additions, thermometer streams grow long and
their scaling factors diverge.  The re-scaling block of Hu et al. (DATE'23),
which the ASCEND softmax circuit instantiates twice per compute unit
(Fig. 5), shortens a stream by keeping every ``r``-th bit; because the
stream is sorted, the surviving bits are again a thermometer code whose
count is roughly ``count / r`` and whose scale grows by ``r``.

Sub-sampling is the *only* lossy step in the deterministic SC pipeline, so
the sub-sample rates ``s1`` and ``s2`` of Table II are first-order knobs in
the accuracy/ADP design space that Fig. 8 explores.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.sc.bitstream import ThermometerStream
from repro.utils.validation import check_positive_int


def subsampled_count(counts: np.ndarray, length: int, rate: int, phase: Optional[int] = None) -> np.ndarray:
    """One-counts after keeping bit positions ``phase, phase + rate, ...``.

    Position ``p`` of a thermometer stream is 1 exactly when ``p < count``,
    so the surviving count is the number of selected positions below
    ``count``.  The default phase ``(rate - 1) // 2`` taps the middle of each
    group, which gives (near) round-to-nearest behaviour and the lowest bias.
    """
    check_positive_int(rate, "rate")
    if phase is None:
        phase = (rate - 1) // 2
    if not 0 <= phase < rate:
        raise ValueError(f"phase must lie in [0, {rate}), got {phase}")
    counts = np.asarray(counts)
    out_length = length // rate
    kept = np.ceil((counts - phase) / rate).astype(np.int64)
    return np.clip(kept, 0, out_length)


def rescale(stream: ThermometerStream, rate: int, phase: Optional[int] = None) -> ThermometerStream:
    """Sub-sample ``stream`` by ``rate``: length /= rate, scale *= rate.

    ``rate`` must divide the stream length; a rate of 1 returns a copy.
    """
    check_positive_int(rate, "rate")
    if rate == 1:
        return stream.copy()
    if stream.length % rate != 0:
        raise ValueError(
            f"rate {rate} does not divide the stream length {stream.length}"
        )
    new_length = stream.length // rate
    new_counts = subsampled_count(stream.counts, stream.length, rate, phase)
    # subsampled_count clips onto [0, new_length], so skip the range re-scan.
    return ThermometerStream(
        counts=new_counts, length=new_length, scale=stream.scale * rate, validate=False
    )


def rescale_to_length(stream: ThermometerStream, target_length: int) -> ThermometerStream:
    """Sub-sample ``stream`` down to ``target_length`` bits.

    The stream length must be an integer multiple of the target.
    """
    check_positive_int(target_length, "target_length")
    if stream.length == target_length:
        return stream.copy()
    if stream.length % target_length != 0:
        raise ValueError(
            f"target length {target_length} does not divide stream length {stream.length}"
        )
    return rescale(stream, stream.length // target_length)


def align_scales(a: ThermometerStream, b: ThermometerStream) -> tuple:
    """Re-scale the finer-grained of two streams so both share a scale.

    Returns the pair ``(a', b')`` with equal scales, ready for BSN addition.
    The coarser stream is never touched (precision can only be dropped, not
    invented).  Raises when the scale ratio is not a usable integer.
    """
    if np.isclose(a.scale, b.scale):
        return a, b
    if a.scale < b.scale:
        ratio = b.scale / a.scale
        if not np.isclose(ratio, round(ratio)):
            raise ValueError(f"scale ratio {ratio} is not an integer; cannot align")
        return rescale(a, int(round(ratio))), b
    ratio = a.scale / b.scale
    if not np.isclose(ratio, round(ratio)):
        raise ValueError(f"scale ratio {ratio} is not an integer; cannot align")
    return a, rescale(b, int(round(ratio)))


class RescalingBlock:
    """A fixed-rate re-scaling block with its hardware description.

    The functional behaviour is :func:`rescale`; the structural view is the
    selection wiring plus an output register per surviving bit.
    """

    def __init__(self, input_length: int, rate: int, phase: Optional[int] = None) -> None:
        check_positive_int(input_length, "input_length")
        check_positive_int(rate, "rate")
        if input_length % rate != 0:
            raise ValueError(f"rate {rate} does not divide input length {input_length}")
        self.input_length = input_length
        self.rate = rate
        self.phase = (rate - 1) // 2 if phase is None else phase
        if not 0 <= self.phase < rate:
            raise ValueError(f"phase must lie in [0, {rate})")
        self.output_length = input_length // rate

    def __call__(self, stream: ThermometerStream) -> ThermometerStream:
        if stream.length != self.input_length:
            raise ValueError(
                f"block expects input length {self.input_length}, got {stream.length}"
            )
        return rescale(stream, self.rate, self.phase)

    def build_hardware(self, name: str = "rescale") -> HardwareModule:
        """Selection wiring is free; count one buffer per surviving output bit."""
        inventory = ComponentInventory({"BUF": self.output_length})
        return HardwareModule(
            name=f"{name}_r{self.rate}",
            inventory=inventory,
            critical_path=("BUF",),
            cycles=1,
            metadata={
                "input_length": self.input_length,
                "output_length": self.output_length,
                "rate": self.rate,
                "phase": self.phase,
            },
        )
