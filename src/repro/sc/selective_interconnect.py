"""Naive selective interconnect (SI) units (baseline family #3).

SI designs for thermometer coding (Zhang et al. DATE'20, Hu et al. DATE'23 —
the paper's [5], [15]) read the whole input bitstream in parallel and build
the output by *selecting* input bit positions, so the output transition
points can be placed anywhere and the function is computed deterministically
in a single pass.  Because each output bit is a selected copy of an input
bit, the number of output 1s can only grow with the number of input 1s:
naive SI is restricted to monotonic (non-decreasing) functions.

For GELU — which dips below zero before rising — the best a naive SI block
can do is the monotone envelope of the target, which is exactly the error
visible in Fig. 2(c) of the paper.  ASCEND's gate-assisted SI
(:mod:`repro.core.gelu_si`) removes that restriction with a few extra gates.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.sc.bitstream import ThermometerStream
from repro.utils.validation import check_positive_int


def monotone_envelope(levels: np.ndarray) -> np.ndarray:
    """Best non-decreasing approximation reachable by selection-only wiring.

    The running maximum of the target output levels: once the output has
    risen it can never fall again, mirroring the structural constraint of
    selection without assist gates.
    """
    return np.maximum.accumulate(np.asarray(levels))


class NaiveSelectiveInterconnect:
    """A selection-only SI block computing a (forcibly monotone) function.

    Parameters
    ----------
    target:
        The real function being approximated.
    input_length, input_scale:
        Thermometer format of the input stream.
    output_length, output_scale:
        Thermometer format of the output stream.
    """

    def __init__(
        self,
        target: Callable[[np.ndarray], np.ndarray],
        input_length: int,
        input_scale: float,
        output_length: int,
        output_scale: float,
    ) -> None:
        check_positive_int(input_length, "input_length")
        check_positive_int(output_length, "output_length")
        if input_scale <= 0 or output_scale <= 0:
            raise ValueError("scales must be positive")
        self.target = target
        self.input_length = input_length
        self.input_scale = input_scale
        self.output_length = output_length
        self.output_scale = output_scale
        self.table = self._build_table()

    def _build_table(self) -> np.ndarray:
        """Output one-count for every possible input one-count (monotone)."""
        counts = np.arange(self.input_length + 1)
        x = self.input_scale * (counts - self.input_length / 2.0)
        y = np.asarray(self.target(x), dtype=float)
        levels = np.round(y / self.output_scale).astype(np.int64)
        # Clip symmetrically to ±(L // 2): for odd L, ``-L // 2`` floors to
        # -(L + 1) // 2 and the later +L // 2 shift would leave a -1 count
        # (same convention as GateAssistedSIBlock._quantize_levels).
        levels = np.clip(levels, -(self.output_length // 2), self.output_length // 2)
        monotone = monotone_envelope(levels)
        return (monotone + self.output_length // 2).astype(np.int64)

    # -------------------------------------------------------------- simulate
    def process(self, stream: ThermometerStream) -> ThermometerStream:
        """Map an input thermometer stream through the selection table."""
        if stream.length != self.input_length:
            raise ValueError(
                f"block expects input length {self.input_length}, got {stream.length}"
            )
        counts = self.table[stream.counts]
        return ThermometerStream(counts=counts, length=self.output_length, scale=self.output_scale)

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """End-to-end: encode values, run the block, decode the outputs."""
        stream = ThermometerStream.encode(values, self.input_length, self.input_scale)
        return self.process(stream).decode()

    def transition_count(self) -> int:
        """Number of output transitions across the input range.

        Each transition requires one selection tap in hardware; the count is
        what the hardware builder prices.
        """
        return int(np.abs(np.diff(self.table)).sum())

    # -------------------------------------------------------------- hardware
    def build_hardware(self, include_input_sorter: bool = True) -> HardwareModule:
        """Selection taps plus (optionally) the BSN that sorts the raw input.

        In the end-to-end accelerator the activation block ingests the
        parallel partial-sum bits coming out of the preceding matrix-multiply
        tile and sorting them is part of the activation unit's job, so the
        input sorter is included by default (the same convention is used for
        the gate-assisted SI block, keeping the baseline comparison fair).
        """
        from repro.sc.sorting_network import BitonicSortingNetwork

        inventory = ComponentInventory(
            {
                "BUF": self.output_length,
                "DFF": self.output_length,
            }
        )
        submodules = []
        critical_path = ["BUF", "DFF"]
        if include_input_sorter:
            sorter = BitonicSortingNetwork(self.input_length).build_hardware(name="si_input_sorter")
            submodules.append((sorter, 1))
        return HardwareModule(
            name=f"naive_si_{self.input_length}to{self.output_length}",
            inventory=inventory,
            critical_path=tuple(critical_path),
            cycles=1,
            submodules=submodules,
            metadata={
                "input_length": self.input_length,
                "output_length": self.output_length,
                "input_scale": self.input_scale,
                "output_scale": self.output_scale,
                "transitions": self.transition_count(),
            },
        )
