"""Stochastic number generators (SNGs).

Traditional (non-deterministic) SC designs convert a binary number into a
stochastic bitstream by comparing it against a pseudo-random sequence every
cycle; the pseudo-random source is almost always a maximal-length linear
feedback shift register (LFSR).  The FSM- and Bernstein-polynomial baselines
in this reproduction use these generators, and their hardware cost (many
LFSR bits and comparators) is part of why the paper's deterministic designs
win on area-delay product.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.sc.bitstream import StochasticStream
from repro.sc.encodings import bipolar_encode, unipolar_encode
from repro.sc.packed import PackedBitPlane
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_choices, check_positive_int

#: Feedback tap positions (1-indexed from the output bit) of maximal-length
#: Fibonacci LFSRs for common widths.  Source: standard m-sequence tables.
_MAXIMAL_TAPS: Dict[int, Tuple[int, ...]] = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
}


@lru_cache(maxsize=64)
def _lfsr_cycle(width: int, taps: Tuple[int, ...]) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Precomputed state cycle of a Galois LFSR, shared across instances.

    Returns ``(cycle, pos)`` where ``cycle[i]`` is the state reached after
    ``i + 1`` steps from state 1 and ``pos[s]`` is the index of state ``s``
    in that cycle (-1 when ``s`` is not on it).  Because the successor of a
    state is state-autonomous, any register whose current state lies on the
    cycle can read its whole future from this table; for maximal-length taps
    that is every nonzero state, i.e. the full m-sequence.

    ``None`` is returned when no clean cycle through state 1 exists (only
    possible for user-supplied non-maximal taps, where the all-zero lockup
    guard would make the trajectory instance-dependent); callers then fall
    back to scalar stepping.
    """
    tap_mask = 0
    for tap in taps:
        tap_mask |= 1 << (tap - 1)
    states = []
    state = 1
    for _ in range(1 << width):
        lsb = state & 1
        state >>= 1
        if lsb:
            state ^= tap_mask
        if state == 0:
            return None
        states.append(state)
        if state == 1:
            break
    else:
        return None
    cycle = np.array(states, dtype=np.int64)
    pos = np.full(1 << width, -1, dtype=np.int64)
    pos[cycle] = np.arange(len(cycle))
    return cycle, pos


@lru_cache(maxsize=64)
def _lfsr_threshold_cycle(
    width: int, taps: Tuple[int, ...]
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Unit-interval comparator thresholds of the whole LFSR cycle.

    ``(thresholds, pos)`` where ``thresholds[i] = cycle[i] / 2**width`` —
    the float each generated bit is compared against.  Caching the float
    conversion here (once per ``(width, taps)``) instead of converting per
    :meth:`StochasticNumberGenerator.generate` call batches the LFSR gather
    work across a whole eval batch: per call only the window gather and the
    broadcasted comparison remain.
    """
    cached = _lfsr_cycle(width, taps)
    if cached is None:
        return None
    cycle, pos = cached
    return cycle.astype(np.float64) / float(1 << width), pos


class LinearFeedbackShiftRegister:
    """A Galois LFSR producing a maximal-length pseudo-random sequence.

    The register state is interpreted as an unsigned integer in
    ``[1, 2**width - 1]`` (the all-zero state is excluded, as in hardware).
    The tap positions correspond to the exponents of the primitive feedback
    polynomial (the table above lists maximal-length polynomials), realised
    in the Galois form: when the shifted-out bit is 1, the tap mask is XORed
    into the state.
    """

    def __init__(self, width: int, seed_state: int = 1, taps: Optional[Sequence[int]] = None) -> None:
        check_positive_int(width, "width")
        if taps is None:
            if width not in _MAXIMAL_TAPS:
                raise ValueError(
                    f"no default maximal-length taps for width {width}; "
                    f"supported widths: {sorted(_MAXIMAL_TAPS)}"
                )
            taps = _MAXIMAL_TAPS[width]
        self.width = width
        self.taps = tuple(taps)
        if any(t < 1 or t > width for t in self.taps):
            raise ValueError(f"tap positions must lie in [1, {width}]")
        if not 1 <= seed_state <= (1 << width) - 1:
            raise ValueError(f"seed_state must lie in [1, {(1 << width) - 1}]")
        self._tap_mask = 0
        for tap in self.taps:
            self._tap_mask |= 1 << (tap - 1)
        self.state = int(seed_state)
        self._initial_state = int(seed_state)

    @property
    def period(self) -> int:
        """Sequence period of a maximal-length LFSR: ``2**width - 1``."""
        return (1 << self.width) - 1

    def reset(self) -> None:
        """Restore the register to its seed state."""
        self.state = self._initial_state

    def step(self) -> int:
        """Advance one clock cycle; return the new state as an integer."""
        lsb = self.state & 1
        self.state >>= 1
        if lsb:
            self.state ^= self._tap_mask
        if self.state == 0:  # unreachable for maximal taps, but stay safe
            self.state = self._initial_state
        return self.state

    def sequence(self, length: int) -> np.ndarray:
        """Return the next ``length`` states as an integer array.

        Fast path: the whole state cycle is precomputed once per
        ``(width, taps)`` (LRU-cached at module level) and the requested
        window is gathered from it in one vectorised take — identical
        states to scalar stepping, without the per-cycle Python loop.
        """
        check_positive_int(length, "length")
        cached = _lfsr_cycle(self.width, self.taps)
        if cached is not None:
            cycle, pos = cached
            start = pos[self.state]
            if start >= 0:
                idx = (start + 1 + np.arange(length, dtype=np.int64)) % len(cycle)
                out = cycle[idx]
                self.state = int(out[-1])
                return out
        out = np.empty(length, dtype=np.int64)
        for i in range(length):
            out[i] = self.step()
        return out

    def build_hardware(self) -> HardwareModule:
        """Structural description: one LFSR bit cell per register stage."""
        inventory = ComponentInventory({"LFSR_BIT": self.width})
        return HardwareModule(
            name=f"lfsr{self.width}",
            inventory=inventory,
            critical_path=("XOR2", "DFF"),
            cycles=1,
            metadata={"width": self.width, "taps": self.taps},
        )


class StochasticNumberGenerator:
    """Converts real values into stochastic bitstreams.

    Two modes:

    * ``mode="lfsr"`` — hardware-faithful: each cycle the value's quantised
      probability is compared against the LFSR state.  The generated stream
      is deterministic given the LFSR seed, with the correlation artefacts
      real SC hardware exhibits.
    * ``mode="ideal"`` — i.i.d. Bernoulli bits from a software RNG, the usual
      idealisation in SC error analyses.
    """

    def __init__(
        self,
        length: int,
        encoding: str = "unipolar",
        mode: str = "lfsr",
        lfsr_width: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive_int(length, "length")
        check_in_choices(encoding, ("unipolar", "bipolar"), "encoding")
        check_in_choices(mode, ("lfsr", "ideal"), "mode")
        self.length = length
        self.encoding = encoding
        self.mode = mode
        if lfsr_width is None:
            lfsr_width = max(3, int(np.ceil(np.log2(length + 1))))
        self.lfsr_width = lfsr_width
        self._rng = as_generator(seed)

    def _probabilities(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if self.encoding == "unipolar":
            return unipolar_encode(values)
        return bipolar_encode(values)

    def generate(self, values: np.ndarray) -> StochasticStream:
        """Generate one bitstream per input value.

        Both modes hand the comparator output (a boolean tensor over the
        whole value batch, produced by one broadcasted numpy op) straight to
        the packed-bitplane representation — the explicit ``int8`` bits are
        only materialised if a caller asks for them.
        """
        values = np.asarray(values, dtype=float)
        probs = self._probabilities(values)
        if self.mode == "ideal":
            from repro.sc.packed import _kernels

            packed = _kernels().bernoulli_plane(probs.shape, self.length, probs, self._rng)
            return StochasticStream(packed=packed, encoding=self.encoding)

        # LFSR mode: every value in the batch shares the LFSR sequence, the
        # way a hardware SNG bank shares one pseudo-random source per lane.
        seed_state = int(self._rng.integers(1, (1 << self.lfsr_width) - 1))
        lfsr = LinearFeedbackShiftRegister(self.lfsr_width, seed_state=seed_state)
        cached = _lfsr_threshold_cycle(self.lfsr_width, lfsr.taps)
        thresholds = None
        if cached is not None:
            threshold_cycle, pos = cached
            start = int(pos[seed_state])
            if start >= 0:
                idx = (start + 1 + np.arange(self.length, dtype=np.int64)) % len(threshold_cycle)
                thresholds = threshold_cycle[idx]
        if thresholds is None:  # non-maximal user taps: scalar stepping
            states = lfsr.sequence(self.length).astype(float)
            thresholds = states / float(lfsr.period + 1)
        bits = thresholds[None, ...] < probs.reshape(-1, 1)
        bits = bits.reshape(probs.shape + (self.length,))
        return StochasticStream(packed=PackedBitPlane.from_bits(bits), encoding=self.encoding)

    def build_hardware(self) -> HardwareModule:
        """One LFSR plus a comparator of the LFSR width."""
        lfsr = LinearFeedbackShiftRegister(self.lfsr_width)
        inventory = ComponentInventory({"CMP_BIT": self.lfsr_width})
        return HardwareModule(
            name=f"sng_w{self.lfsr_width}",
            inventory=inventory,
            critical_path=("CMP_BIT",),
            cycles=1,
            submodules=[(lfsr.build_hardware(), 1)],
            metadata={
                "length": self.length,
                "encoding": self.encoding,
                "lfsr_width": self.lfsr_width,
            },
        )
