"""Bitonic sorting networks (BSNs).

In deterministic (thermometer-coded) SC, addition is performed by
concatenating the operand bitstreams and sorting the result so the output is
again a valid thermometer code (Section II-A, citing Zhang et al. DATE'20).
The sorting network itself is pure wiring plus compare-exchange elements;
for single-bit payloads each compare-exchange is just an AND gate (max) and
an OR gate (min).

This module provides both views of a BSN:

* a *functional* view — :meth:`BitonicSortingNetwork.sort_bits` actually runs
  the compare-exchange schedule on explicit bit vectors (used by tests and
  the didactic examples; the emulation fast-path adds one-counts directly),
* a *structural* view — :meth:`BitonicSortingNetwork.build_hardware` reports
  the compare-exchange count and depth so the cost model can price the BSNs
  inside the softmax block of Fig. 5 and the accumulation trees of the
  accelerator.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.hw.netlist import ComponentInventory, HardwareModule
from repro.utils.validation import check_binary_array, check_positive_int


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


@lru_cache(maxsize=None)
def _schedule_for(n: int) -> List[List[Tuple[int, int]]]:
    """Module-level memo of compare-exchange schedules, shared by all
    :class:`BitonicSortingNetwork` instances of the same padded width.

    Sweeps construct thousands of sorter objects for a handful of distinct
    widths; memoising here means each stage schedule is computed once per
    process.  Treat the returned lists as read-only.
    """
    return BitonicSortingNetwork._build_schedule(n)


@lru_cache(maxsize=None)
def _stage_indices(n: int) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
    """Per-stage (hi, lo) index arrays for vectorised compare-exchange.

    Within a stage every lane appears in exactly one pair, so all pairs of
    the stage can be gathered/scattered with two fancy-indexing ops instead
    of a Python loop over individual compare-exchange elements.
    """
    stages = []
    for stage in _schedule_for(n):
        hi = np.fromiter((pair[0] for pair in stage), dtype=np.intp, count=len(stage))
        lo = np.fromiter((pair[1] for pair in stage), dtype=np.intp, count=len(stage))
        stages.append((hi, lo))
    return tuple(stages)


class BitonicSortingNetwork:
    """A bitonic sorter over ``width`` single-bit lanes.

    Widths that are not powers of two are padded up to the next power of two
    (padding lanes are tied to constant 0 in hardware and cost nothing on
    the critical path, but the compare-exchange count uses the padded width,
    which is what a synthesised design would contain).
    """

    def __init__(self, width: int) -> None:
        check_positive_int(width, "width")
        self.width = width
        self.padded_width = _next_power_of_two(width)

    # --------------------------------------------------------------- schedule
    @staticmethod
    def _build_schedule(n: int) -> List[List[Tuple[int, int]]]:
        """Compare-exchange schedule of a bitonic sorter of power-of-two width.

        Returns a list of stages; each stage is a list of (i, j) index pairs
        that can operate in parallel.  Descending order (1s first) so the
        output is a thermometer pattern.
        """
        stages: List[List[Tuple[int, int]]] = []
        k = 2
        while k <= n:
            j = k // 2
            while j >= 1:
                stage: List[Tuple[int, int]] = []
                for i in range(n):
                    partner = i ^ j
                    if partner > i:
                        # Direction: descending when the k-block index is even.
                        if (i & k) == 0:
                            stage.append((i, partner))
                        else:
                            stage.append((partner, i))
                stage.sort()
                stages.append(stage)
                j //= 2
            k *= 2
        return stages

    @property
    def _schedule(self) -> List[List[Tuple[int, int]]]:
        """Compare-exchange schedule (module-level memo, shared per width)."""
        return _schedule_for(self.padded_width)

    @property
    def num_compare_exchange(self) -> int:
        """Total compare-exchange elements in the network.

        For a padded width ``n = 2**p`` a bitonic sorter has ``p (p + 1) / 2``
        stages of ``n / 2`` elements each; the closed form avoids building the
        explicit schedule when only costs are needed.
        """
        n = self.padded_width
        if n == 1:
            return 0
        p = int(np.log2(n))
        return n * p * (p + 1) // 4

    @property
    def depth(self) -> int:
        """Number of compare-exchange stages on the critical path."""
        n = self.padded_width
        if n == 1:
            return 0
        p = int(np.log2(n))
        return p * (p + 1) // 2

    # -------------------------------------------------------------- functional
    def sort_bits(self, bits: np.ndarray) -> np.ndarray:
        """Sort bit vectors descending (1s first) through the CE schedule.

        ``bits`` has shape ``(..., width)``; the returned array has the same
        shape and is a valid thermometer pattern per lane batch.
        """
        arr = np.asarray(bits)
        if arr.shape[-1] != self.width:
            raise ValueError(f"expected last axis of size {self.width}, got {arr.shape[-1]}")
        check_binary_array(arr, "bits")
        from repro.sc.packed import _kernels

        work = np.zeros(arr.shape[:-1] + (self.padded_width,), dtype=np.int8)
        work[..., : self.width] = arr
        # All pairs of a stage are independent, so each stage is two gathers
        # and two scatters.  For single-bit payloads: max = OR, min = AND;
        # the "hi" index keeps the larger value so 1s bubble to the front.
        backend = _kernels()
        for hi, lo in _stage_indices(self.padded_width):
            upper, lower = backend.bsn_stage(work[..., hi], work[..., lo])
            work[..., hi] = upper
            work[..., lo] = lower
        return work[..., : self.width]

    def sort_values(self, values: np.ndarray) -> np.ndarray:
        """Sort arbitrary numeric lanes descending (reference implementation).

        Used by tests to check the schedule is a correct sorting network for
        any payload (the zero-one principle then guarantees bit correctness).
        """
        arr = np.asarray(values, dtype=float)
        if arr.shape[-1] != self.width:
            raise ValueError(f"expected last axis of size {self.width}, got {arr.shape[-1]}")
        pad_shape = arr.shape[:-1] + (self.padded_width - self.width,)
        work = np.concatenate([arr, np.full(pad_shape, -np.inf)], axis=-1)
        for hi, lo in _stage_indices(self.padded_width):
            a = work[..., hi]
            b = work[..., lo]
            work[..., hi] = np.maximum(a, b)
            work[..., lo] = np.minimum(a, b)
        return work[..., : self.width]

    # -------------------------------------------------------------- structural
    def build_hardware(self, name: str = "bsn", pipeline_every: int = 0) -> HardwareModule:
        """Structural description: one SORT_CE cell per compare-exchange.

        ``pipeline_every`` inserts a register bank (one DFF per lane) after
        every that many compare-exchange stages.  A bitonic sorter is a pure
        feed-forward network, so pipelining it is routine; the module is then
        marked ``pipelined`` and its critical path is a single pipeline stage
        (the registers are charged to the inventory, so the area/ADP cost of
        the pipelining is not hidden).  With ``pipeline_every=0`` the sorter
        is reported as one combinational block.
        """
        if pipeline_every < 0:
            raise ValueError("pipeline_every must be non-negative")
        inventory = ComponentInventory({"SORT_CE": self.num_compare_exchange})
        if pipeline_every and self.depth > pipeline_every:
            banks = int(np.ceil(self.depth / pipeline_every)) - 1
            inventory.add("DFF", banks * self.padded_width)
            critical_path = tuple(["SORT_CE"] * min(pipeline_every, self.depth) + ["DFF"])
            pipelined = True
        else:
            critical_path = tuple(["SORT_CE"] * self.depth)
            pipelined = False
        return HardwareModule(
            name=f"{name}_w{self.width}",
            inventory=inventory,
            critical_path=critical_path,
            cycles=1,
            pipelined=pipelined,
            metadata={
                "width": self.width,
                "padded_width": self.padded_width,
                "compare_exchange": self.num_compare_exchange,
                "depth": self.depth,
                "pipeline_every": pipeline_every,
            },
        )
