"""Declarative scenario / resilience layer for the serving tier.

A scenario is a frozen, JSON-round-trippable spec (``{"kind":
"serve/scenario"}``) composing three things:

* a **workload** — a recorded trace replay or a synthetic arrival
  process (Poisson, heavy-tail Pareto, flash-crowd, diurnal sawtooth)
  expanded deterministically from a seed;
* a **degradation schedule** — timed ``kill_shard`` / ``cache_loss`` /
  ``flip_storm`` / ``queue_burst`` events fired at request-ordinal
  fractions of the run;
* **assertions** — declarative checks (bit-identity vs offline eval,
  SLO ceilings, recovery deadlines, autoscale-flapping bounds) judged
  against the finished run.

:class:`ScenarioRunner` drives any :class:`~repro.serve.ServeSpec`
deployment through the public ``InferenceService``/``EngineProtocol``
seam and returns a JSON result payload with a per-phase
``ServiceStats`` timeline.  ``repro run`` sniffs scenario files like
deployments and routes them through the content-addressed sweep cache.
"""

from repro.scenarios.assertions import (
    ASSERTION_CHECKS,
    AssertionCheck,
    ScenarioOutcome,
    evaluate_assertions,
)
from repro.scenarios.runner import ScenarioError, ScenarioRunner
from repro.scenarios.specs import (
    ARRIVALS,
    EVENT_ACTIONS,
    SCENARIO_KIND,
    AssertionSpec,
    EventSpec,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.scenarios.workload import (
    TRACE_KIND,
    Workload,
    generate_workload,
    load_trace,
    save_trace,
    workload_digest,
)

__all__ = [
    "ARRIVALS",
    "ASSERTION_CHECKS",
    "AssertionCheck",
    "AssertionSpec",
    "EVENT_ACTIONS",
    "EventSpec",
    "SCENARIO_KIND",
    "ScenarioError",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioSpec",
    "TRACE_KIND",
    "Workload",
    "WorkloadSpec",
    "evaluate_assertions",
    "generate_workload",
    "load_trace",
    "save_trace",
    "workload_digest",
]
