"""The scenario assertion catalog: declarative checks over a run's outcome.

Every :class:`~repro.scenarios.specs.AssertionSpec` names an entry of
:data:`ASSERTION_CHECKS`; the runner condenses a finished run into one
:class:`ScenarioOutcome` and :func:`evaluate_assertions` turns the spec's
assertion list into pass/fail verdicts with the measured values attached —
what the CI scenario matrix gates on and what lands in the result JSON.

The catalog (suffix tells the comparison direction):

========================  ====================================================
``bit_identity``          every completed prediction equals the offline
                          per-image evaluation of the same ``(image, fault
                          index)`` pair — the paper's robustness claim; also
                          requires at least one completion (an all-failed run
                          must not vacuously pass)
``p50_ms_max``            median served latency ceiling (ms)
``p99_ms_max``            tail latency ceiling (ms)
``timeout_rate_max``      timeouts / offered ceiling
``reject_rate_max``       backpressure rejections / offered ceiling
``error_rate_max``        request errors / offered ceiling
``completed_min``         completed-request floor
``recovery_ms_max``       worst shard-kill recovery deadline (ms); passes
                          vacuously when the scenario kills nothing, fails if
                          any kill never recovered
``deaths_min``            engine-observed worker deaths floor (proves the
                          degradation schedule actually bit)
``scale_actions_max``     autoscale up/retire action ceiling (flapping bound;
                          kill-driven respawns are excluded)
``replacements_min``      fabric re-place-and-route floor (proves dead-tile
                          recovery actually re-placed the schedule)
========================  ====================================================

This module is pure data + numpy; it imports nothing from the serving
stack so the spec layer can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["ASSERTION_CHECKS", "AssertionCheck", "ScenarioOutcome", "evaluate_assertions"]


@dataclass
class ScenarioOutcome:
    """Everything a finished scenario run exposes to the assertion layer."""

    offered: int = 0
    completed: int = 0
    rejected: int = 0
    timeouts: int = 0
    errors: int = 0
    #: Served latencies (ms) of completed requests.
    latencies_ms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Completed predictions that differ from the offline reference.
    mismatches: int = 0
    #: Per-kill recovery times (ms); ``None`` entries never recovered.
    recovery_ms: Tuple[Optional[float], ...] = ()
    #: Engine-observed worker deaths (thread: replica discards).
    deaths: int = 0
    #: Autoscale actions (scale-ups beyond kill respawns + retires).
    scale_actions: int = 0
    #: Fabric re-place-and-route cycles (dead-tile recoveries).
    replacements: int = 0

    def rate(self, count: int) -> float:
        return count / self.offered if self.offered else 0.0

    def percentile(self, q: float) -> Optional[float]:
        if self.latencies_ms.size == 0:
            return None
        return float(np.percentile(np.asarray(self.latencies_ms, dtype=float), q))


@dataclass(frozen=True)
class AssertionCheck:
    """One catalog entry: how to measure and judge a check."""

    name: str
    needs_value: bool
    #: ``(outcome, value) -> (measured, passed)``; ``measured`` may be None
    #: when the run produced nothing to measure (which never passes a
    #: bounded check — absence of data must not read as compliance).
    evaluate: Callable[[ScenarioOutcome, Optional[float]], Tuple[Optional[float], bool]]


ASSERTION_CHECKS: Dict[str, AssertionCheck] = {}


def _register(name: str, needs_value: bool = True):
    def wrap(fn):
        ASSERTION_CHECKS[name] = AssertionCheck(name=name, needs_value=needs_value, evaluate=fn)
        return fn

    return wrap


@_register("bit_identity", needs_value=False)
def _bit_identity(outcome: ScenarioOutcome, value: Optional[float]):
    return float(outcome.mismatches), outcome.completed > 0 and outcome.mismatches == 0


@_register("p50_ms_max")
def _p50(outcome: ScenarioOutcome, value: Optional[float]):
    measured = outcome.percentile(50.0)
    return measured, measured is not None and measured <= float(value)


@_register("p99_ms_max")
def _p99(outcome: ScenarioOutcome, value: Optional[float]):
    measured = outcome.percentile(99.0)
    return measured, measured is not None and measured <= float(value)


@_register("timeout_rate_max")
def _timeout_rate(outcome: ScenarioOutcome, value: Optional[float]):
    measured = outcome.rate(outcome.timeouts)
    return measured, measured <= float(value)


@_register("reject_rate_max")
def _reject_rate(outcome: ScenarioOutcome, value: Optional[float]):
    measured = outcome.rate(outcome.rejected)
    return measured, measured <= float(value)


@_register("error_rate_max")
def _error_rate(outcome: ScenarioOutcome, value: Optional[float]):
    measured = outcome.rate(outcome.errors)
    return measured, measured <= float(value)


@_register("completed_min")
def _completed_min(outcome: ScenarioOutcome, value: Optional[float]):
    return float(outcome.completed), outcome.completed >= float(value)


@_register("recovery_ms_max")
def _recovery(outcome: ScenarioOutcome, value: Optional[float]):
    if not outcome.recovery_ms:
        return None, True  # nothing was killed: vacuously within deadline
    if any(r is None for r in outcome.recovery_ms):
        return None, False  # a kill never recovered
    measured = max(float(r) for r in outcome.recovery_ms)
    return measured, measured <= float(value)


@_register("deaths_min")
def _deaths_min(outcome: ScenarioOutcome, value: Optional[float]):
    return float(outcome.deaths), outcome.deaths >= float(value)


@_register("scale_actions_max")
def _scale_actions(outcome: ScenarioOutcome, value: Optional[float]):
    return float(outcome.scale_actions), outcome.scale_actions <= float(value)


@_register("replacements_min")
def _replacements_min(outcome: ScenarioOutcome, value: Optional[float]):
    return float(outcome.replacements), outcome.replacements >= float(value)


def evaluate_assertions(assertions: Iterable[Any], outcome: ScenarioOutcome) -> List[Dict[str, Any]]:
    """Judge every assertion against ``outcome``.

    Returns one dict per assertion — ``{"check", "value", "measured",
    "passed"}`` — in spec order, JSON-able as-is (the ``assertions``
    section of a scenario result payload).
    """
    verdicts = []
    for spec in assertions:
        entry = ASSERTION_CHECKS[spec.check]
        measured, passed = entry.evaluate(outcome, spec.value)
        verdicts.append(
            {
                "check": spec.check,
                "value": spec.value,
                "measured": None if measured is None else float(measured),
                "passed": bool(passed),
            }
        )
    return verdicts
