"""Drive a deployment through a scenario: paced replay, chaos, assertions.

:class:`ScenarioRunner` is the execution layer behind ``repro scenario``
(and, via sniffing, ``repro run`` on a ``serve/scenario`` file).  One run:

1. The workload expands deterministically
   (:func:`~repro.scenarios.workload.generate_workload`) and the
   deployment builds through the normal
   :func:`~repro.serve.deploy.build_deployment` path — the scenario
   drives the *real* service and engine through the public
   :class:`~repro.serve.InferenceService`/``EngineProtocol`` seam, not a
   simulation of them.
2. A single scheduler coroutine submits requests at their recorded
   offsets (a bounded in-flight semaphore keeps a 100k-request soak from
   materialising 100k concurrent tasks), firing each degradation event
   just before the request ordinal its ``at_frac`` maps to.  Shard kills
   spawn a recovery watcher that measures time-to-respawn through the
   engine's ``workers`` property.
3. Every request records its terminal outcome (completed / rejected /
   timeout / error) and latency; a :class:`~repro.serve.stats.ServiceStats`
   snapshot is taken at start, at every event boundary, and at the end —
   the per-phase timeline the CI jobs upload.
4. After the service drains, the offline reference is computed: one
   batch-invariant :meth:`~repro.eval_pipeline.ScViTEvalPipeline.predict_batch`
   over the unique ``(image, fault index)`` pairs actually served (equal
   to per-image evaluation by PR 3's invariant), so ``bit_identity``
   checks every completed prediction against offline evaluation even when
   shards died or a flip storm rotated fault indices mid-trace.
5. The assertion catalog judges the outcome
   (:func:`~repro.scenarios.assertions.evaluate_assertions`) and
   everything lands in one JSON-able result payload.

The payload is deterministic in its *verdict-relevant* parts (workload
digest, predictions, mismatches); latencies and the timeline are honest
wall-clock measurements and vary run to run — which is why scenario specs
express SLOs as generous ceilings rather than exact values.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro import telemetry
from repro.scenarios.assertions import ScenarioOutcome, evaluate_assertions
from repro.scenarios.specs import EventSpec, ScenarioSpec
from repro.scenarios.workload import Workload, generate_workload, workload_digest
from repro.telemetry.logging import get_logger

__all__ = ["ScenarioError", "ScenarioRunner"]

_log = get_logger("scenario")

#: How long a recovery watcher waits for killed capacity to return.
RECOVERY_DEADLINE_S = 30.0


class ScenarioError(RuntimeError):
    """A scenario could not run as specified (e.g. missing chaos hook)."""


class ScenarioRunner:
    """Execute one :class:`ScenarioSpec` and judge its assertions.

    Parameters
    ----------
    spec:
        The scenario to run.  Its embedded deployment is built with
        :func:`~repro.serve.deploy.build_deployment` (the ``transport``
        field is ignored — the runner submits in-process).
    base_dir:
        Directory relative trace paths resolve against (typically the
        scenario file's directory).
    deployment:
        Test seam: a pre-built :class:`~repro.serve.deploy.Deployment` to
        drive instead of building one from the spec (stub engines make
        event/accounting tests fast).
    offline_predict:
        Test seam: ``(images, indices) -> predictions`` reference oracle
        for ``bit_identity``.  Defaults to a fresh offline pipeline built
        from the same :class:`~repro.serve.engine.ReplicaFactory` recipe
        the deployment's replicas use.
    max_inflight:
        Bound on concurrently awaited submissions (soak-run memory guard).
    trace_dir:
        Directory trace exports land in when telemetry is on (via the
        deployment's ``telemetry`` field or ``REPRO_TELEMETRY``); ``None``
        skips export.  The trace is a side artifact: it never enters the
        result payload, so cached scenario results stay byte-identical
        with telemetry on or off.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        base_dir: Optional[Any] = None,
        deployment: Optional[Any] = None,
        offline_predict: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
        max_inflight: int = 4096,
        trace_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.spec = spec
        self.base_dir = base_dir
        self._deployment = deployment
        self._offline_predict = offline_predict
        self.max_inflight = int(max_inflight)
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.last_trace_path: Optional[Path] = None

    # ------------------------------------------------------------------- run
    def run(self) -> Dict[str, Any]:
        """Execute the scenario; returns the JSON-able result payload."""
        # Spec-driven telemetry must be live before the deployment builds
        # (also covers the pre-built-deployment test seam, which skips
        # build_deployment's own activation).
        if self.spec.deployment.telemetry:
            telemetry.enable()
        else:
            telemetry.activate()
        workload = generate_workload(self.spec.workload, base_dir=self.base_dir)
        images = self._image_pool()
        result = asyncio.run(self._drive(workload, images))
        self._export_trace()
        return self._finalise(workload, images, result)

    def _export_trace(self) -> None:
        """Write the run's trace (Chrome JSON + JSONL) into ``trace_dir``."""
        self.last_trace_path = None
        if self.trace_dir is None or not telemetry.enabled():
            return
        tracer = telemetry.get_tracer()
        if len(tracer) == 0:
            return
        stem = (self.spec.name or "scenario").replace("/", "_")
        other_data = {
            "scenario": self.spec.name,
            "kernel_profile": telemetry.get_profiler().snapshot(),
            "metrics": telemetry.get_registry().snapshot(),
        }
        self.last_trace_path = tracer.export(self.trace_dir / f"{stem}.trace.json", other_data=other_data)
        tracer.export_jsonl(self.trace_dir / f"{stem}.trace.jsonl")
        _log.info("trace_exported", path=str(self.last_trace_path), events=len(tracer))

    # ------------------------------------------------------------ components
    def _image_pool(self) -> np.ndarray:
        """The pool of synthetic images requests cycle over.

        Drawn from the deployment's dataset generator under the workload's
        own ``image_seed``, so the pool is independent of the calibration
        split but shaped exactly like the images the model serves.
        """
        from repro.training.datasets import synthetic_cifar10, synthetic_cifar100

        dataset_fn = {"cifar10": synthetic_cifar10, "cifar100": synthetic_cifar100}[
            self.spec.deployment.dataset
        ]
        _, test = dataset_fn(
            train_size=1,
            test_size=self.spec.workload.image_pool,
            seed=self.spec.workload.image_seed,
        )
        return test.images

    @staticmethod
    def _expand_events(events, n: int) -> List[Tuple[int, EventSpec]]:
        """``(request ordinal, event)`` schedule, sorted; repeats expanded."""
        schedule: List[Tuple[int, EventSpec]] = []
        for event in events:
            fracs = [event.at_frac]
            if event.every_frac is not None:
                frac = event.at_frac + event.every_frac
                while frac < 1.0:
                    fracs.append(frac)
                    frac += event.every_frac
            for frac in fracs:
                schedule.append((min(n - 1, int(round(frac * n))), event))
        schedule.sort(key=lambda item: item[0])
        return schedule

    def _storm_offset(self, ordinal: int, n: int) -> int:
        """Fault-index offset active at ``ordinal`` (0 outside storm windows)."""
        offset = 0
        for event in self.spec.events:
            if event.action != "flip_storm":
                continue
            start = int(round(event.at_frac * n))
            end = int(round(event.until_frac * n))
            if start <= ordinal < end:
                offset += event.index_offset
        return offset

    # ---------------------------------------------------------- async driver
    async def _drive(self, workload: Workload, images: np.ndarray) -> Dict[str, Any]:
        from repro.serve.service import RequestTimeout, ServiceOverloaded

        spec = self.spec
        if self._deployment is not None:
            deployment = self._deployment
        else:
            from repro.serve.deploy import build_deployment

            deployment = build_deployment(spec.deployment)

        tracer = telemetry.get_tracer()
        trace_on = telemetry.enabled()
        run_span = (
            tracer.begin("scenario.run", cat="scenario", scenario=spec.name) if trace_on else None
        )

        n = len(workload)
        schedule = self._expand_events(spec.events, n)
        records: List[Dict[str, Any]] = []
        burst_records: List[Dict[str, Any]] = []
        events_log: List[Dict[str, Any]] = []
        timeline: List[Dict[str, Any]] = []
        recoveries: List[Optional[float]] = []
        recovery_tasks: List[asyncio.Task] = []
        tasks: List[asyncio.Task] = []
        loop = asyncio.get_running_loop()
        inflight = asyncio.Semaphore(self.max_inflight)

        async def one(pool_idx: int, fault_idx: int, bucket: List[Dict[str, Any]]) -> None:
            record: Dict[str, Any] = {"pool": pool_idx, "index": fault_idx}
            try:
                result = await deployment.service.submit(images[pool_idx], index=fault_idx)
                record.update(
                    outcome="completed",
                    prediction=int(result.prediction),
                    cached=bool(result.cached),
                    latency_ms=float(result.latency_ms),
                )
            except ServiceOverloaded:
                record["outcome"] = "rejected"
            except RequestTimeout:
                record["outcome"] = "timeout"
            except Exception as exc:  # noqa: BLE001 - a failed request is data, not a crash
                record.update(outcome="error", detail=repr(exc))
            finally:
                bucket.append(record)
                inflight.release()

        async def watch_recovery(
            engine: Any,
            baseline: int,
            deaths_before: int,
            entry: Dict[str, Any],
            span: Optional[Any] = None,
        ) -> None:
            """Measure kill -> capacity-restored.

            Recovered means the engine both *observed* the death (its
            ``deaths`` counter moved past ``deaths_before``) and holds at
            least ``baseline`` workers again.  ``ensure_capacity`` (when the
            engine has it) is polled so recovery does not wait for the next
            cache miss to dispatch; the thread engine counts the kill
            synchronously and never drops capacity, so it recovers on the
            first poll.
            """
            killed_at = loop.time()
            ensure = getattr(engine, "ensure_capacity", None)
            while loop.time() - killed_at < RECOVERY_DEADLINE_S:
                if callable(ensure):
                    ensure()
                workers = int(getattr(engine, "workers", baseline))
                observed = int(getattr(engine, "deaths", deaths_before + 1)) > deaths_before
                if observed and workers >= baseline:
                    recovery = (loop.time() - killed_at) * 1000.0
                    entry["recovery_ms"] = recovery
                    recoveries.append(recovery)
                    if span is not None:
                        tracer.end(span, recovered=True, recovery_ms=recovery)
                    _log.info("recovered", recovery_ms=round(recovery, 3))
                    return
                await asyncio.sleep(0.005)
            entry["recovery_ms"] = None
            recoveries.append(None)
            if span is not None:
                tracer.end(span, recovered=False)
            _log.warning("recovery_deadline_missed", deadline_s=RECOVERY_DEADLINE_S)

        def snapshot_entry(label: str, at_request: int, started: float) -> Dict[str, Any]:
            snap = deployment.service.stats_snapshot()
            entry = {
                "label": label,
                "at_request": at_request,
                "t_s": round(loop.time() - started, 6),
                "completed": snap["requests"]["completed"],
                "rejected": snap["requests"]["rejected"],
                "timeouts": snap["requests"]["timeouts"],
                "errors": snap["requests"]["errors"],
                "queue_depth": snap["requests"]["queue_depth"],
                "throughput_per_s": snap["throughput_per_s"],
                "p99_ms": snap["latency"]["p99_ms"],
                "mean_batch_size": snap["batching"]["mean_batch_size"],
                "cache_hits": snap["cache"]["hits"],
            }
            engine_snap = snap.get("engine")
            if isinstance(engine_snap, dict) and "lifecycle" in engine_snap:
                entry["lifecycle"] = dict(engine_snap["lifecycle"])
            return entry

        async def fire_event(event: EventSpec, ordinal: int, started: float) -> None:
            entry: Dict[str, Any] = {
                "action": event.action,
                "at_request": ordinal,
                "t_s": round(loop.time() - started, 6),
            }
            _log.info("event_fired", action=event.action, at_request=ordinal)
            # Kill events get a span covering injection -> recovery (the
            # recovery watcher closes it); everything else is an instant.
            event_span = None
            if trace_on:
                if event.action in ("kill_shard", "dead_tile"):
                    event_span = tracer.begin(
                        f"chaos.{event.action}", cat="scenario", parent=run_span, at_request=ordinal
                    )
                else:
                    tracer.instant(
                        f"event.{event.action}", cat="scenario", parent=run_span, at_request=ordinal
                    )
            if event.action == "kill_shard":
                kill = getattr(deployment.engine, "kill_shard", None)
                if not callable(kill):
                    raise ScenarioError(
                        f"engine {type(deployment.engine).__name__} has no kill_shard "
                        "chaos hook; kill_shard events need one"
                    )
                engine = deployment.engine
                min_shards = getattr(engine, "min_shards", None)
                baseline = int(engine.workers)
                if min_shards is not None:
                    # An autoscaled engine only respawns back up to min_shards;
                    # demanding the pre-kill (possibly scaled-up) count would
                    # make recovery unreachable.
                    baseline = min(baseline, int(min_shards))
                deaths_before = int(getattr(engine, "deaths", 0))
                entry["slot"] = kill(event.slot)
                recovery_tasks.append(
                    asyncio.create_task(
                        watch_recovery(engine, baseline, deaths_before, entry, span=event_span)
                    )
                )
                event_span = None  # the watcher owns (and closes) it now
            elif event.action == "dead_tile":
                kill = getattr(deployment.engine, "kill_tile", None)
                if not callable(kill):
                    raise ScenarioError(
                        f"engine {type(deployment.engine).__name__} has no kill_tile "
                        "chaos hook; dead_tile events need the fabric engine"
                    )
                engine = deployment.engine
                baseline = int(engine.workers)
                deaths_before = int(getattr(engine, "deaths", 0))
                # Recovery is the re-place-and-route: deaths bumps once the
                # tile is replaced, workers never drop (replicas rebuild on
                # their next batch), so the same watcher applies.
                entry["tile"] = kill(event.slot)
                recovery_tasks.append(
                    asyncio.create_task(
                        watch_recovery(engine, baseline, deaths_before, entry, span=event_span)
                    )
                )
                event_span = None  # the watcher owns (and closes) it now
            elif event.action == "cache_loss":
                if deployment.cache is not None:
                    entry["dropped_entries"] = len(deployment.cache)
                    deployment.cache.clear(drop_backing=True)
                else:
                    entry["dropped_entries"] = 0
            elif event.action == "flip_storm":
                entry["until_request"] = min(n, int(round(event.until_frac * n)))
                entry["index_offset"] = event.index_offset
            elif event.action == "queue_burst":
                # Simultaneous extras on top of the paced stream; rejections
                # here are the backpressure behaviour under test.
                offset = self._storm_offset(ordinal, n)
                for extra in range(event.count):
                    pool_idx = extra % len(images)
                    await inflight.acquire()
                    tasks.append(
                        asyncio.create_task(one(pool_idx, pool_idx + offset, burst_records))
                    )
                entry["count"] = event.count
            if event_span is not None:
                # Non-recovery chaos (or a kill with nothing to kill): the
                # span covers just the injection itself.
                tracer.end(event_span)
            events_log.append(entry)
            timeline.append(snapshot_entry(f"event:{event.action}", ordinal, started))

        async with deployment:
            started = loop.time()
            timeline.append(snapshot_entry("start", 0, started))
            submit_span = (
                tracer.begin("scenario.submit", cat="scenario", parent=run_span, requests=n)
                if trace_on
                else None
            )
            pending_events = list(schedule)
            for i in range(n):
                while pending_events and pending_events[0][0] <= i:
                    ordinal, event = pending_events.pop(0)
                    await fire_event(event, ordinal, started)
                due = started + float(workload.arrivals_s[i])
                delay = due - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                pool_idx = int(workload.image_indices[i])
                await inflight.acquire()
                tasks.append(
                    asyncio.create_task(one(pool_idx, pool_idx + self._storm_offset(i, n), records))
                )
            for ordinal, event in pending_events:
                await fire_event(event, ordinal, started)
            if submit_span is not None:
                tracer.end(submit_span)
            drain_span = (
                tracer.begin("scenario.drain", cat="scenario", parent=run_span) if trace_on else None
            )
            if tasks:
                await asyncio.gather(*tasks)
            if recovery_tasks:
                await asyncio.gather(*recovery_tasks)
            if drain_span is not None:
                tracer.end(drain_span)
            elapsed = loop.time() - started
            timeline.append(snapshot_entry("end", n, started))
            final_stats = deployment.service.stats_snapshot()
            engine = deployment.engine
            deaths = int(getattr(engine, "deaths", 0))
            replacements = int(getattr(engine, "replacements", 0))
            min_shards = getattr(engine, "min_shards", None)
            if min_shards is not None:
                spawned = int(getattr(engine, "spawned", 0))
                retired = int(getattr(engine, "retired_count", 0))
                # Autoscale actions exclude the initial spawns and the
                # respawns that replace killed shards — those are recovery,
                # not flapping.
                scale_actions = max(0, spawned - int(min_shards) - deaths) + retired
            else:
                scale_actions = 0

        if run_span is not None:
            tracer.end(run_span, deaths=deaths, scale_actions=scale_actions)

        return {
            "records": records,
            "burst_records": burst_records,
            "events": events_log,
            "timeline": timeline,
            "final_stats": final_stats,
            "elapsed_s": elapsed,
            "deaths": deaths,
            "replacements": replacements,
            "scale_actions": scale_actions,
            "recoveries": recoveries,
        }

    # ------------------------------------------------------------- reference
    def _offline_reference(
        self, images: np.ndarray, completed: List[Dict[str, Any]]
    ) -> Dict[Tuple[int, int], int]:
        """Offline predictions for every unique ``(pool, fault index)`` served.

        One batched forward over the unique pairs equals per-image offline
        evaluation by the batch-invariance contract, so this is both the
        cheap and the strict reference.
        """
        pairs = sorted({(r["pool"], r["index"]) for r in completed})
        if not pairs:
            return {}
        predict = self._offline_predict
        if predict is None:
            from repro.serve.deploy import build_replica_factory

            pipeline = build_replica_factory(self.spec.deployment)()
            predict = pipeline.predict_batch
        pools = np.asarray([p for p, _ in pairs], dtype=np.int64)
        indices = np.asarray([i for _, i in pairs], dtype=np.int64)
        predictions = np.asarray(predict(images[pools], indices))
        return {pair: int(pred) for pair, pred in zip(pairs, predictions)}

    # -------------------------------------------------------------- finalise
    def _finalise(
        self, workload: Workload, images: np.ndarray, run: Dict[str, Any]
    ) -> Dict[str, Any]:
        all_records = run["records"] + run["burst_records"]
        completed = [r for r in all_records if r.get("outcome") == "completed"]
        reference = self._offline_reference(images, completed)
        mismatches = sum(
            1 for r in completed if reference[(r["pool"], r["index"])] != r["prediction"]
        )

        def count(outcome: str) -> int:
            return sum(1 for r in all_records if r.get("outcome") == outcome)

        outcome = ScenarioOutcome(
            offered=len(all_records),
            completed=len(completed),
            rejected=count("rejected"),
            timeouts=count("timeout"),
            errors=count("error"),
            latencies_ms=np.asarray([r["latency_ms"] for r in completed], dtype=float),
            mismatches=mismatches,
            recovery_ms=tuple(run["recoveries"]),
            deaths=run["deaths"],
            scale_actions=run["scale_actions"],
            replacements=run.get("replacements", 0),
        )
        verdicts = evaluate_assertions(self.spec.assertions, outcome)
        latency = {
            "p50_ms": outcome.percentile(50.0),
            "p95_ms": outcome.percentile(95.0),
            "p99_ms": outcome.percentile(99.0),
            "mean_ms": float(np.mean(outcome.latencies_ms)) if completed else None,
            "max_ms": float(np.max(outcome.latencies_ms)) if completed else None,
        }
        return {
            "kind": "serve/scenario-result",
            "name": self.spec.name,
            "scenario": self.spec.to_dict(),
            "workload": {
                "arrival": self.spec.workload.arrival,
                "requests": len(workload),
                "duration_s": workload.duration_s,
                "digest": workload_digest(workload),
            },
            "requests": {
                "offered": outcome.offered,
                "completed": outcome.completed,
                "rejected": outcome.rejected,
                "timeouts": outcome.timeouts,
                "errors": outcome.errors,
                "cached": sum(1 for r in completed if r.get("cached")),
                "bit_mismatches": mismatches,
            },
            "latency": latency,
            "elapsed_s": run["elapsed_s"],
            "throughput_per_s": outcome.completed / run["elapsed_s"] if run["elapsed_s"] > 0 else 0.0,
            "deaths": outcome.deaths,
            "replacements": outcome.replacements,
            "scale_actions": outcome.scale_actions,
            "recoveries_ms": list(outcome.recovery_ms),
            "events": run["events"],
            "timeline": run["timeline"],
            "final_stats": run["final_stats"],
            "assertions": verdicts,
            "ok": all(v["passed"] for v in verdicts),
        }
