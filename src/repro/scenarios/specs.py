"""Frozen, JSON-round-trippable scenario specs for the serving tier.

A *scenario* makes the paper's resilience claim executable: "SC inference
stays bit-identical under noise and component failure" is only a claim
until a file can state the traffic, the failures and the assertions — and
a runner can replay it deterministically.  :class:`ScenarioSpec` is that
file, mirroring :class:`repro.serve.specs.ServeSpec`:

* **frozen dataclass** — immutable; derive variants with
  :meth:`ScenarioSpec.with_updates`.
* **exact JSON round-trip** — ``ScenarioSpec.from_json(spec.to_json())``
  reconstructs the spec field for field, and re-serialising produces the
  same bytes (the golden-file property ``tests/test_scenarios.py`` gates
  on for every shipped ``examples/specs/scenario_*.json``).
* **validation at construction** — a typo'd arrival process, an event
  window that ends before it starts, or a ``flip_storm`` against a
  fault-free deployment all fail when the spec is *built*, not an hour
  into a soak run.

The JSON envelope is ``{"kind": "serve/scenario", "params": {...}}`` with
four nested sections:

* ``deployment`` — the full :class:`~repro.serve.specs.ServeSpec` params
  of the service under test (the scenario drives it in-process, so the
  ``transport`` field is ignored),
* ``workload`` — :class:`WorkloadSpec`: a synthetic arrival process
  (Poisson, heavy-tail Pareto, flash-crowd, diurnal sawtooth) generated
  deterministically from a seed, or a recorded trace replay,
* ``events`` — :class:`EventSpec` entries: the timed degradation schedule
  (shard kills, cache-disk loss, ``flip_prob`` storm windows,
  queue-saturation bursts), positioned by request-ordinal fraction so the
  same schedule scales with the workload size,
* ``assertions`` — :class:`AssertionSpec` entries from the catalog in
  :mod:`repro.scenarios.assertions` (bit-identity vs offline eval, SLO
  ceilings, recovery deadlines, autoscale-flapping bounds).

``repro run`` sniffs the ``kind`` tag and routes scenario files through
``repro scenario``, which shares the content-addressed sweep cache — a
scenario result is a cacheable artifact exactly like a DSE row.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Type, Union

from repro.scenarios.assertions import ASSERTION_CHECKS
from repro.serve.specs import ServeSpec

__all__ = [
    "SCENARIO_KIND",
    "ARRIVALS",
    "EVENT_ACTIONS",
    "AssertionSpec",
    "EventSpec",
    "ScenarioSpec",
    "WorkloadSpec",
]

#: The ``kind`` tag of every serialised scenario spec (``repro run`` sniffs it).
SCENARIO_KIND = "serve/scenario"

#: Supported arrival processes (``"trace"`` replays a recorded file).
ARRIVALS = ("poisson", "pareto", "flashcrowd", "diurnal", "trace")

#: Supported degradation actions.
EVENT_ACTIONS = ("kill_shard", "cache_loss", "flip_storm", "queue_burst", "dead_tile")


def _check_params(cls: Type, params: Dict[str, Any], label: str) -> Dict[str, Any]:
    """Reject unknown keys before constructing a nested spec section."""
    if not isinstance(params, dict):
        raise ValueError(f"{label} must be a JSON object, got {type(params).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(f"unknown {label} params: {', '.join(unknown)}")
    return params


@dataclass(frozen=True)
class WorkloadSpec:
    """One deterministic request stream: arrival process + image pool.

    ``requests`` arrivals are generated from ``seed`` alone
    (:func:`repro.scenarios.workload.generate_workload` is byte-stable for
    a fixed seed — a property tested across platforms), cycling over a
    pool of ``image_pool`` synthetic images drawn from ``image_seed``.
    ``rate`` is the mean offered rate in requests/s for every synthetic
    process; traces replay at their recorded timing and ignore it.

    Process-specific knobs: ``pareto_shape`` (> 1; smaller = heavier
    tail), the flash-crowd burst layout (``flash_bursts`` windows at
    ``flash_factor`` x rate covering ``flash_frac`` of the requests), and
    the diurnal sawtooth (period ``diurnal_period_s`` seconds, troughs at
    ``diurnal_low`` x rate).
    """

    arrival: str = "poisson"
    requests: int = 128
    rate: float = 200.0
    seed: int = 2024
    image_pool: int = 64
    image_seed: int = 7
    pareto_shape: float = 1.5
    flash_bursts: int = 2
    flash_factor: float = 8.0
    flash_frac: float = 0.2
    diurnal_period_s: float = 2.0
    diurnal_low: float = 0.25
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVALS:
            raise ValueError(f"arrival must be one of {ARRIVALS}, got {self.arrival!r}")
        for name in ("requests", "image_pool", "flash_bursts"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
                raise ValueError(f"{name} must be a positive int, got {value!r}")
        for name in ("rate", "flash_factor", "diurnal_period_s"):
            if float(getattr(self, name)) <= 0.0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)!r}")
        if float(self.pareto_shape) <= 1.0:
            # The mean inter-arrival gap is only finite above 1.
            raise ValueError(f"pareto_shape must be > 1, got {self.pareto_shape!r}")
        if not 0.0 < float(self.flash_frac) < 1.0:
            raise ValueError(f"flash_frac must be in (0, 1), got {self.flash_frac!r}")
        if not 0.0 < float(self.diurnal_low) <= 1.0:
            raise ValueError(f"diurnal_low must be in (0, 1], got {self.diurnal_low!r}")
        if self.arrival == "trace" and not self.trace_path:
            raise ValueError("arrival 'trace' requires trace_path")
        if self.trace_path is not None and not isinstance(self.trace_path, str):
            raise ValueError(f"trace_path must be a path string or null, got {self.trace_path!r}")


@dataclass(frozen=True)
class EventSpec:
    """One timed degradation, positioned by request-ordinal fraction.

    ``at_frac`` in ``[0, 1]`` fires the event just before that fraction of
    the workload has been submitted (fractions, not wall-clock seconds, so
    the same schedule composes with any workload size or rate).  Actions:

    * ``kill_shard`` — SIGKILL a worker shard (process engine) or discard
      every worker replica (thread engine); ``slot`` targets a specific
      shard, null kills the busiest.  ``every_frac`` repeats the kill
      periodically (soak scenarios).
    * ``cache_loss`` — simulated cache-disk loss: the prediction cache
      forgets everything and detaches its disk backing.
    * ``flip_storm`` — from ``at_frac`` until ``until_frac``, submitted
      requests carry fault indices offset by ``index_offset``, selecting a
      fresh per-request bit-flip noise realisation through the engine's
      per-index fault seeding (requires a deployment with
      ``flip_prob > 0``); bit-identity stays checkable because offline
      evaluation applies the same offset.
    * ``queue_burst`` — inject ``count`` simultaneous extra requests on
      top of the paced stream (queue-saturation test; rejections are the
      expected backpressure response).
    * ``dead_tile`` — kill the fabric tile hosting schedule slot ``slot``
      (null kills slot 0) and assert recovery by re-place-and-route
      (requires the ``fabric`` engine; see
      :meth:`repro.fabric.engine.FabricEngine.kill_tile`).  The
      ``replacements_min`` assertion gates on the re-place count.
    """

    action: str = "kill_shard"
    at_frac: float = 0.5
    until_frac: Optional[float] = None
    every_frac: Optional[float] = None
    count: int = 32
    index_offset: int = 1000000
    slot: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in EVENT_ACTIONS:
            raise ValueError(f"action must be one of {EVENT_ACTIONS}, got {self.action!r}")
        if not 0.0 <= float(self.at_frac) <= 1.0:
            raise ValueError(f"at_frac must be in [0, 1], got {self.at_frac!r}")
        if self.action == "flip_storm":
            if self.until_frac is None:
                raise ValueError("flip_storm requires until_frac (the storm window end)")
            if not float(self.at_frac) < float(self.until_frac) <= 1.0:
                raise ValueError(
                    f"until_frac must be in (at_frac, 1], got {self.until_frac!r}"
                )
        elif self.until_frac is not None:
            raise ValueError(f"until_frac only applies to flip_storm, not {self.action!r}")
        if self.every_frac is not None and not 0.0 < float(self.every_frac) <= 1.0:
            raise ValueError(f"every_frac must be in (0, 1], got {self.every_frac!r}")
        if not isinstance(self.count, int) or isinstance(self.count, bool) or self.count <= 0:
            raise ValueError(f"count must be a positive int, got {self.count!r}")
        if not isinstance(self.index_offset, int) or self.index_offset <= 0:
            raise ValueError(f"index_offset must be a positive int, got {self.index_offset!r}")
        if self.slot is not None and (not isinstance(self.slot, int) or self.slot < 0):
            raise ValueError(f"slot must be a non-negative int or null, got {self.slot!r}")


@dataclass(frozen=True)
class AssertionSpec:
    """One declarative pass/fail check over a scenario's outcome.

    ``check`` names an entry of the catalog in
    :mod:`repro.scenarios.assertions` (``bit_identity``, ``p99_ms_max``,
    ``timeout_rate_max``, ``recovery_ms_max``, ``deaths_min``,
    ``scale_actions_max``, ...).  ``value`` is the threshold for bounded
    checks and must be null for value-less ones (``bit_identity``).
    """

    check: str = "bit_identity"
    value: Optional[float] = None

    def __post_init__(self) -> None:
        entry = ASSERTION_CHECKS.get(self.check)
        if entry is None:
            raise ValueError(
                f"unknown assertion check {self.check!r}; "
                f"expected one of {tuple(sorted(ASSERTION_CHECKS))}"
            )
        if entry.needs_value and self.value is None:
            raise ValueError(f"assertion {self.check!r} requires a value (its threshold)")
        if not entry.needs_value and self.value is not None:
            raise ValueError(f"assertion {self.check!r} takes no value")
        if self.value is not None and not isinstance(self.value, (int, float)):
            raise ValueError(f"assertion value must be a number, got {self.value!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, reproducible resilience scenario.

    Composes a deployment under test, a deterministic workload, a timed
    degradation schedule and the assertions that make the run a gate.  See
    the module docstring for the JSON envelope and ``docs/scenarios.md``
    for the schema reference.
    """

    name: str = ""
    description: str = ""
    deployment: ServeSpec = field(default_factory=ServeSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    events: Tuple[EventSpec, ...] = ()
    assertions: Tuple[AssertionSpec, ...] = (AssertionSpec(),)

    def __post_init__(self) -> None:
        if not isinstance(self.deployment, ServeSpec):
            raise ValueError("deployment must be a ServeSpec")
        if not isinstance(self.workload, WorkloadSpec):
            raise ValueError("workload must be a WorkloadSpec")
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "assertions", tuple(self.assertions))
        for event in self.events:
            if not isinstance(event, EventSpec):
                raise ValueError("events must be EventSpec instances")
        for assertion in self.assertions:
            if not isinstance(assertion, AssertionSpec):
                raise ValueError("assertions must be AssertionSpec instances")
        if not self.assertions:
            raise ValueError("a scenario needs at least one assertion (it is a gate)")
        storms = [e for e in self.events if e.action == "flip_storm"]
        if storms and float(self.deployment.flip_prob) <= 0.0:
            raise ValueError(
                "flip_storm events require a deployment with flip_prob > 0 "
                "(the storm offsets per-request fault indices; with faults off "
                "there is nothing to storm)"
            )

    # ------------------------------------------------------------- round trip
    def to_dict(self) -> Dict[str, Any]:
        """``{"kind": "serve/scenario", "params": {...}}``, fully expanded.

        Every nested section serialises with all fields present in
        declaration order, so the output is canonical: it is also the
        content-addressed identity ``repro scenario`` caches results under.
        """
        return {
            "kind": SCENARIO_KIND,
            "params": {
                "name": self.name,
                "description": self.description,
                "deployment": dataclasses.asdict(self.deployment),
                "workload": dataclasses.asdict(self.workload),
                "events": [dataclasses.asdict(event) for event in self.events],
                "assertions": [dataclasses.asdict(a) for a in self.assertions],
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON — the byte-exact inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"scenario spec must be a JSON object, got {type(payload).__name__}")
        kind = payload.get("kind")
        if kind != SCENARIO_KIND:
            raise ValueError(f"expected kind {SCENARIO_KIND!r}, got {kind!r}")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ValueError("params must be a JSON object")
        known = {"name", "description", "deployment", "workload", "events", "assertions"}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ValueError(f"unknown scenario spec params: {', '.join(unknown)}")
        deployment = ServeSpec(**_check_params(ServeSpec, params.get("deployment", {}), "deployment"))
        workload = WorkloadSpec(**_check_params(WorkloadSpec, params.get("workload", {}), "workload"))
        events = tuple(
            EventSpec(**_check_params(EventSpec, entry, "event"))
            for entry in params.get("events", [])
        )
        raw_assertions = params.get("assertions")
        if raw_assertions is None:
            assertions: Tuple[AssertionSpec, ...] = (AssertionSpec(),)
        else:
            assertions = tuple(
                AssertionSpec(**_check_params(AssertionSpec, entry, "assertion"))
                for entry in raw_assertions
            )
        return cls(
            name=str(params.get("name", "")),
            description=str(params.get("description", "")),
            deployment=deployment,
            workload=workload,
            events=events,
            assertions=assertions,
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ScenarioSpec":
        path = Path(path)
        try:
            return cls.from_json(path.read_text())
        except (ValueError, OSError) as exc:
            raise type(exc)(f"{path}: {exc}") from exc

    # ------------------------------------------------------------ derivation
    def with_updates(self, **updates: Any) -> "ScenarioSpec":
        """A new spec with ``updates`` applied (validation re-runs)."""
        return dataclasses.replace(self, **updates)

    @staticmethod
    def sniff(payload: Any) -> bool:
        """True when a decoded JSON payload looks like a scenario spec."""
        return isinstance(payload, dict) and payload.get("kind") == SCENARIO_KIND
