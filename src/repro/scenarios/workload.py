"""Deterministic request-stream generation for scenario replay.

A :class:`~repro.scenarios.specs.WorkloadSpec` expands into a
:class:`Workload` — arrival offsets (seconds from scenario start, float64,
non-decreasing) plus per-request image-pool indices — through
:func:`generate_workload`.  Generation is **byte-stable for a fixed
seed**: every draw goes through ``np.random.default_rng`` (the PCG64
streams are specified independently of platform), arrays carry pinned
dtypes, and :func:`workload_digest` content-addresses the result so the
property is testable (``tests/test_scenarios.py`` holds a golden digest).

Synthetic arrival processes (all with mean offered rate ``spec.rate``):

* ``poisson`` — i.i.d. exponential gaps; the memoryless baseline.
* ``pareto`` — heavy-tailed Lomax gaps scaled to the same mean; a few
  huge silences followed by dense clumps (the open-loop killer).
* ``flashcrowd`` — Poisson base load with ``flash_bursts`` windows at
  ``flash_factor`` x rate covering ``flash_frac`` of the requests.
* ``diurnal`` — exponential gaps whose instantaneous rate follows a
  sawtooth between ``diurnal_low`` x and 1 x rate with period
  ``diurnal_period_s`` (a compressed day/night cycle for soak runs).

``trace`` replays a recorded file instead: the JSON envelope
``{"kind": "serve/trace", "arrivals_s": [...], "image_indices": [...]}``
(write one with :func:`save_trace`; floats round-trip exactly through
``repr`` so a saved trace re-digests identically).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.runner.cache import array_digest
from repro.scenarios.specs import WorkloadSpec

__all__ = ["TRACE_KIND", "Workload", "generate_workload", "load_trace", "save_trace", "workload_digest"]

#: The ``kind`` tag of a recorded trace file.
TRACE_KIND = "serve/trace"


@dataclass
class Workload:
    """One concrete request stream: when each request arrives, which image."""

    #: Arrival offsets in seconds from scenario start (float64, sorted).
    arrivals_s: np.ndarray
    #: Image-pool index per request (int64, in ``[0, image_pool)``).
    image_indices: np.ndarray

    def __post_init__(self) -> None:
        self.arrivals_s = np.ascontiguousarray(self.arrivals_s, dtype=np.float64)
        self.image_indices = np.ascontiguousarray(self.image_indices, dtype=np.int64)
        if self.arrivals_s.ndim != 1 or self.arrivals_s.shape != self.image_indices.shape:
            raise ValueError("arrivals_s and image_indices must be 1-D and the same length")
        if self.arrivals_s.size and np.any(np.diff(self.arrivals_s) < 0):
            raise ValueError("arrivals_s must be non-decreasing")

    def __len__(self) -> int:
        return int(self.arrivals_s.size)

    @property
    def duration_s(self) -> float:
        return float(self.arrivals_s[-1]) if len(self) else 0.0


def workload_digest(workload: Workload) -> str:
    """Content digest of a workload (dtype + shape + bytes of both arrays).

    The byte-stability contract: the same :class:`WorkloadSpec` must
    produce the same digest on every platform and in every process.
    """
    return array_digest(workload.arrivals_s, workload.image_indices)


def _gaps_poisson(rng: np.random.Generator, spec: WorkloadSpec) -> np.ndarray:
    return rng.exponential(1.0 / spec.rate, spec.requests)


def _gaps_pareto(rng: np.random.Generator, spec: WorkloadSpec) -> np.ndarray:
    # np.random.Generator.pareto samples Lomax(shape) with mean 1/(shape-1)
    # for shape > 1; rescale so the mean gap is 1/rate like every other
    # process (heavier tail, same offered load).
    scale = (spec.pareto_shape - 1.0) / spec.rate
    return rng.pareto(spec.pareto_shape, spec.requests) * scale


def _gaps_flashcrowd(rng: np.random.Generator, spec: WorkloadSpec) -> np.ndarray:
    n = spec.requests
    per_request_rate = np.full(n, spec.rate, dtype=np.float64)
    burst_total = max(spec.flash_bursts, int(round(n * spec.flash_frac)))
    burst_len = max(1, burst_total // spec.flash_bursts)
    for burst in range(spec.flash_bursts):
        center = (burst + 0.5) / spec.flash_bursts
        start = int(round(center * n - burst_len / 2.0))
        start = min(max(start, 0), max(0, n - burst_len))
        per_request_rate[start : start + burst_len] = spec.rate * spec.flash_factor
    return rng.exponential(1.0, n) / per_request_rate


def _gaps_diurnal(rng: np.random.Generator, spec: WorkloadSpec) -> np.ndarray:
    # Sequential by construction: each gap depends on the arrival time so
    # far (the sawtooth is a function of wall-clock position).  Unit
    # exponentials are drawn up front in one vectorised call, so the RNG
    # consumption — and therefore the byte-stability digest — does not
    # depend on how the loop is scheduled.
    unit = rng.exponential(1.0, spec.requests)
    gaps = np.empty(spec.requests, dtype=np.float64)
    t = 0.0
    low = spec.diurnal_low
    for i in range(spec.requests):
        phase = (t / spec.diurnal_period_s) % 1.0
        rate = spec.rate * (low + (1.0 - low) * phase)
        gaps[i] = unit[i] / rate
        t += gaps[i]
    return gaps


_SYNTHETIC = {
    "poisson": _gaps_poisson,
    "pareto": _gaps_pareto,
    "flashcrowd": _gaps_flashcrowd,
    "diurnal": _gaps_diurnal,
}


def generate_workload(spec: WorkloadSpec, base_dir: Optional[Union[str, Path]] = None) -> Workload:
    """Expand ``spec`` into a concrete :class:`Workload`.

    Synthetic processes draw gaps first, then image indices, from one
    ``default_rng(spec.seed)`` stream (a fixed draw order is part of the
    stability contract).  ``trace`` loads the recorded file instead —
    ``trace_path`` resolves relative to ``base_dir`` (the scenario file's
    directory, typically) when it is not absolute.
    """
    if spec.arrival == "trace":
        path = Path(spec.trace_path)
        if not path.is_absolute() and base_dir is not None:
            path = Path(base_dir) / path
        return load_trace(path)
    rng = np.random.default_rng(spec.seed)
    gaps = np.asarray(_SYNTHETIC[spec.arrival](rng, spec), dtype=np.float64)
    indices = rng.integers(0, spec.image_pool, size=spec.requests, dtype=np.int64)
    return Workload(arrivals_s=np.cumsum(gaps), image_indices=indices)


def save_trace(path: Union[str, Path], workload: Workload) -> Path:
    """Record ``workload`` as a replayable JSON trace file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # JSON floats serialise via repr (shortest exact round-trip), so the
    # reloaded trace re-digests identically to the recorded workload.
    document = {
        "kind": TRACE_KIND,
        "arrivals_s": [float(t) for t in workload.arrivals_s],
        "image_indices": [int(i) for i in workload.image_indices],
    }
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def load_trace(path: Union[str, Path]) -> Workload:
    """Load a trace recorded by :func:`save_trace` (exact float round-trip)."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise type(exc)(f"{path}: {exc}") from exc
    if not isinstance(document, dict) or document.get("kind") != TRACE_KIND:
        raise ValueError(f"{path}: not a {TRACE_KIND!r} trace file")
    arrivals = np.asarray([float(t) for t in document["arrivals_s"]], dtype=np.float64)
    indices = np.asarray(document["image_indices"], dtype=np.int64)
    return Workload(arrivals_s=arrivals, image_indices=indices)
