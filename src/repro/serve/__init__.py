"""Async dynamic-batching inference service for the SC-ViT reproduction.

The serving subsystem turns the offline evaluation stack into an online
service without giving up a single bit of its accuracy guarantees: PR 3's
batch-invariant numerics plus per-image fault seeding mean concurrent
requests can be coalesced into opportunistic micro-batches whose results
are bit-identical to evaluating each image alone.

* :mod:`repro.serve.service` — :class:`InferenceService`: bounded request
  queue with explicit backpressure, request coalescing, per-request
  timeouts, stats snapshot.
* :mod:`repro.serve.batcher` — :class:`DynamicBatcher`: flush on
  ``max_batch`` or ``max_wait_ms``, whichever first; batch size adapts to
  load.
* :mod:`repro.serve.engine` — :class:`PipelineEngine`: thread worker pool
  running :class:`~repro.eval_pipeline.ScViTEvalPipeline` forwards on
  per-worker model replicas (circuits built via :mod:`repro.blocks`).
* :mod:`repro.serve.cache` — :class:`PredictionCache`: idempotent
  per-request result reuse, content-addressed with the sweep cache's
  fingerprint scheme (:func:`repro.runner.cache.cache_key`).
* :mod:`repro.serve.stats` — :class:`ServiceStats`: throughput, p50/p95/p99
  latency, batch-size histogram, cache hit rate.
* :mod:`repro.serve.transport` — stdio/TCP JSON-lines and localhost-HTTP
  front ends over one shared protocol handler.

Entry points: ``python -m repro serve`` (CLI),
``benchmarks/bench_serve_latency.py`` (closed-/open-loop load generator ->
``BENCH_serve.json``) and the ``serve`` section of ``python -m repro
verify``.  See ``docs/serving.md``.
"""

from repro.serve.batcher import DynamicBatcher
from repro.serve.cache import PredictionCache, request_fingerprint
from repro.serve.engine import PipelineEngine, build_engine, pipeline_fingerprint
from repro.serve.service import (
    InferenceService,
    PredictionResult,
    RequestTimeout,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.serve.stats import ServiceStats
from repro.serve.transport import handle_message, serve_http, serve_stdio

__all__ = [
    "DynamicBatcher",
    "InferenceService",
    "PipelineEngine",
    "PredictionCache",
    "PredictionResult",
    "RequestTimeout",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceStats",
    "build_engine",
    "handle_message",
    "pipeline_fingerprint",
    "request_fingerprint",
    "serve_http",
    "serve_stdio",
]
