"""Async dynamic-batching inference tier for the SC-ViT reproduction.

The serving subsystem turns the offline evaluation stack into an online
service without giving up a single bit of its accuracy guarantees: PR 3's
batch-invariant numerics plus per-image fault seeding mean concurrent
requests can be coalesced into opportunistic micro-batches whose results
are bit-identical to evaluating each image alone — and (since the sharded
tier) dispatched to any worker *process* with the same guarantee.

* :mod:`repro.serve.specs` — :class:`ServeSpec`: a frozen,
  JSON-round-trippable description of one whole deployment (model,
  circuit, engine family, sharding, cache, transport), mirroring
  :mod:`repro.blocks.specs`.
* :mod:`repro.serve.deploy` — :func:`build_deployment`: the single path
  from a spec to a startable :class:`Deployment` (what ``repro serve
  --spec`` and ``repro run`` use).
* :mod:`repro.serve.service` — :class:`InferenceService`: bounded request
  queue with explicit backpressure, request coalescing, per-request
  timeouts, stats snapshot.
* :mod:`repro.serve.batcher` — :class:`DynamicBatcher`: flush on
  ``max_batch`` or ``max_wait_ms``, whichever first; batch size adapts to
  load.
* :mod:`repro.serve.engine` — the :class:`EngineProtocol` seam,
  :class:`ReplicaFactory`, and :class:`PipelineEngine`: thread worker pool
  running :class:`~repro.eval_pipeline.ScViTEvalPipeline` forwards on
  per-worker model replicas (circuits built via :mod:`repro.blocks`).
* :mod:`repro.serve.sharded` — :class:`ShardedProcessEngine`: N worker
  processes with per-process replicas, NPZ-frame pipe handoff,
  worker-death re-dispatch and queue-depth replica scaling.
* :mod:`repro.serve.cache` — :class:`PredictionCache` and its
  consistent-hash sharded sibling :class:`ShardedPredictionCache`:
  idempotent per-request result reuse, content-addressed with the sweep
  cache's fingerprint scheme (:func:`repro.runner.cache.cache_key`).
* :mod:`repro.serve.stats` — :class:`ServiceStats`: throughput,
  p50/p95/p99 latency, batch-size histogram, cache hit rate; per-shard
  instances aggregate with :meth:`ServiceStats.merge`.
* :mod:`repro.serve.transport` — stdio/TCP JSON-lines and localhost-HTTP
  front ends over one shared protocol handler.

Entry points: ``python -m repro serve [--spec deployment.json]`` (CLI),
``benchmarks/bench_serve_latency.py`` (closed-/open-loop + sharded
scaling load generator -> ``BENCH_serve.json``) and the ``serve``
sections of ``python -m repro verify``.  See ``docs/serving.md``.
"""

from repro.serve.batcher import DynamicBatcher
from repro.serve.cache import (
    HashRing,
    PredictionCache,
    ShardedPredictionCache,
    request_fingerprint,
)
from repro.serve.deploy import Deployment, build_deployment, build_replica_factory
from repro.serve.engine import (
    EngineProtocol,
    PipelineEngine,
    ReplicaFactory,
    build_engine,
    pipeline_fingerprint,
)
from repro.serve.service import (
    InferenceService,
    PredictionResult,
    RequestTimeout,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.serve.sharded import ShardedProcessEngine, build_sharded_engine
from repro.serve.specs import ServeSpec
from repro.serve.stats import ServiceStats
from repro.serve.transport import handle_message, render_metrics, serve_http, serve_stdio

__all__ = [
    "Deployment",
    "DynamicBatcher",
    "EngineProtocol",
    "HashRing",
    "InferenceService",
    "PipelineEngine",
    "PredictionCache",
    "PredictionResult",
    "ReplicaFactory",
    "RequestTimeout",
    "ServeSpec",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceStats",
    "ShardedPredictionCache",
    "ShardedProcessEngine",
    "build_deployment",
    "build_replica_factory",
    "build_engine",
    "build_sharded_engine",
    "handle_message",
    "pipeline_fingerprint",
    "render_metrics",
    "request_fingerprint",
    "serve_http",
    "serve_stdio",
]
