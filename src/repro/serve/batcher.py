"""Dynamic micro-batching: coalesce queued requests without changing answers.

The whole reason serving can batch at all is PR 3's invariant: under
``batch_invariant_matmul`` plus per-image fault seeding, a prediction does
not depend on which other images share its forward pass, so the batcher is
free to group whatever happens to be waiting.  Batching is then purely a
throughput/latency trade:

* flush at ``max_batch`` — bounds per-request queueing behind a big batch,
* flush at ``max_wait_ms`` after the first request — bounds the latency a
  lone request pays waiting for company,

whichever comes first.  Under load the queue is never empty, batches fill
to ``max_batch`` instantly and the wait timer never fires; at low traffic
every request ships after at most ``max_wait_ms`` alone or with whatever
arrived in the window.  ``max_wait_ms=0`` degenerates to "drain whatever is
already queued", which is the lowest-latency configuration.
"""

from __future__ import annotations

import asyncio
from typing import Any, List, Optional

__all__ = ["DynamicBatcher", "SHUTDOWN"]

#: Sentinel enqueued by the service to unblock and stop the batcher.
SHUTDOWN = object()


class DynamicBatcher:
    """Pull micro-batches off an :class:`asyncio.Queue`.

    Parameters
    ----------
    queue:
        The service's bounded request queue; items are opaque to the
        batcher except for the :data:`SHUTDOWN` sentinel.
    max_batch:
        Flush threshold: a batch never exceeds this many requests.
    max_wait_ms:
        Flush deadline: measured from when the batch's *first* request is
        picked up, so it is exactly the extra latency batching can add.
    """

    def __init__(self, queue: "asyncio.Queue", max_batch: int, max_wait_ms: float) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self._queue = queue
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once the shutdown sentinel has been consumed."""
        return self._closed

    async def next_batch(self) -> Optional[List[Any]]:
        """The next micro-batch, or ``None`` after shutdown.

        Blocks until at least one request is available, then collects more
        until ``max_batch`` or ``max_wait_ms``.  A shutdown sentinel seen
        mid-collection flushes the partial batch first; the following call
        returns ``None``.
        """
        if self._closed:
            return None
        first = await self._queue.get()
        if first is SHUTDOWN:
            self._closed = True
            return None
        batch = [first]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch and not self._closed:
            remaining = deadline - loop.time()
            if remaining <= 0:
                # Deadline passed: take only what is already queued.
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                try:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if item is SHUTDOWN:
                self._closed = True
                break
            batch.append(item)
        return batch
