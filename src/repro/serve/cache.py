"""Idempotent per-request result cache for the inference service.

Serving the same image twice must not cost two forwards: predictions are a
pure function of ``(weights, image, circuit config, fault seed, image
index)`` — see :meth:`repro.eval_pipeline.ScViTEvalPipeline.predict_batch`
— so a prediction can be content-addressed exactly like a sweep result.
Keys come from the same :func:`repro.runner.cache.cache_key` scheme the
sweep orchestrator uses: SHA-256 over canonical JSON of ``{task, config,
version, code}``, where

* ``config`` is the digest of the image bytes plus (only when fault
  injection is on) the per-request image index — fault masks are seeded per
  index, so the same pixels at a different index legitimately differ,
* ``version`` is the engine fingerprint (weights digest + circuit config +
  fault settings), so swapping the model or circuit invalidates everything,
* ``code`` is the usual source fingerprint.

The cache is an in-memory LRU, optionally write-through to a
:class:`repro.runner.cache.ResultCache` directory so a restarted server
starts warm and CLI/benchmark runs can share entries across processes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

import numpy as np

from repro.runner.cache import ResultCache, array_digest, cache_key

__all__ = ["PredictionCache", "request_fingerprint"]

#: Task label mixed into every request key (namespaces serve entries apart
#: from sweep entries that may share a ResultCache directory).
REQUEST_TASK = "serve/predict"


def request_fingerprint(
    image: np.ndarray,
    engine_version: str,
    image_index: Optional[int] = None,
    code_version: str = "",
) -> str:
    """Content-addressed identity of one prediction request.

    ``image_index`` must be passed iff fault injection is enabled: with
    faults off the prediction depends on the pixels alone (duplicate
    submissions collapse onto one entry); with faults on the per-index mask
    is part of the answer's identity.
    """
    config = {"image": array_digest(np.ascontiguousarray(image))}
    if image_index is not None:
        config["index"] = int(image_index)
    return cache_key(REQUEST_TASK, config, version=engine_version, code_version=code_version)


class PredictionCache:
    """Bounded in-memory LRU of predictions, optionally disk-backed.

    Parameters
    ----------
    backing:
        Optional :class:`ResultCache`; hits are promoted to memory, stores
        are written through, so a restarted service resumes warm.
    max_entries:
        In-memory LRU capacity (oldest entries evicted first).
    """

    def __init__(self, backing: Optional[ResultCache] = None, max_entries: int = 65536) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.backing = backing
        self.max_entries = int(max_entries)
        self._memory: "OrderedDict[str, int]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, key: str) -> Optional[int]:
        """The cached prediction for ``key``, or ``None`` on a miss."""
        if key in self._memory:
            self._memory.move_to_end(key)
            return self._memory[key]
        if self.backing is not None:
            hit = self.backing.load(key)
            if hit is not None and isinstance(hit.payload, dict) and "prediction" in hit.payload:
                prediction = int(hit.payload["prediction"])
                self._remember(key, prediction)
                return prediction
        return None

    def put(self, key: str, prediction: int) -> None:
        """Store one prediction (write-through when disk-backed)."""
        self._remember(key, int(prediction))
        if self.backing is not None:
            self.backing.store(key, {"prediction": int(prediction)})

    def _remember(self, key: str, prediction: int) -> None:
        self._memory[key] = prediction
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    # ResultCache.store takes a digest directly, so `key` strings from
    # request_fingerprint address both layers without translation.
    def __contains__(self, key: Any) -> bool:
        return key in self._memory or (self.backing is not None and key in self.backing)
