"""Idempotent per-request result cache for the inference service.

Serving the same image twice must not cost two forwards: predictions are a
pure function of ``(weights, image, circuit config, fault seed, image
index)`` — see :meth:`repro.eval_pipeline.ScViTEvalPipeline.predict_batch`
— so a prediction can be content-addressed exactly like a sweep result.
Keys come from the same :func:`repro.runner.cache.cache_key` scheme the
sweep orchestrator uses: SHA-256 over canonical JSON of ``{task, config,
version, code}``, where

* ``config`` is the digest of the image bytes plus (only when fault
  injection is on) the per-request image index — fault masks are seeded per
  index, so the same pixels at a different index legitimately differ,
* ``version`` is the engine fingerprint (weights digest + circuit config +
  fault settings), so swapping the model or circuit invalidates everything,
* ``code`` is the usual source fingerprint.

The cache is an in-memory LRU, optionally write-through to a
:class:`repro.runner.cache.ResultCache` directory so a restarted server
starts warm and CLI/benchmark runs can share entries across processes.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.runner.cache import ResultCache, array_digest, cache_key

__all__ = ["HashRing", "PredictionCache", "ShardedPredictionCache", "request_fingerprint"]

#: Task label mixed into every request key (namespaces serve entries apart
#: from sweep entries that may share a ResultCache directory).
REQUEST_TASK = "serve/predict"


def request_fingerprint(
    image: np.ndarray,
    engine_version: str,
    image_index: Optional[int] = None,
    code_version: str = "",
) -> str:
    """Content-addressed identity of one prediction request.

    ``image_index`` must be passed iff fault injection is enabled: with
    faults off the prediction depends on the pixels alone (duplicate
    submissions collapse onto one entry); with faults on the per-index mask
    is part of the answer's identity.
    """
    config = {"image": array_digest(np.ascontiguousarray(image))}
    if image_index is not None:
        config["index"] = int(image_index)
    return cache_key(REQUEST_TASK, config, version=engine_version, code_version=code_version)


class PredictionCache:
    """Bounded in-memory LRU of predictions, optionally disk-backed.

    Parameters
    ----------
    backing:
        Optional :class:`ResultCache`; hits are promoted to memory, stores
        are written through, so a restarted service resumes warm.
    max_entries:
        In-memory LRU capacity (oldest entries evicted first).
    """

    def __init__(self, backing: Optional[ResultCache] = None, max_entries: int = 65536) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.backing = backing
        self.max_entries = int(max_entries)
        self._memory: "OrderedDict[str, int]" = OrderedDict()
        # Plain-int accounting (not gated on telemetry: always cheap, and the
        # run/scenario summaries report them whether or not tracing is on).
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, key: str) -> Optional[int]:
        """The cached prediction for ``key``, or ``None`` on a miss."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.hits += 1
            return self._memory[key]
        if self.backing is not None:
            hit = self.backing.load(key)
            if hit is not None and isinstance(hit.payload, dict) and "prediction" in hit.payload:
                prediction = int(hit.payload["prediction"])
                self._remember(key, prediction)
                self.hits += 1
                return prediction
        self.misses += 1
        return None

    def put(self, key: str, prediction: int) -> None:
        """Store one prediction (write-through when disk-backed)."""
        self._remember(key, int(prediction))
        self.stores += 1
        if self.backing is not None:
            self.backing.store(key, {"prediction": int(prediction)})

    def counters(self) -> Dict[str, int]:
        """Hit/miss/store totals since construction (JSON-able)."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def clear(self, drop_backing: bool = False) -> None:
        """Forget every in-memory entry; optionally detach the disk backing.

        ``drop_backing=True`` is the scenario layer's ``cache_loss``
        degradation: the cache behaves as if its disk vanished — it
        detaches the :class:`ResultCache` handle rather than deleting the
        directory (which other processes may share).
        """
        self._memory.clear()
        if drop_backing:
            self.backing = None

    def _remember(self, key: str, prediction: int) -> None:
        self._memory[key] = prediction
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    # ResultCache.store takes a digest directly, so `key` strings from
    # request_fingerprint address both layers without translation.
    def __contains__(self, key: Any) -> bool:
        return key in self._memory or (self.backing is not None and key in self.backing)


class HashRing:
    """Consistent hashing of string keys onto a small set of nodes.

    Each node owns ``replicas`` virtual points on a SHA-256 ring; a key
    routes to the first point clockwise from its own hash.  Adding or
    removing one node therefore remaps only ~``1/n`` of the keyspace —
    exactly the property the sharded prediction cache needs so an engine
    that scales its shard count does not cold-start every partition.

    Deterministic across processes and runs: the placement depends only on
    the node names and ``replicas``, never on insertion order or hash
    randomisation (``PYTHONHASHSEED`` does not apply to SHA-256).
    """

    def __init__(self, nodes: Iterable[Any] = (), replicas: int = 64) -> None:
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, Any]] = []
        self._hashes: List[int] = []
        self._nodes: set = set()
        for node in nodes:
            self.add_node(node)

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")

    def _rebuild(self) -> None:
        self._points.sort()
        self._hashes = [point for point, _ in self._points]

    def add_node(self, node: Any) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._points.extend(
            (self._hash(f"{node}#{i}"), node) for i in range(self.replicas)
        )
        self._rebuild()

    def remove_node(self, node: Any) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(point, n) for point, n in self._points if n != node]
        self._rebuild()

    @property
    def nodes(self) -> set:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def node_for(self, key: str) -> Any:
        """The node owning ``key`` (clockwise successor on the ring)."""
        if not self._points:
            raise ValueError("hash ring has no nodes")
        position = bisect.bisect_right(self._hashes, self._hash(key))
        if position == len(self._points):
            position = 0
        return self._points[position][1]


class ShardedPredictionCache:
    """Per-shard cache partitions behind the :class:`PredictionCache` API.

    Keys route to a fixed partition by consistent hashing
    (:class:`HashRing`), so each shard's working set stays disjoint — no
    partition holds another shard's entries, and the memory bound is
    per-partition rather than one global LRU whose hot shard can evict a
    cold shard's entries.  The interface is a drop-in for
    :class:`PredictionCache` (``get``/``put``/``__len__``/``__contains__``),
    so :class:`~repro.serve.InferenceService` is agnostic to which it holds.

    ``add_shard`` grows the partition set in step with engine autoscaling;
    consistent hashing keeps ~``(n-1)/n`` of previously cached keys routed
    (and therefore warm) after the change.  A shared ``backing`` directory
    is safe across partitions: entries are content-addressed, so a key that
    remaps to a new partition is re-promoted from disk on its next miss.

    Parameters
    ----------
    shards:
        Initial partition count (>= 1).
    max_entries:
        In-memory LRU capacity **per partition**.
    backing:
        Optional shared :class:`ResultCache` written through by every
        partition.
    replicas:
        Virtual nodes per partition on the ring.
    """

    def __init__(
        self,
        shards: int = 2,
        max_entries: int = 65536,
        backing: Optional[ResultCache] = None,
        replicas: int = 64,
    ) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        self.backing = backing
        self.max_entries = int(max_entries)
        self._partitions: Dict[int, PredictionCache] = {}
        self._ring = HashRing(replicas=replicas)
        for _ in range(int(shards)):
            self.add_shard()

    def add_shard(self) -> int:
        """Add one partition; returns its shard id."""
        shard_id = len(self._partitions)
        self._partitions[shard_id] = PredictionCache(
            backing=self.backing, max_entries=self.max_entries
        )
        self._ring.add_node(shard_id)
        return shard_id

    @property
    def shards(self) -> int:
        return len(self._partitions)

    def shard_for(self, key: str) -> int:
        """The partition id ``key`` routes to (stable across processes)."""
        return int(self._ring.node_for(key))

    def get(self, key: str) -> Optional[int]:
        return self._partitions[self.shard_for(key)].get(key)

    def put(self, key: str, prediction: int) -> None:
        self._partitions[self.shard_for(key)].put(key, prediction)

    def clear(self, drop_backing: bool = False) -> None:
        """Clear every partition (see :meth:`PredictionCache.clear`)."""
        for cache in self._partitions.values():
            cache.clear(drop_backing=drop_backing)
        if drop_backing:
            self.backing = None

    def partition_sizes(self) -> Dict[int, int]:
        """Entries held per partition (the balance a /stats reader checks)."""
        return {shard: len(cache) for shard, cache in sorted(self._partitions.items())}

    def counters(self) -> Dict[str, int]:
        """Hit/miss/store totals summed over every partition."""
        totals = {"hits": 0, "misses": 0, "stores": 0}
        for cache in self._partitions.values():
            for name, value in cache.counters().items():
                totals[name] += value
        return totals

    def __len__(self) -> int:
        return sum(len(cache) for cache in self._partitions.values())

    def __contains__(self, key: Any) -> bool:
        return key in self._partitions[self.shard_for(key)]
