"""Build a running deployment from a declarative :class:`ServeSpec`.

The single construction site for the serving tier: the CLI's flags, a
``--spec deployment.json`` file and ``repro run`` on a serve spec all
funnel into :func:`build_deployment`, so there is exactly one code path
from "description of a deployment" to "running service" — what the spec
says is what serves.

.. note::
   The keyword builders (:func:`repro.serve.build_engine`,
   :func:`repro.serve.sharded.build_sharded_engine`) remain as documented
   shims for existing callers and tests; this module is the supported
   entry point for new deployments.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.serve.engine import PipelineEngine, ReplicaFactory
from repro.serve.service import InferenceService
from repro.serve.specs import ServeSpec

__all__ = ["Deployment", "build_deployment", "build_model", "build_replica_factory"]


class Deployment:
    """A built (not yet started) service plus the spec that produced it.

    ``async with deployment:`` starts/stops the underlying
    :class:`~repro.serve.InferenceService`; :meth:`to_spec` returns the
    originating spec unchanged, so a deployment round-trips byte-exactly:
    ``build_deployment(spec).to_spec().to_json() == spec.to_json()``.
    """

    def __init__(self, spec: ServeSpec, service: InferenceService, engine: Any, cache: Any) -> None:
        self._spec = spec
        self.service = service
        self.engine = engine
        self.cache = cache

    def to_spec(self) -> ServeSpec:
        return self._spec

    @classmethod
    def from_spec(cls, spec: ServeSpec) -> "Deployment":
        return build_deployment(spec)

    async def __aenter__(self) -> "Deployment":
        await self.service.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.service.stop()


def build_model(spec: ServeSpec) -> Tuple[Any, Any, int]:
    """The spec's model + its training split + class count.

    Mirrors the ``repro serve``/``repro eval`` model construction exactly
    (16x16 synthetic images, BN norm) so a spec with the CLI's default
    fields serves the same fingerprinted engine the flags did.
    """
    from repro.nn.vit import CompactVisionTransformer, ViTConfig
    from repro.training.datasets import synthetic_cifar10, synthetic_cifar100

    dataset_fn = {"cifar10": synthetic_cifar10, "cifar100": synthetic_cifar100}[spec.dataset]
    num_classes = {"cifar10": 10, "cifar100": 100}[spec.dataset]
    train, _ = dataset_fn(train_size=spec.train_size, test_size=1, seed=spec.data_seed)
    config = ViTConfig(
        image_size=16,
        patch_size=4,
        embed_dim=spec.embed_dim,
        num_layers=spec.layers,
        num_heads=spec.heads,
        num_classes=num_classes,
        norm="bn",
        seed=spec.model_seed,
    )
    model = CompactVisionTransformer(config)
    if spec.checkpoint is not None:
        from repro.nn.serialization import load_model

        load_model(spec.checkpoint, model)
    return model, train, num_classes


def build_replica_factory(spec: ServeSpec) -> ReplicaFactory:
    """The spec's :class:`~repro.serve.engine.ReplicaFactory`, fully resolved.

    Builds the model and calibration logits and packages them as the
    picklable replica recipe both engine families construct workers from.
    Exposed separately from :func:`build_deployment` because the scenario
    layer's ``bit_identity`` assertion needs the *same* recipe to build an
    offline reference pipeline after the service under test has closed.
    """
    from repro.blocks.specs import SoftmaxCircuitConfig, calibrate_alpha_y
    from repro.evaluation.vectors import collect_softmax_inputs

    if spec.backend is not None:
        # Fail at build time, not inside a worker process an hour later.
        from repro.sc.backends import available_backends

        if spec.backend not in available_backends():
            raise ValueError(
                f"unknown SC kernel backend {spec.backend!r}; "
                f"expected one of {available_backends()}"
            )

    model, train, _ = build_model(spec)
    softmax = SoftmaxCircuitConfig(
        m=64,
        iterations=spec.k,
        bx=4,
        alpha_x=2.0,
        by=spec.by,
        alpha_y=calibrate_alpha_y(spec.by, 64),
        s1=spec.s1,
        s2=spec.s2,
    )
    calibration = collect_softmax_inputs(
        model, train.images[: spec.calibration_images], max_rows=512
    )
    return ReplicaFactory(
        model=model,
        softmax_config=softmax,
        gelu_output_bsl=spec.gelu_bsl,
        flip_prob=spec.flip_prob,
        fault_seed=spec.fault_seed,
        calibration_logits=calibration,
        backend=spec.backend,
    )


def build_deployment(spec: ServeSpec, code_version: Optional[str] = None) -> "Deployment":
    """Everything between a :class:`ServeSpec` and a startable service.

    Builds the replica recipe (:func:`build_replica_factory`), resolves
    the engine family (``thread`` -> :class:`~repro.serve.engine.PipelineEngine`,
    ``process`` -> :class:`~repro.serve.sharded.ShardedProcessEngine`
    with consistent-hash sharded caching, ``fabric`` ->
    :class:`~repro.fabric.engine.FabricEngine` executing the softmax on a
    configured tile grid), honors the spec's ``backend``
    field (threaded through every replica's forwards via
    :func:`repro.sc.backends.use_backend`), and wires the cache policy.
    """
    from repro import telemetry

    if spec.telemetry:
        # Spec-driven enablement: force the plane on (and install the
        # kernel-profiling hook) before the engine builds, so even
        # construction-time kernel work is observed.
        telemetry.enable()
    else:
        # Env-driven (`REPRO_TELEMETRY=1`) enablement still installs hooks.
        telemetry.activate()

    factory = build_replica_factory(spec)

    if spec.engine == "process":
        from repro.serve.sharded import ShardedProcessEngine

        engine: Any = ShardedProcessEngine(
            factory,
            shards=spec.workers,
            max_shards=spec.max_shards,
            scale_up_queue_depth=spec.scale_up_queue_depth,
            flip_prob=spec.flip_prob,
            image_shape=factory.image_shape(),
        )
    elif spec.engine == "fabric":
        from repro.fabric.engine import FabricEngine

        engine = FabricEngine(
            factory,
            workers=spec.workers,
            flip_prob=spec.flip_prob,
            image_shape=factory.image_shape(),
        )
    else:
        engine = PipelineEngine(
            factory,
            workers=spec.workers,
            flip_prob=spec.flip_prob,
            image_shape=factory.image_shape(),
        )

    cache = None
    if spec.cache:
        from repro.runner.cache import ResultCache
        from repro.serve.cache import PredictionCache, ShardedPredictionCache

        backing = ResultCache(spec.cache_dir) if spec.cache_dir else None
        if spec.engine == "process":
            # Partition count tracks the autoscale ceiling so every shard
            # the engine can ever grow to has a home partition.
            cache = ShardedPredictionCache(
                shards=spec.max_shards or spec.workers, backing=backing
            )
        else:
            cache = PredictionCache(backing=backing)

    service = InferenceService(
        engine,
        max_batch=spec.max_batch,
        max_wait_ms=spec.max_wait_ms,
        max_queue=spec.max_queue,
        request_timeout_s=spec.timeout_s,
        cache=cache,
        code_version=code_version,
    )
    return Deployment(spec, service, engine, cache)
