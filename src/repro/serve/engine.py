"""Worker-pool inference engine: per-thread pipelines over shared weights.

The service's compute layer.  Micro-batches are executed on a
:class:`concurrent.futures.ThreadPoolExecutor`; every worker thread lazily
builds its **own** :class:`~repro.eval_pipeline.ScViTEvalPipeline` (over a
deep copy of the template model), because the pipeline patches circuit
substitutions into the model's blocks for the duration of a forward — a
shared model would race.  Weights are copied once per worker, not per
batch, and all workers are bit-identical by construction: same weights,
same circuit specs, same calibration logits.

Numpy-autograd inference modes (``no_grad`` and ``batch_invariant_matmul``)
are process-wide flags, so the engine holds both enabled from
:meth:`start` to :meth:`close` instead of toggling them per forward —
concurrent workers then cannot observe a half-restored mode.  While an
engine is running, everything in the process computes under inference
semantics; a serving process is assumed not to train concurrently.

The engine also owns the *fingerprint* that versions every cached
prediction: a digest of the model weights, the resolved circuit specs and
the fault settings, in the same spirit as
:meth:`repro.eval_pipeline.tasks.EvalTask.version`.
"""

from __future__ import annotations

import contextlib
import copy
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional

import numpy as np

from repro.eval_pipeline.pipeline import ScViTEvalPipeline
from repro.nn.autograd import batch_invariant_matmul, no_grad
from repro.runner.cache import array_digest, canonical_json

__all__ = ["PipelineEngine", "build_engine", "pipeline_fingerprint"]


def pipeline_fingerprint(pipeline: ScViTEvalPipeline) -> str:
    """Version token for cached predictions of ``pipeline``.

    Digests the weights, the resolved (post-calibration, post-clamp)
    softmax config, the GELU routing and the fault settings — everything a
    prediction depends on besides the image itself and its index.
    """
    state = pipeline.model.state_dict()
    weights = array_digest(*(state[key] for key in sorted(state)))
    from dataclasses import asdict

    identity = {
        "weights": weights,
        "softmax": asdict(pipeline.softmax_circuit.config),
        "gelu_bsl": pipeline.gelu_block.output_length if pipeline.gelu_block else None,
        "flip_prob": pipeline.flip_prob,
        "fault_seed": pipeline.fault_model.seed if pipeline.fault_model is not None else 0,
    }
    return array_digest(np.frombuffer(canonical_json(identity).encode(), dtype=np.uint8))


class PipelineEngine:
    """Thread pool executing micro-batches on per-worker pipeline replicas.

    Parameters
    ----------
    pipeline_factory:
        Zero-argument callable building one pipeline; called once per
        worker thread.  Every pipeline it returns must be bit-identical
        (:func:`build_engine` constructs such a factory from a template).
    workers:
        Worker-thread count.  1 (the default) serialises batches; more
        overlap BLAS work across batches.
    version:
        Cache-version token; computed from a probe pipeline when omitted.
    flip_prob:
        The pipelines' fault-injection rate.  The service uses it to decide
        whether per-request image indices are part of a request's cache
        identity (they are exactly when faults are on).
    image_shape:
        Expected per-image shape; the service validates requests against it
        before batching when set (a malformed image must fail its own
        request, not the whole micro-batch it rides in).
    """

    def __init__(
        self,
        pipeline_factory: Callable[[], ScViTEvalPipeline],
        workers: int = 1,
        version: Optional[str] = None,
        flip_prob: float = 0.0,
        image_shape: Optional[tuple] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self._factory = pipeline_factory
        self.workers = int(workers)
        self.flip_prob = float(flip_prob)
        self.image_shape = None if image_shape is None else tuple(image_shape)
        self._local = threading.local()
        self.executor: Optional[ThreadPoolExecutor] = None
        self._modes: Optional[contextlib.ExitStack] = None
        if version is None:
            probe = pipeline_factory()
            version = pipeline_fingerprint(probe)
            # The probe doubles as worker 0's replica if built on that thread
            # later; cheaper to just drop it — workers build their own.
            del probe
        self.version = version

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self.executor is not None:
            return
        self._modes = contextlib.ExitStack()
        self._modes.enter_context(no_grad())
        self._modes.enter_context(batch_invariant_matmul())
        self.executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )

    def close(self) -> None:
        if self.executor is not None:
            self.executor.shutdown(wait=True)
            self.executor = None
        if self._modes is not None:
            self._modes.close()
            self._modes = None

    # ------------------------------------------------------------- execution
    def _pipeline(self) -> ScViTEvalPipeline:
        pipeline = getattr(self._local, "pipeline", None)
        if pipeline is None:
            pipeline = self._factory()
            self._local.pipeline = pipeline
        return pipeline

    def run(self, images: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Predict one micro-batch (called on a worker thread)."""
        return self._pipeline().predict_batch(images, indices)


def build_engine(
    model: Any,
    softmax_config: Any,
    gelu_output_bsl: Optional[int] = None,
    flip_prob: float = 0.0,
    fault_seed: int = 0,
    calibration_logits: Optional[np.ndarray] = None,
    workers: int = 1,
) -> PipelineEngine:
    """Engine over ``model`` with the same substitution protocol as offline eval.

    ``calibration_logits`` must be the logits offline evaluation calibrated
    ``alpha_x`` on for served predictions to be bit-identical to
    :meth:`ScViTEvalPipeline.evaluate` (collect them once with
    :func:`repro.evaluation.vectors.collect_softmax_inputs`).
    """

    def factory() -> ScViTEvalPipeline:
        return ScViTEvalPipeline(
            copy.deepcopy(model),
            softmax_config,
            gelu_output_bsl=gelu_output_bsl,
            flip_prob=flip_prob,
            fault_seed=fault_seed,
            calibration_logits=calibration_logits,
        )

    config = model.config
    image_shape = (config.image_size, config.image_size, config.in_channels)
    return PipelineEngine(factory, workers=workers, flip_prob=flip_prob, image_shape=image_shape)
