"""Worker-pool inference engine: per-thread pipelines over shared weights.

The service's compute layer.  Micro-batches are executed on a
:class:`concurrent.futures.ThreadPoolExecutor`; every worker thread lazily
builds its **own** :class:`~repro.eval_pipeline.ScViTEvalPipeline` (over a
deep copy of the template model), because the pipeline patches circuit
substitutions into the model's blocks for the duration of a forward — a
shared model would race.  Weights are copied once per worker, not per
batch, and all workers are bit-identical by construction: same weights,
same circuit specs, same calibration logits.

Numpy-autograd inference modes (``no_grad`` and ``batch_invariant_matmul``)
are process-wide flags, so the engine holds both enabled from
:meth:`start` to :meth:`close` instead of toggling them per forward —
concurrent workers then cannot observe a half-restored mode.  While an
engine is running, everything in the process computes under inference
semantics; a serving process is assumed not to train concurrently.

The engine also owns the *fingerprint* that versions every cached
prediction: a digest of the model weights, the resolved circuit specs and
the fault settings, in the same spirit as
:meth:`repro.eval_pipeline.tasks.EvalTask.version`.
"""

from __future__ import annotations

import contextlib
import copy
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol, runtime_checkable

import numpy as np

from repro.eval_pipeline.pipeline import ScViTEvalPipeline
from repro.nn.autograd import batch_invariant_matmul, no_grad
from repro.runner.cache import array_digest, canonical_json

__all__ = [
    "EngineProtocol",
    "PipelineEngine",
    "ReplicaFactory",
    "build_engine",
    "pipeline_fingerprint",
]


@runtime_checkable
class EngineProtocol(Protocol):
    """The seam between :class:`~repro.serve.InferenceService` and compute.

    Anything with this surface can sit under the service: the in-process
    thread pool (:class:`PipelineEngine`), the multi-process sharded tier
    (:class:`~repro.serve.sharded.ShardedProcessEngine`), or a test stub.
    The contract beyond the signatures:

    * ``run`` is thread-safe, called from ``executor`` threads, and its
      predictions are a pure function of ``(images, indices)`` — the
      batching invariant the whole service is built on.
    * ``workers`` is the *current* parallel batch capacity; engines that
      autoscale may grow it between calls (the service re-syncs its worker
      slots against it each batch).
    * ``version`` is the cache fingerprint of the replica configuration;
      two engines with equal versions must produce bit-identical
      predictions.

    Optional extensions the service uses when present: ``observe_load``
    (queue-depth autoscaling hook) and ``stats_snapshot`` (per-shard
    accounting merged into the ``/stats`` payload).
    """

    workers: int
    version: str
    flip_prob: float
    image_shape: Optional[tuple]
    executor: Optional[ThreadPoolExecutor]

    def start(self) -> None: ...

    def close(self) -> None: ...

    def run(self, images: np.ndarray, indices: np.ndarray) -> np.ndarray: ...


def pipeline_fingerprint(pipeline: ScViTEvalPipeline) -> str:
    """Version token for cached predictions of ``pipeline``.

    Digests the weights, the resolved (post-calibration, post-clamp)
    softmax config, the GELU routing and the fault settings — everything a
    prediction depends on besides the image itself and its index.
    """
    state = pipeline.model.state_dict()
    weights = array_digest(*(state[key] for key in sorted(state)))
    from dataclasses import asdict

    identity = {
        "weights": weights,
        "softmax": asdict(pipeline.softmax_circuit.config),
        "gelu_bsl": pipeline.gelu_block.output_length if pipeline.gelu_block else None,
        "flip_prob": pipeline.flip_prob,
        "fault_seed": pipeline.fault_model.seed if pipeline.fault_model is not None else 0,
    }
    return array_digest(np.frombuffer(canonical_json(identity).encode(), dtype=np.uint8))


@dataclass
class ReplicaFactory:
    """Picklable recipe for one bit-identical pipeline replica.

    Both engines build their replicas from one of these: the thread engine
    calls it once per worker thread, the sharded engine ships it (pickled
    by ``multiprocessing``) to each worker process, which calls it once at
    startup.  Every call deep-copies the template model, so replicas never
    share mutable state — the pipeline patches circuit substitutions into
    the model's blocks during a forward, and a shared model would race.

    ``backend`` names the SC kernel backend the replica's forwards run
    under (:func:`repro.sc.backends.use_backend`); backends are
    bit-identical by contract, so it is a throughput knob that deliberately
    does **not** enter :func:`pipeline_fingerprint`.
    """

    model: Any
    softmax_config: Any
    gelu_output_bsl: Optional[int] = None
    flip_prob: float = 0.0
    fault_seed: int = 0
    calibration_logits: Optional[np.ndarray] = None
    backend: Optional[str] = None

    def __call__(self) -> ScViTEvalPipeline:
        return ScViTEvalPipeline(
            copy.deepcopy(self.model),
            self.softmax_config,
            gelu_output_bsl=self.gelu_output_bsl,
            flip_prob=self.flip_prob,
            fault_seed=self.fault_seed,
            calibration_logits=self.calibration_logits,
            backend=self.backend,
        )

    def image_shape(self) -> tuple:
        config = self.model.config
        return (config.image_size, config.image_size, config.in_channels)


class PipelineEngine:
    """Thread pool executing micro-batches on per-worker pipeline replicas.

    Parameters
    ----------
    pipeline_factory:
        Zero-argument callable building one pipeline; called once per
        worker thread.  Every pipeline it returns must be bit-identical
        (:func:`build_engine` constructs such a factory from a template).
    workers:
        Worker-thread count.  1 (the default) serialises batches; more
        overlap BLAS work across batches.
    version:
        Cache-version token; computed from a probe pipeline when omitted.
    flip_prob:
        The pipelines' fault-injection rate.  The service uses it to decide
        whether per-request image indices are part of a request's cache
        identity (they are exactly when faults are on).
    image_shape:
        Expected per-image shape; the service validates requests against it
        before batching when set (a malformed image must fail its own
        request, not the whole micro-batch it rides in).
    """

    def __init__(
        self,
        pipeline_factory: Callable[[], ScViTEvalPipeline],
        workers: int = 1,
        version: Optional[str] = None,
        flip_prob: float = 0.0,
        image_shape: Optional[tuple] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self._factory = pipeline_factory
        self.workers = int(workers)
        self.flip_prob = float(flip_prob)
        self.image_shape = None if image_shape is None else tuple(image_shape)
        self._local = threading.local()
        self.executor: Optional[ThreadPoolExecutor] = None
        self._modes: Optional[contextlib.ExitStack] = None
        # Chaos seam: kill_shard() bumps the generation; worker threads
        # rebuild their replica on the next batch they run.
        self._generation = 0
        self.deaths = 0
        if version is None:
            probe = pipeline_factory()
            version = pipeline_fingerprint(probe)
            # The probe doubles as worker 0's replica if built on that thread
            # later; cheaper to just drop it — workers build their own.
            del probe
        self.version = version

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self.executor is not None:
            return
        self._modes = contextlib.ExitStack()
        self._modes.enter_context(no_grad())
        self._modes.enter_context(batch_invariant_matmul())
        self.executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )

    def close(self) -> None:
        if self.executor is not None:
            self.executor.shutdown(wait=True)
            self.executor = None
        if self._modes is not None:
            self._modes.close()
            self._modes = None

    # ----------------------------------------------------------------- chaos
    def kill_shard(self, slot: Optional[int] = None) -> int:
        """Discard every worker's replica (thread-engine replica loss).

        The degradation analogue of the sharded engine's ``kill_shard``:
        there is no process to SIGKILL, so the failure mode is losing the
        built pipelines — each worker thread deep-copies a fresh replica
        on its next batch.  Replicas are bit-identical by construction, so
        this perturbs latency, never predictions.  ``slot`` is accepted
        for interface parity and ignored (thread replicas are anonymous).
        Returns 0 (the nominal killed slot).
        """
        self._generation += 1
        self.deaths += 1
        return 0

    # ------------------------------------------------------------- execution
    def _pipeline(self) -> ScViTEvalPipeline:
        pipeline = getattr(self._local, "pipeline", None)
        if pipeline is None or getattr(self._local, "generation", -1) != self._generation:
            pipeline = self._factory()
            self._local.pipeline = pipeline
            self._local.generation = self._generation
        return pipeline

    def run(self, images: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Predict one micro-batch (called on a worker thread)."""
        return self._pipeline().predict_batch(images, indices)


def build_engine(
    model: Any,
    softmax_config: Any,
    gelu_output_bsl: Optional[int] = None,
    flip_prob: float = 0.0,
    fault_seed: int = 0,
    calibration_logits: Optional[np.ndarray] = None,
    workers: int = 1,
    backend: Optional[str] = None,
) -> PipelineEngine:
    """Engine over ``model`` with the same substitution protocol as offline eval.

    ``calibration_logits`` must be the logits offline evaluation calibrated
    ``alpha_x`` on for served predictions to be bit-identical to
    :meth:`ScViTEvalPipeline.evaluate` (collect them once with
    :func:`repro.evaluation.vectors.collect_softmax_inputs`).

    .. deprecated::
        Keyword-argument construction is kept as a shim for existing
        callers; new deployments should describe themselves with a
        :class:`repro.serve.specs.ServeSpec` and go through
        :func:`repro.serve.deploy.build_deployment`, which routes through
        this builder (or the sharded one) from a single declarative
        artifact.
    """
    factory = ReplicaFactory(
        model=model,
        softmax_config=softmax_config,
        gelu_output_bsl=gelu_output_bsl,
        flip_prob=flip_prob,
        fault_seed=fault_seed,
        calibration_logits=calibration_logits,
        backend=backend,
    )
    return PipelineEngine(
        factory, workers=workers, flip_prob=flip_prob, image_shape=factory.image_shape()
    )
