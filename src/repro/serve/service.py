"""The asynchronous inference service: queue, batcher, workers, cache, stats.

:class:`InferenceService` is the orchestration layer between transports and
the compute engine.  One request's life:

1. :meth:`submit` fingerprints the image (same content-addressing scheme as
   the sweep cache) and returns instantly on a cache hit; an identical
   request already *in flight* coalesces onto its future instead of being
   computed twice.
2. Otherwise the request enters the bounded queue.  A full queue rejects
   immediately (:class:`ServiceOverloaded`) — backpressure is explicit, not
   an unbounded latency cliff.
3. The batch loop reserves a worker slot, lets the
   :class:`~repro.serve.batcher.DynamicBatcher` coalesce up to ``max_batch``
   requests (or ``max_wait_ms``), and dispatches the micro-batch to the
   engine's thread pool.  Reserving the slot *before* collecting means
   batches grow while all workers are busy — load adaptively increases
   batch size instead of queue depth.
4. Results fan back out to per-request futures, land in the cache, and the
   submitter returns with latency accounting.  A request that outlives
   ``request_timeout_s`` raises :class:`RequestTimeout`; its computation
   still completes and warms the cache.

Served predictions are bit-identical to offline per-image evaluation for
*any* arrival pattern — the batching invariant inherited from
:meth:`repro.eval_pipeline.ScViTEvalPipeline.predict_batch` — which
``python -m repro verify`` and ``tests/test_serve.py`` enforce.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro import telemetry
from repro.serve.batcher import SHUTDOWN, DynamicBatcher
from repro.serve.cache import PredictionCache, request_fingerprint
from repro.serve.stats import ServiceStats
from repro.telemetry.tracer import push_context

__all__ = [
    "InferenceService",
    "PredictionResult",
    "RequestTimeout",
    "ServiceClosed",
    "ServiceOverloaded",
]


class ServiceOverloaded(RuntimeError):
    """The bounded request queue is full; retry later (HTTP 429)."""


class RequestTimeout(TimeoutError):
    """No result within ``request_timeout_s`` (HTTP 504)."""


class ServiceClosed(RuntimeError):
    """Submit called before start or after stop."""


@dataclass
class PredictionResult:
    """One served prediction plus how it was produced."""

    prediction: int
    cached: bool
    latency_ms: float
    coalesced: bool = False
    request_id: Optional[str] = None


class _Pending:
    """Internal queue entry: one request awaiting a micro-batch."""

    __slots__ = ("image", "index", "key", "future", "arrived_at", "ctx")

    def __init__(
        self,
        image: np.ndarray,
        index: int,
        key: Optional[str],
        future: "asyncio.Future",
        ctx: Optional[Dict[str, str]] = None,
    ) -> None:
        self.image = image
        self.index = index
        self.key = key
        self.future = future
        self.arrived_at = time.monotonic()
        self.ctx = ctx  # trace context of the submitting request (or None)


class InferenceService:
    """Async dynamic-batching front end over an inference engine.

    Parameters
    ----------
    engine:
        Compute backend (:class:`~repro.serve.engine.PipelineEngine` or
        anything with ``start``/``close``/``run``/``executor``/``workers``
        plus ``version``/``flip_prob``/``image_shape`` attributes).
    max_batch / max_wait_ms:
        Micro-batcher flush thresholds (see :mod:`repro.serve.batcher`).
    max_queue:
        Bounded queue depth; the backpressure knob.
    request_timeout_s:
        Per-request deadline covering queueing + batching + compute.
    cache:
        Optional :class:`~repro.serve.cache.PredictionCache`; ``None``
        disables result reuse (every request computes).
    code_version:
        Source-fingerprint component of request keys; defaults to the
        package fingerprint used by the sweep cache.
    """

    def __init__(
        self,
        engine: Any,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        request_timeout_s: float = 30.0,
        cache: Optional[PredictionCache] = None,
        code_version: Optional[str] = None,
    ) -> None:
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue = int(max_queue)
        self.request_timeout_s = float(request_timeout_s)
        self.cache = cache
        self._code_version = code_version
        self.stats = ServiceStats()
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[DynamicBatcher] = None
        self._batch_loop_task: Optional[asyncio.Task] = None
        self._worker_slots: Optional[asyncio.Semaphore] = None
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._batch_tasks: set = set()
        self._started = False
        self._closed = False
        self._trace_on = False
        self._tracer = telemetry.get_tracer()

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Start the engine and the batch loop; idempotent."""
        if self._started:
            return
        if self._code_version is None:
            from repro.runner.cache import default_code_version

            self._code_version = default_code_version()
        # Enablement is read at start (not construction) so a deploy/scenario
        # entry point that flips telemetry on still covers this service.
        self._trace_on = telemetry.enabled()
        self._tracer = telemetry.get_tracer()
        self.engine.start()
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._batcher = DynamicBatcher(self._queue, self.max_batch, self.max_wait_ms)
        self._granted_slots = int(self.engine.workers)
        self._worker_slots = asyncio.Semaphore(self._granted_slots)
        self._batch_loop_task = asyncio.create_task(self._batch_loop())
        self.stats.start()
        self._started = True
        self._closed = False

    async def stop(self) -> None:
        """Drain queued requests, finish in-flight batches, stop the engine."""
        if not self._started or self._closed:
            return
        self._closed = True
        await self._queue.put(SHUTDOWN)
        await self._batch_loop_task
        if self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks), return_exceptions=True)
        self.engine.close()
        self._started = False

    async def __aenter__(self) -> "InferenceService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ----------------------------------------------------------------- submit
    async def submit(
        self,
        image: Any,
        index: int = 0,
        request_id: Optional[str] = None,
    ) -> PredictionResult:
        """Predict one image; returns when the result is available.

        ``index`` is the request's global image index — the per-request
        fault seed.  With fault injection enabled it selects the bit-flip
        mask (submit the image's offline split index to reproduce offline
        evaluation exactly); fault-free it is ignored by the compute path
        and excluded from the cache identity.
        """
        if not self._started or self._closed:
            raise ServiceClosed("service is not running")
        arrived = time.monotonic()
        # Validate before counting: `submitted` tracks requests accepted for
        # processing, so every one reaches a terminal counter (completed /
        # rejected / timeout / error) and the /stats ledger balances.
        image = self._check_image(image)
        index = int(index)
        self.stats.record_submitted()
        span = (
            self._tracer.begin("service.request", cat="service", index=index, request_id=request_id)
            if self._trace_on
            else None
        )

        key: Optional[str] = None
        coalesced = False
        future: Optional[asyncio.Future] = None
        if self.cache is not None:
            faults_on = float(getattr(self.engine, "flip_prob", 0.0)) > 0.0
            key = request_fingerprint(
                image,
                self.engine.version,
                image_index=index if faults_on else None,
                code_version=self._code_version or "",
            )
            hit = self.cache.get(key)
            if hit is not None:
                latency_ms = (time.monotonic() - arrived) * 1000.0
                self.stats.record_completed(latency_ms, cached=True)
                if span is not None:
                    self._tracer.end(span, outcome="cache_hit")
                return PredictionResult(
                    prediction=hit, cached=True, latency_ms=latency_ms, request_id=request_id
                )
            future = self._inflight.get(key)
            coalesced = future is not None

        if future is None:
            ctx = self._tracer.context_of(span) if span is not None else None
            future = asyncio.get_running_loop().create_future()
            pending = _Pending(image, index, key, future, ctx=ctx)
            if key is not None:
                self._inflight[key] = future
            try:
                self._queue.put_nowait(pending)
            except asyncio.QueueFull:
                self._inflight.pop(key, None)
                self.stats.record_rejected()
                if span is not None:
                    self._tracer.end(span, outcome="rejected")
                raise ServiceOverloaded(
                    f"request queue full ({self.max_queue} pending); retry later"
                ) from None

        # shield: one waiter's timeout must not cancel the shared computation
        # (coalesced waiters and the cache still want the result).
        try:
            prediction = await asyncio.wait_for(asyncio.shield(future), self.request_timeout_s)
        except asyncio.TimeoutError:
            self.stats.record_timeout()
            if span is not None:
                self._tracer.end(span, outcome="timeout")
            raise RequestTimeout(
                f"no result within {self.request_timeout_s:g}s "
                f"(queue depth {self._queue.qsize()})"
            ) from None
        except Exception:
            if span is not None:
                self._tracer.end(span, outcome="error")
            raise
        latency_ms = (time.monotonic() - arrived) * 1000.0
        self.stats.record_completed(latency_ms, coalesced=coalesced)
        if span is not None:
            self._tracer.end(span, outcome="coalesced" if coalesced else "computed")
        return PredictionResult(
            prediction=int(prediction),
            cached=False,
            coalesced=coalesced,
            latency_ms=latency_ms,
            request_id=request_id,
        )

    def _check_image(self, image: Any) -> np.ndarray:
        image = np.asarray(image, dtype=float)
        expected = getattr(self.engine, "image_shape", None)
        if expected is not None and tuple(image.shape) != tuple(expected):
            raise ValueError(f"image has shape {tuple(image.shape)}, expected {tuple(expected)}")
        return image

    # ------------------------------------------------------------ batch loop
    def _sync_worker_slots(self) -> None:
        """Grow the slot pool when an autoscaling engine adds capacity.

        Engines with a dynamic ``workers`` count (the sharded process
        engine) gain slots here so new shards take traffic on the next
        batch.  Slots are never reclaimed: a retiring engine just leaves a
        slot idle, which is harmless — the engine routes around retired
        shards itself.
        """
        target = int(getattr(self.engine, "workers", 1))
        while self._granted_slots < target:
            self._worker_slots.release()
            self._granted_slots += 1

    async def _batch_loop(self) -> None:
        observe_load = getattr(self.engine, "observe_load", None)
        while True:
            # Reserve the worker slot first: while every worker is busy no
            # request is pulled, so the queue accumulates and the next batch
            # fills toward max_batch — batch size adapts to load.
            if callable(observe_load):
                observe_load(self._queue.qsize())
                self._sync_worker_slots()
            await self._worker_slots.acquire()
            collect = (
                self._tracer.begin("batcher.collect", cat="batcher") if self._trace_on else None
            )
            batch = await self._batcher.next_batch()
            if batch is None:
                self._worker_slots.release()
                return
            if collect is not None:
                # Re-home the span onto the first batched request's trace so
                # the collect slice nests under the request that opened it.
                first_ctx = batch[0].ctx
                if first_ctx is not None:
                    collect.trace_id = first_ctx.get("trace_id", collect.trace_id)
                    collect.parent_id = first_ctx.get("span_id")
                self._tracer.end(collect, batch_size=len(batch))
            task = asyncio.create_task(self._execute(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._on_batch_done)
            if self._batcher.closed:
                return

    def _on_batch_done(self, task: "asyncio.Task") -> None:
        self._batch_tasks.discard(task)
        self._worker_slots.release()
        if not task.cancelled() and task.exception() is not None:
            # _execute routes failures into request futures; anything that
            # still escapes is a bug worth surfacing, not swallowing.
            raise task.exception()

    async def _execute(self, batch) -> None:
        loop = asyncio.get_running_loop()
        batch_span = None
        if self._trace_on:
            batch_span = self._tracer.begin(
                "service.batch", cat="service", parent=batch[0].ctx, requests=len(batch)
            )
        try:
            # Inside the try: with engines that declare no image_shape a
            # ragged batch makes np.stack itself raise, and that failure must
            # reach the request futures, not strand them until timeout.
            images = np.stack([pending.image for pending in batch])
            indices = np.asarray([pending.index for pending in batch], dtype=np.int64)
            if batch_span is not None:
                ctx = self._tracer.context_of(batch_span)
                tracer = self._tracer

                def run_traced():
                    # The executor hop drops asyncio context; re-install the
                    # batch context thread-locally so the engine's dispatch
                    # spans (sharded engine) parent correctly.
                    with push_context(ctx):
                        with tracer.span("engine.run", cat="engine", parent=ctx, batch_size=len(batch)):
                            return self.engine.run(images, indices)

                predictions = await loop.run_in_executor(self.engine.executor, run_traced)
            else:
                predictions = await loop.run_in_executor(
                    self.engine.executor, self.engine.run, images, indices
                )
        except Exception as exc:
            for pending in batch:
                if pending.key is not None:
                    self._inflight.pop(pending.key, None)
                self.stats.record_error()
                if not pending.future.done():
                    pending.future.set_exception(
                        RuntimeError(f"inference batch failed: {exc!r}")
                    )
            if batch_span is not None:
                self._tracer.end(batch_span, outcome="error")
            return
        self.stats.record_batch(len(batch))
        if batch_span is not None:
            self._tracer.end(batch_span, outcome="ok")
        for pending, prediction in zip(batch, predictions):
            prediction = int(prediction)
            if pending.key is not None:
                self._inflight.pop(pending.key, None)
                if self.cache is not None:
                    self.cache.put(pending.key, prediction)
            if not pending.future.done():
                pending.future.set_result(prediction)

    # ------------------------------------------------------------------ stats
    def stats_snapshot(self) -> Dict:
        """The ``/stats`` payload: counters, latency tail, batching, cache."""
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        snapshot = self.stats.snapshot(queue_depth=queue_depth, in_flight=len(self._batch_tasks))
        snapshot["config"] = {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_queue": self.max_queue,
            "request_timeout_s": self.request_timeout_s,
            "workers": self.engine.workers,
            "cache_enabled": self.cache is not None,
            "flip_prob": float(getattr(self.engine, "flip_prob", 0.0)),
        }
        cache_counters = getattr(self.cache, "counters", None)
        if callable(cache_counters):
            # ServiceStats already reports request-level "hits"; the cache's
            # own counters add the miss/store side of the ledger.
            counters = cache_counters()
            snapshot["cache"].update(misses=counters["misses"], stores=counters["stores"])
        engine_snapshot = getattr(self.engine, "stats_snapshot", None)
        if callable(engine_snapshot):
            # Sharded engines report per-shard + merged compute accounting.
            snapshot["engine"] = engine_snapshot()
        return snapshot
