"""Multi-process sharded inference: per-process replicas behind one service.

:class:`~repro.serve.engine.PipelineEngine` is a thread pool inside one
Python process — replicas contend on the GIL everywhere numpy does not
release it, so one process caps throughput regardless of core count.
:class:`ShardedProcessEngine` is the scale-out tier behind the same
:class:`~repro.serve.engine.EngineProtocol` seam: N worker *processes*,
each owning a full pipeline replica built from a pickled
:class:`~repro.serve.engine.ReplicaFactory`, fed over
``multiprocessing.Pipe`` with pre-pickled NPZ frames (one ``send_bytes``
per micro-batch — arrays never pass through the pickler object graph).

Design points:

* **dispatch threads, compute processes** — the engine's ``executor`` is a
  small thread pool whose threads only serialise/route/deserialise; each
  dispatch picks the least-loaded live shard, so the service's batch loop
  is unchanged and micro-batches from one burst spread across shards.
* **worker-death recovery** — dispatchers poll the worker while waiting,
  so a SIGKILLed (or wedged past ``dispatch_timeout_s``) shard is detected
  mid-request; the shard is respawned and the in-flight micro-batch
  re-dispatched to a surviving shard.  Predictions are a pure function of
  ``(images, indices)``, so a re-dispatch is bit-identical by
  construction — the serve bit-identity guarantee survives crashes.
* **queue-depth autoscaling** — the service reports its backlog through
  :meth:`ShardedProcessEngine.observe_load`; sustained depth spawns spare
  shards up to ``max_shards``, an idle queue retires them back to the
  baseline.  The service re-syncs its worker slots against
  ``engine.workers`` every batch, so new shards take traffic immediately.
* **per-shard stats** — every shard keeps a
  :class:`~repro.serve.stats.ServiceStats` of the micro-batches it served;
  :meth:`stats_snapshot` reports them per shard plus the
  :meth:`~repro.serve.stats.ServiceStats.merge`-d aggregate.

Worker errors are deliberately *not* retried: a raising
``predict_batch`` is deterministic (same batch would raise on every
shard), so the error propagates to the request futures instead of
cycling through — only process death and wedging re-dispatch.
"""

from __future__ import annotations

import io
import json
import multiprocessing as mp
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.serve.engine import ReplicaFactory, pipeline_fingerprint
from repro.serve.stats import ServiceStats
from repro.telemetry.tracer import Tracer, current_context

__all__ = [
    "ShardedProcessEngine",
    "build_sharded_engine",
    "pack_frame",
    "unpack_frame",
]


# --------------------------------------------------------------------------
# NPZ frames: the request/response wire format
# --------------------------------------------------------------------------


def pack_frame(op: str, arrays: Optional[Dict[str, np.ndarray]] = None, **meta: Any) -> bytes:
    """One IPC frame: ``op`` + JSON metadata + named numpy arrays.

    Serialised with ``np.savez`` into a single ``bytes`` blob sent via
    ``Connection.send_bytes`` — the arrays are written as raw NPY payloads
    (no pickle traversal), and the receiver gets them back C-contiguous
    and typed without any per-element work.
    """
    header = json.dumps({"op": op, "meta": meta}).encode()
    payload = {"__header__": np.frombuffer(header, dtype=np.uint8)}
    for name, array in (arrays or {}).items():
        payload[name] = np.ascontiguousarray(array)
    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    return buffer.getvalue()


def unpack_frame(blob: bytes):
    """Inverse of :func:`pack_frame` -> ``(op, arrays, meta)``."""
    with np.load(io.BytesIO(blob), allow_pickle=False) as bundle:
        header = json.loads(bundle["__header__"].tobytes().decode())
        arrays = {name: bundle[name] for name in bundle.files if name != "__header__"}
    return header["op"], arrays, header["meta"]


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------


def _shard_main(conn, factory: ReplicaFactory) -> None:
    """Worker-process loop: build one replica, serve predict frames until stop.

    Runs in the child.  The replica is built *here* (not inherited), so
    every shard's pipeline state is provably independent; bit-identity
    across shards follows from :class:`ReplicaFactory` determinism.
    """
    tracer: Optional[Tracer] = None
    profiler = None
    try:
        pipeline = factory()
        conn.send_bytes(pack_frame("ready", pid=os.getpid()))
        while True:
            blob = conn.recv_bytes()
            op, arrays, meta = unpack_frame(blob)
            if op == "stop":
                break
            if op != "predict":  # protocol error: surface, keep serving
                conn.send_bytes(pack_frame("error", job=meta.get("job"), error=f"unknown op {op!r}"))
                continue
            # The parent attaches a trace context only when telemetry is on;
            # its presence is the worker's whole enablement signal, so the
            # child needs no environment or spec plumbing of its own.
            ctx = meta.get("trace")
            span = None
            if ctx is not None:
                if tracer is None:
                    tracer = Tracer()
                    from repro.telemetry.profiling import get_profiler, install

                    install()
                    profiler = get_profiler()
                profiler.clear()  # single-threaded worker: snapshot == delta
                span = tracer.begin(
                    "shard.predict",
                    cat="worker",
                    parent=ctx,
                    batch_size=int(len(arrays.get("indices", ()))),
                )
            try:
                predictions = pipeline.predict_batch(arrays["images"], arrays["indices"])
                extra = {}
                if span is not None:
                    tracer.end(span)
                    extra = {"spans": tracer.events(), "kernel_profile": profiler.snapshot()}
                    tracer.clear()
                conn.send_bytes(
                    pack_frame(
                        "result",
                        {"predictions": np.asarray(predictions, dtype=np.int64)},
                        job=meta["job"],
                        **extra,
                    )
                )
            except Exception as exc:  # deterministic failure -> report, don't die
                if span is not None:
                    tracer.end(span, outcome="error")
                    tracer.clear()
                conn.send_bytes(
                    pack_frame("error", job=meta["job"], error=f"{type(exc).__name__}: {exc}")
                )
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away (or is tearing down); exit quietly
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _ShardDied(RuntimeError):
    """Internal: the target worker process died or wedged mid-dispatch."""


class _Shard:
    """Parent-side handle of one worker process."""

    __slots__ = ("slot", "generation", "process", "conn", "lock", "stats", "in_flight", "dead", "ready", "retired")

    def __init__(self, slot: int, generation: int, process, conn) -> None:
        self.slot = slot
        self.generation = generation
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()  # serialises use of `conn`
        self.stats = ServiceStats()
        self.in_flight = 0
        self.dead = False
        self.ready = False
        self.retired = False

    @property
    def label(self) -> str:
        return f"{self.slot}/gen{self.generation}"

    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()


# --------------------------------------------------------------------------
# The engine
# --------------------------------------------------------------------------


class ShardedProcessEngine:
    """N worker processes with per-process replicas, one engine surface.

    Parameters
    ----------
    replica_factory:
        Picklable :class:`~repro.serve.engine.ReplicaFactory`; each worker
        process calls it once at startup to build its replica.
    shards:
        Baseline shard count (the autoscaler never goes below it).
    max_shards:
        Autoscale ceiling; defaults to ``shards`` (autoscaling off).
    scale_up_queue_depth:
        Queue depth reported via :meth:`observe_load` at which a spare
        shard is spawned (subject to ``scale_cooldown_s``).
    scale_cooldown_s:
        Minimum seconds between scaling actions, so one burst does not
        fork a shard per batch.
    respawn:
        Replace dead shards automatically (disable only in tests that
        assert on death handling itself).
    dispatch_timeout_s:
        Per-micro-batch deadline after which a silent worker is treated as
        wedged: killed, respawned, and the batch re-dispatched.
    version / flip_prob / image_shape:
        As :class:`~repro.serve.engine.PipelineEngine`; ``version`` is
        computed from a probe replica (built in-parent) when omitted.
    mp_context:
        Start-method name; defaults to ``fork`` where available (same
        policy as :mod:`repro.runner`) since replicas ship pickled either
        way.
    start_timeout_s:
        Deadline for workers' ready handshake in :meth:`start`.
    """

    def __init__(
        self,
        replica_factory: ReplicaFactory,
        shards: int = 2,
        max_shards: Optional[int] = None,
        scale_up_queue_depth: int = 16,
        scale_cooldown_s: float = 2.0,
        respawn: bool = True,
        dispatch_timeout_s: float = 120.0,
        version: Optional[str] = None,
        flip_prob: float = 0.0,
        image_shape: Optional[tuple] = None,
        mp_context: Optional[str] = None,
        start_timeout_s: float = 120.0,
    ) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        if max_shards is not None and max_shards < shards:
            raise ValueError(f"max_shards must be >= shards ({shards})")
        if scale_up_queue_depth <= 0:
            raise ValueError("scale_up_queue_depth must be positive")
        self._factory = replica_factory
        self.min_shards = int(shards)
        self.max_shards = int(max_shards) if max_shards is not None else int(shards)
        self.scale_up_queue_depth = int(scale_up_queue_depth)
        self.scale_cooldown_s = float(scale_cooldown_s)
        self.respawn = bool(respawn)
        self.dispatch_timeout_s = float(dispatch_timeout_s)
        self.start_timeout_s = float(start_timeout_s)
        self.flip_prob = float(flip_prob)
        self.image_shape = None if image_shape is None else tuple(image_shape)
        self._mp_name = mp_context or ("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self._ctx = None
        self.executor: Optional[ThreadPoolExecutor] = None
        self._shards: Dict[int, _Shard] = {}
        self._graveyard: List[_Shard] = []  # dead/retired handles, kept for stats
        self._routing_lock = threading.Lock()
        self._job_counter = 0
        self._next_slot = 0
        self._last_scale_at = 0.0
        self._closed = False
        self.deaths = 0
        self.redispatches = 0
        self.spawned = 0
        self.retired_count = 0
        if version is None:
            probe = replica_factory()
            version = pipeline_fingerprint(probe)
            del probe
        self.version = version

    # ------------------------------------------------------------- lifecycle
    @property
    def workers(self) -> int:
        """Current routable shard count (the service sizes its slots on it)."""
        with self._routing_lock:
            live = sum(1 for s in self._shards.values() if s.alive() and not s.retired)
        return max(1, live)

    def start(self) -> None:
        if self.executor is not None:
            return
        self._closed = False
        self._ctx = mp.get_context(self._mp_name)
        self.executor = ThreadPoolExecutor(
            max_workers=self.max_shards, thread_name_prefix="repro-shard-dispatch"
        )
        with self._routing_lock:
            for _ in range(self.min_shards):
                self._spawn_locked()
        deadline = time.monotonic() + self.start_timeout_s
        for shard in list(self._shards.values()):
            self._await_ready(shard, deadline)

    def _spawn_locked(self) -> _Shard:
        """Start one worker process (caller holds the routing lock)."""
        slot = self._next_slot
        self._next_slot += 1
        generation = self.spawned
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_main,
            args=(child_conn, self._factory),
            daemon=True,
            name=f"repro-shard-{slot}",
        )
        process.start()
        child_conn.close()
        shard = _Shard(slot, generation, process, parent_conn)
        shard.stats.start()
        self._shards[slot] = shard
        self.spawned += 1
        return shard

    def _await_ready(self, shard: _Shard, deadline: float) -> None:
        """Block until ``shard`` handshakes (only used during start())."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(f"shard {shard.label} did not become ready in time")
            if shard.conn.poll(min(remaining, 0.05)):
                op, _, _ = unpack_frame(shard.conn.recv_bytes())
                if op != "ready":
                    raise RuntimeError(f"shard {shard.label} sent {op!r} before ready")
                shard.ready = True
                return
            if not shard.process.is_alive():
                raise RuntimeError(
                    f"shard {shard.label} died during startup "
                    f"(exitcode {shard.process.exitcode})"
                )

    def close(self) -> None:
        if self.executor is None:
            return
        self._closed = True
        # In-flight dispatches drain first (the service already awaited its
        # batch tasks, but a direct engine user may not have).
        self.executor.shutdown(wait=True)
        self.executor = None
        with self._routing_lock:
            shards = list(self._shards.values()) + self._graveyard
            self._shards.clear()
        for shard in shards:
            if shard.process.is_alive():
                try:
                    shard.conn.send_bytes(pack_frame("stop"))
                except (BrokenPipeError, OSError):
                    pass
            shard.process.join(timeout=5.0)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=5.0)
            try:
                shard.conn.close()
            except OSError:
                pass

    # --------------------------------------------------------------- routing
    def _promote_ready_locked(self) -> None:
        """Consume pending ready handshakes (non-blocking; lock held).

        Only shards that have never been routable are polled here, so this
        read cannot race a dispatcher: dispatchers touch a shard's pipe
        only after ``ready`` flips, and it flips only under this lock.
        """
        for shard in self._shards.values():
            if not shard.ready and not shard.dead and shard.conn.poll(0):
                try:
                    op, _, _ = unpack_frame(shard.conn.recv_bytes())
                except (EOFError, OSError):
                    shard.dead = True
                    continue
                if op == "ready":
                    shard.ready = True

    def _reap_locked(self) -> None:
        """Bury shards that died while *idle* (lock held).

        A shard that crashes mid-batch is handled by its dispatcher
        (:meth:`_handle_death`); one that dies between batches has no
        dispatcher watching it, so the routing path sweeps for corpses.
        Shards with work in flight are left to their dispatcher — burying
        here too would double-count the death.
        """
        for slot, shard in list(self._shards.items()):
            if shard.dead or shard.retired or shard.in_flight > 0:
                continue
            if not shard.process.is_alive():
                shard.dead = True
                shard.stats.record_error()
                self.deaths += 1
                del self._shards[slot]
                self._graveyard.append(shard)
                if self.respawn and not self._closed:
                    live = sum(1 for s in self._shards.values() if s.alive() and not s.retired)
                    if live < self.min_shards:
                        self._spawn_locked()

    def _try_pick(self) -> Optional[_Shard]:
        with self._routing_lock:
            self._reap_locked()
            self._promote_ready_locked()
            candidates = [
                s for s in self._shards.values() if s.ready and not s.retired and s.alive()
            ]
            if not candidates:
                return None
            shard = min(candidates, key=lambda s: (s.in_flight, s.slot))
            shard.in_flight += 1
            return shard

    def _pick(self) -> _Shard:
        """A live shard to dispatch to; respawns through total loss."""
        deadline = time.monotonic() + self.start_timeout_s
        while True:
            shard = self._try_pick()
            if shard is not None:
                return shard
            if self._closed:
                raise RuntimeError("engine is closed")
            if self.respawn:
                with self._routing_lock:
                    live = sum(1 for s in self._shards.values() if s.alive() and not s.retired)
                    if live < self.min_shards:
                        self._spawn_locked()
            if time.monotonic() > deadline:
                raise RuntimeError("no live shards available")
            time.sleep(0.01)

    def _handle_death(self, shard: _Shard, reason: str) -> None:
        """Bury a dead/wedged shard and (optionally) respawn its slot."""
        with self._routing_lock:
            if self._shards.get(shard.slot) is not shard:
                return  # already handled by a concurrent dispatcher
            shard.dead = True
            shard.stats.record_error()
            self.deaths += 1
            del self._shards[shard.slot]
            self._graveyard.append(shard)
            if self.respawn and not self._closed:
                live = sum(1 for s in self._shards.values() if s.alive() and not s.retired)
                if live < self.min_shards:
                    self._spawn_locked()
        # A wedged-but-alive process must die for real: its pipe may hold a
        # half-written frame that would desync any future reader.
        if shard.process.is_alive():
            shard.process.terminate()

    # ------------------------------------------------------------- execution
    def run(self, images: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Predict one micro-batch (called on a dispatcher thread).

        Retries across shards on worker death; a batch fails only if every
        respawn attempt is exhausted or the workers raise deterministically.
        """
        last_reason = "no shards"
        for _ in range(self.max_shards + 2):
            shard = self._pick()
            try:
                return self._dispatch(shard, images, indices)
            except _ShardDied as exc:
                last_reason = str(exc)
                self._handle_death(shard, last_reason)
                self.redispatches += 1
            finally:
                with self._routing_lock:
                    shard.in_flight -= 1
        raise RuntimeError(f"micro-batch failed after repeated shard deaths: {last_reason}")

    def _dispatch(self, shard: _Shard, images: np.ndarray, indices: np.ndarray) -> np.ndarray:
        with self._routing_lock:
            self._job_counter += 1
            job = self._job_counter
        started = time.monotonic()
        deadline = started + self.dispatch_timeout_s
        # Trace context is installed thread-locally by the service's traced
        # engine.run closure; absent (tracing off / direct engine use) the
        # dispatch carries no telemetry at all.
        parent_ctx = current_context()
        tracer = telemetry.get_tracer() if parent_ctx is not None else None
        dispatch_span = (
            tracer.begin(
                "shard.dispatch", cat="engine", parent=parent_ctx, shard=shard.label, job=job
            )
            if tracer is not None
            else None
        )
        meta: Dict[str, Any] = {"job": job}
        if dispatch_span is not None:
            meta["trace"] = tracer.context_of(dispatch_span)
        outcome = "shard_died"
        try:
            with shard.lock:
                shard.stats.record_submitted()
                try:
                    shard.conn.send_bytes(
                        pack_frame(
                            "predict",
                            {
                                "images": np.asarray(images, dtype=float),
                                "indices": np.asarray(indices, dtype=np.int64),
                            },
                            **meta,
                        )
                    )
                    # Poll in slices so a SIGKILLed worker is noticed in ~50ms
                    # instead of hanging the dispatcher on a dead pipe.
                    while not shard.conn.poll(0.05):
                        if not shard.process.is_alive():
                            raise _ShardDied(f"shard {shard.label} died mid-batch")
                        if time.monotonic() > deadline:
                            raise _ShardDied(
                                f"shard {shard.label} silent for {self.dispatch_timeout_s:g}s; presumed wedged"
                            )
                    blob = shard.conn.recv_bytes()
                except (BrokenPipeError, EOFError, OSError) as exc:
                    raise _ShardDied(f"shard {shard.label} pipe failed: {exc}") from None
                try:
                    op, arrays, reply = unpack_frame(blob)
                except Exception as exc:  # truncated frame from a dying worker
                    raise _ShardDied(f"shard {shard.label} sent a corrupt frame: {exc}") from None
                if reply.get("job") != job:
                    raise _ShardDied(f"shard {shard.label} desynced (job {reply.get('job')} != {job})")
                if op == "error":
                    shard.stats.record_error()
                    outcome = "worker_error"
                    raise RuntimeError(f"shard {shard.label}: {reply.get('error')}")
                latency_ms = (time.monotonic() - started) * 1000.0
                shard.stats.record_batch(int(len(indices)))
                shard.stats.record_completed(latency_ms)
                if dispatch_span is not None:
                    # Adopt the worker's finished spans and fold its per-batch
                    # kernel-profile delta into the parent-side profiler.
                    worker_spans = reply.get("spans")
                    if worker_spans:
                        tracer.ingest(worker_spans)
                    worker_profile = reply.get("kernel_profile")
                    if worker_profile:
                        telemetry.get_profiler().merge(worker_profile)
                outcome = "ok"
                return arrays["predictions"].astype(np.int64)
        finally:
            if dispatch_span is not None:
                tracer.end(dispatch_span, outcome=outcome)

    # ------------------------------------------------------------ autoscaling
    def observe_load(self, queue_depth: int) -> None:
        """Scale the shard set against the service's reported backlog.

        Called by the service's batch loop.  Sustained depth at or above
        ``scale_up_queue_depth`` spawns one spare shard (bounded by
        ``max_shards``); an empty queue retires one spare (never below
        ``min_shards``).  Both actions rate-limit on ``scale_cooldown_s``.
        A freshly spawned shard handshakes asynchronously and joins the
        routable set on its first ``_try_pick`` after ready.
        """
        if self.executor is None or self._closed or self.max_shards <= self.min_shards:
            return
        now = time.monotonic()
        if now - self._last_scale_at < self.scale_cooldown_s:
            return
        with self._routing_lock:
            present = [s for s in self._shards.values() if not s.retired and not s.dead]
            if queue_depth >= self.scale_up_queue_depth and len(present) < self.max_shards:
                self._spawn_locked()
                self._last_scale_at = now
                return
            if queue_depth == 0 and len(present) > self.min_shards:
                idle = [s for s in present if s.ready and s.in_flight == 0]
                if len(idle) > self.min_shards:
                    shard = max(idle, key=lambda s: s.slot)  # newest spare first
                    shard.retired = True
                    self.retired_count += 1
                    del self._shards[shard.slot]
                    self._graveyard.append(shard)
                    if shard.lock.acquire(blocking=False):
                        try:
                            shard.conn.send_bytes(pack_frame("stop"))
                        except (BrokenPipeError, OSError):
                            pass
                        finally:
                            shard.lock.release()
                    self._last_scale_at = now

    # --------------------------------------------------------------- chaos/testing
    def ensure_capacity(self) -> None:
        """Reap idle corpses and respawn below ``min_shards`` right now.

        Recovery normally rides the dispatch path (:meth:`_try_pick` reaps
        and respawns), which is fine under traffic but means a shard killed
        during a fully-cached lull stays buried until the next cache miss.
        The scenario layer's recovery watcher polls this instead of waiting
        for traffic, so recovery-deadline measurements reflect the engine,
        not the arrival process.
        """
        if self._closed:
            return
        with self._routing_lock:
            self._reap_locked()
            self._promote_ready_locked()

    def kill_shard(self, slot: Optional[int] = None) -> Optional[int]:
        """SIGKILL one worker process (fault-injection hook for tests).

        ``slot=None`` kills the busiest live shard.  Returns the killed
        slot, or ``None`` if nothing was killable.  Recovery is the
        production path: the next dispatch to the corpse re-dispatches and
        respawns.
        """
        with self._routing_lock:
            candidates = [s for s in self._shards.values() if s.alive() and not s.retired]
            if not candidates:
                return None
            if slot is None:
                shard = max(candidates, key=lambda s: (s.in_flight, -s.slot))
            else:
                matches = [s for s in candidates if s.slot == slot]
                if not matches:
                    return None
                shard = matches[0]
        shard.process.kill()
        shard.process.join(timeout=5.0)
        return shard.slot

    # ------------------------------------------------------------------ stats
    def stats_snapshot(self) -> Dict:
        """Per-shard and merged accounting (folded into ``/stats``)."""
        with self._routing_lock:
            current = sorted(self._shards.values(), key=lambda s: s.slot)
            buried = list(self._graveyard)
        everything = current + buried
        merged = ServiceStats.merge([s.stats for s in everything]) if everything else ServiceStats()
        return {
            "engine": "process",
            "per_shard": {
                s.label: s.stats.snapshot(in_flight=s.in_flight) for s in current
            },
            "merged": merged.snapshot(),
            "lifecycle": {
                "live": len(current),
                "min_shards": self.min_shards,
                "max_shards": self.max_shards,
                "spawned": self.spawned,
                "deaths": self.deaths,
                "redispatches": self.redispatches,
                "retired": self.retired_count,
            },
        }


def build_sharded_engine(
    model: Any,
    softmax_config: Any,
    gelu_output_bsl: Optional[int] = None,
    flip_prob: float = 0.0,
    fault_seed: int = 0,
    calibration_logits: Optional[np.ndarray] = None,
    shards: int = 2,
    max_shards: Optional[int] = None,
    scale_up_queue_depth: int = 16,
    backend: Optional[str] = None,
    **engine_kwargs: Any,
) -> ShardedProcessEngine:
    """Sharded engine over ``model``; mirror of :func:`~repro.serve.engine.build_engine`.

    .. deprecated::
        Like ``build_engine``, kept as a keyword shim — prefer a
        :class:`~repro.serve.specs.ServeSpec` with ``engine="process"``
        through :func:`repro.serve.deploy.build_deployment`.
    """
    factory = ReplicaFactory(
        model=model,
        softmax_config=softmax_config,
        gelu_output_bsl=gelu_output_bsl,
        flip_prob=flip_prob,
        fault_seed=fault_seed,
        calibration_logits=calibration_logits,
        backend=backend,
    )
    return ShardedProcessEngine(
        factory,
        shards=shards,
        max_shards=max_shards,
        scale_up_queue_depth=scale_up_queue_depth,
        flip_prob=flip_prob,
        image_shape=factory.image_shape(),
        **engine_kwargs,
    )
