"""Frozen, JSON-round-trippable deployment specs for the serving tier.

A deployment used to be CLI-flag folklore: the worker count lived in a
shell history, the circuit parameters in a runbook, the cache policy in
someone's head.  :class:`ServeSpec` makes the whole deployment a single
reproducible artifact, mirroring :mod:`repro.blocks.specs`:

* **frozen dataclass** — a spec is immutable; derive variants with
  :meth:`ServeSpec.with_updates`.
* **exact JSON round-trip** — ``ServeSpec.from_json(spec.to_json())``
  reconstructs the spec field for field, and re-serialising produces the
  same bytes (the property ``repro serve --spec`` and the spec tests
  gate on).
* **validation at construction** — a typo'd engine name or a negative
  queue depth fails when the spec is *built*, not an hour into serving.

Like ``repro.blocks.specs`` this module is pure data: it imports nothing
heavy, and the ``backend`` field is checked for type only — name
resolution happens at build time (:func:`repro.serve.deploy.build_deployment`
threads it through :func:`repro.sc.backends.use_backend`), which keeps the
spec layer importable without pulling in the SC engine.

The JSON envelope is ``{"kind": "serve/deployment", "params": {...}}``;
params omitted from a file take the dataclass defaults, which match the
``repro serve`` CLI defaults exactly (the flags are now a thin shim that
builds one of these).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["SPEC_KIND", "ServeSpec"]

#: The ``kind`` tag of every serialised deployment spec.  ``repro run``
#: uses it to tell deployment files apart from ``ExperimentSpec`` files.
SPEC_KIND = "serve/deployment"

_DATASETS = ("cifar10", "cifar100")
_ENGINES = ("thread", "process", "fabric")
_TRANSPORTS = ("stdio", "http")


def _check_positive(spec: "ServeSpec", *names: str) -> None:
    for name in names:
        value = getattr(spec, name)
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise ValueError(f"{name} must be a positive int, got {value!r}")


@dataclass(frozen=True)
class ServeSpec:
    """One complete, reproducible description of a serving deployment.

    Field groups (in JSON order):

    * identity — ``name`` / ``description`` (free-form, excluded from no
      fingerprints: the *engine version* hashes weights and circuits, not
      labels).
    * model — the synthetic dataset + ViT geometry + optional checkpoint
      (mirrors ``repro serve``'s model flags).
    * circuit — softmax BSL/sub-sampling/iterations, GELU routing, fault
      injection, and the SC kernel ``backend`` name
      (:mod:`repro.sc.backends`; ``None`` = process default).  Backends
      are bit-identical by contract, so ``backend`` is a pure
      throughput knob: it never enters cache keys or the engine
      fingerprint.
    * engine — ``"thread"`` (:class:`~repro.serve.engine.PipelineEngine`),
      ``"process"`` (:class:`~repro.serve.sharded.ShardedProcessEngine`),
      or ``"fabric"`` (:class:`~repro.fabric.engine.FabricEngine`: the
      thread engine with the softmax block executing on a configured
      accelerator-fabric tile, the target of ``dead_tile`` scenario
      events); ``workers`` is threads or shards respectively.
      ``max_shards`` (and ``scale_up_queue_depth``) enable queue-depth
      autoscaling of the process engine above its baseline shard count.
    * service — micro-batcher and backpressure knobs
      (:class:`~repro.serve.service.InferenceService`).
    * cache — prediction-cache policy; the process engine partitions the
      cache per shard by consistent hashing
      (:class:`~repro.serve.cache.ShardedPredictionCache`).
    * transport — stdio JSON-lines or localhost HTTP.
    """

    # identity
    name: str = ""
    description: str = ""
    # model
    dataset: str = "cifar10"
    train_size: int = 160
    data_seed: int = 0
    layers: int = 2
    embed_dim: int = 32
    heads: int = 4
    model_seed: int = 0
    checkpoint: Optional[str] = None
    calibration_images: int = 32
    # circuit
    by: int = 8
    s1: int = 32
    s2: int = 8
    k: int = 3
    gelu_bsl: Optional[int] = None
    flip_prob: float = 0.0
    fault_seed: int = 0
    backend: Optional[str] = None
    # engine
    engine: str = "thread"
    workers: int = 1
    max_shards: Optional[int] = None
    scale_up_queue_depth: int = 16
    # service
    max_batch: int = 8
    max_wait_ms: float = 2.0
    max_queue: int = 256
    timeout_s: float = 30.0
    # cache
    cache: bool = True
    cache_dir: str = ".repro-cache"
    # transport
    transport: str = "stdio"
    host: str = "127.0.0.1"
    port: int = 8765
    # observability — spans + kernel profiling for this deployment.  Purely
    # observational: excluded from the engine fingerprint, request cache
    # keys and scenario cache identity (ScenarioTask strips it), so a spec
    # with telemetry on serves bit-identical predictions to one without.
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.dataset not in _DATASETS:
            raise ValueError(f"dataset must be one of {_DATASETS}, got {self.dataset!r}")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {self.engine!r}")
        if self.transport not in _TRANSPORTS:
            raise ValueError(f"transport must be one of {_TRANSPORTS}, got {self.transport!r}")
        _check_positive(
            self,
            "train_size", "layers", "embed_dim", "heads", "calibration_images",
            "by", "s1", "s2", "k", "workers", "max_batch", "max_queue",
            "scale_up_queue_depth",
        )
        if self.gelu_bsl is not None and (not isinstance(self.gelu_bsl, int) or self.gelu_bsl <= 0):
            raise ValueError(f"gelu_bsl must be a positive int or null, got {self.gelu_bsl!r}")
        if not 0.0 <= float(self.flip_prob) < 1.0:
            raise ValueError(f"flip_prob must be in [0, 1), got {self.flip_prob!r}")
        if float(self.max_wait_ms) < 0.0:
            raise ValueError(f"max_wait_ms must be non-negative, got {self.max_wait_ms!r}")
        if float(self.timeout_s) <= 0.0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s!r}")
        if self.max_shards is not None:
            if not isinstance(self.max_shards, int) or self.max_shards < self.workers:
                raise ValueError(
                    f"max_shards must be >= workers ({self.workers}), got {self.max_shards!r}"
                )
        # Type-only check, same layering rationale as BlockSpec.backend:
        # name resolution belongs to build time (repro.serve.deploy), so the
        # spec layer stays importable without the SC engine.
        if self.backend is not None and not isinstance(self.backend, str):
            raise ValueError(f"backend must be a string or null, got {self.backend!r}")
        if self.checkpoint is not None and not isinstance(self.checkpoint, str):
            raise ValueError(f"checkpoint must be a path string or null, got {self.checkpoint!r}")
        if not 0 <= int(self.port) <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port!r}")
        if not isinstance(self.telemetry, bool):
            raise ValueError(f"telemetry must be a bool, got {self.telemetry!r}")

    # ------------------------------------------------------------- round trip
    def to_dict(self) -> Dict[str, Any]:
        """``{"kind": "serve/deployment", "params": {...}}`` in field order."""
        return {"kind": SPEC_KIND, "params": dataclasses.asdict(self)}

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON — the byte-exact inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ServeSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"serve spec must be a JSON object, got {type(payload).__name__}")
        kind = payload.get("kind")
        if kind != SPEC_KIND:
            raise ValueError(f"expected kind {SPEC_KIND!r}, got {kind!r}")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ValueError("params must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ValueError(f"unknown serve spec params: {', '.join(unknown)}")
        return cls(**params)

    @classmethod
    def from_json(cls, text: str) -> "ServeSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ServeSpec":
        path = Path(path)
        try:
            return cls.from_json(path.read_text())
        except (ValueError, OSError) as exc:
            raise type(exc)(f"{path}: {exc}") from exc

    # ------------------------------------------------------------ derivation
    def with_updates(self, **updates: Any) -> "ServeSpec":
        """A new spec with ``updates`` applied (validation re-runs)."""
        return dataclasses.replace(self, **updates)

    @classmethod
    def field_defaults(cls) -> Dict[str, Any]:
        """Field-name -> default, in declaration (and JSON) order."""
        return {f.name: f.default for f in dataclasses.fields(cls)}

    @staticmethod
    def sniff(payload: Any) -> bool:
        """True when a decoded JSON payload looks like a serve spec.

        ``repro run`` uses this to route ``serve/deployment`` files to the
        serving path and everything else to :class:`ExperimentSpec`.
        """
        return isinstance(payload, dict) and payload.get("kind") == SPEC_KIND
