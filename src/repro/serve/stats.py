"""Service-side metrics: throughput, tail latency, batching, cache hits.

The numbers a serving operator actually watches — requests/s, p50/p95/p99
latency, how well the dynamic batcher is coalescing, how much the result
cache absorbs — collected with O(1) per-request cost and exposed as one
JSON-able snapshot (the ``/stats`` endpoint and the ``stats`` op of the
JSON-lines transport).

Latency percentiles are computed over a bounded reservoir of the most
recent samples (default 16384) so a long-running service neither grows
without bound nor loses sight of the current tail.  Counters are lifetime
totals; throughput is completed requests over service uptime.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Callable, Dict, Iterable, Optional

import numpy as np

__all__ = ["ServiceStats"]

#: Percentiles reported by :meth:`ServiceStats.snapshot`.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


class ServiceStats:
    """Rolling request/batch/cache accounting for one service instance.

    Parameters
    ----------
    max_samples:
        Size of the latency reservoir (most recent samples kept).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(self, max_samples: int = 16384, clock: Optional[Callable[[], float]] = None) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self._clock = clock if clock is not None else time.monotonic
        self._started_at: Optional[float] = None
        self._latencies_ms: deque = deque(maxlen=int(max_samples))
        self._batch_sizes: Counter = Counter()
        self.submitted = 0
        self.completed = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.rejected = 0
        self.timeouts = 0
        self.errors = 0
        self.batches = 0
        self.batched_images = 0

    # ------------------------------------------------------------- recording
    def start(self) -> None:
        """Mark service start; uptime and throughput are measured from here."""
        self._started_at = self._clock()

    def record_submitted(self) -> None:
        self.submitted += 1

    def record_completed(self, latency_ms: float, cached: bool = False, coalesced: bool = False) -> None:
        """One request finished (computed, served from cache, or coalesced)."""
        self.completed += 1
        if cached:
            self.cache_hits += 1
        if coalesced:
            self.coalesced += 1
        self._latencies_ms.append(float(latency_ms))

    def record_rejected(self) -> None:
        self.rejected += 1

    def record_timeout(self) -> None:
        self.timeouts += 1

    def record_error(self) -> None:
        self.errors += 1

    def record_batch(self, size: int) -> None:
        """One micro-batch dispatched to the worker pool."""
        self.batches += 1
        self.batched_images += int(size)
        self._batch_sizes[int(size)] += 1

    # --------------------------------------------------------------- merging
    @classmethod
    def merge(cls, parts: Iterable["ServiceStats"], max_samples: int = 16384) -> "ServiceStats":
        """One aggregate view over per-shard (or per-engine) instances.

        Counters and batch-size histograms add; latency reservoirs
        concatenate, so the merged percentiles are computed over the union
        of the shards' samples — *not* averaged per shard, which would
        understate the tail of the slowest shard.  The merged start time is
        the earliest of the parts' (all instances share the monotonic
        clock), so throughput is total completions over the span the first
        shard has been up.

        The parts are left untouched; the returned instance is an
        independent accumulator (recording into it later is allowed but
        usually pointless — re-merge instead).
        """
        merged = cls(max_samples=max_samples)
        starts = []
        for part in parts:
            merged.submitted += part.submitted
            merged.completed += part.completed
            merged.cache_hits += part.cache_hits
            merged.coalesced += part.coalesced
            merged.rejected += part.rejected
            merged.timeouts += part.timeouts
            merged.errors += part.errors
            merged.batches += part.batches
            merged.batched_images += part.batched_images
            merged._batch_sizes.update(part._batch_sizes)
            merged._latencies_ms.extend(part._latencies_ms)
            if part._started_at is not None:
                starts.append(part._started_at)
        if starts:
            merged._started_at = min(starts)
        return merged

    # -------------------------------------------------------------- snapshot
    @property
    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return max(0.0, self._clock() - self._started_at)

    def snapshot(self, queue_depth: int = 0, in_flight: int = 0) -> Dict:
        """One JSON-able view of the service's health (the ``/stats`` body)."""
        uptime = self.uptime_seconds
        latencies = np.asarray(self._latencies_ms, dtype=float)
        percentiles: Dict[str, Optional[float]] = {}
        for q in LATENCY_PERCENTILES:
            key = f"p{q:g}_ms"
            percentiles[key] = float(np.percentile(latencies, q)) if latencies.size else None
        mean_batch = self.batched_images / self.batches if self.batches else 0.0
        return {
            "uptime_seconds": uptime,
            "requests": {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "errors": self.errors,
                "queue_depth": int(queue_depth),
                "in_flight": int(in_flight),
            },
            "throughput_per_s": self.completed / uptime if uptime > 0 else 0.0,
            "latency": percentiles,
            "batching": {
                "batches": self.batches,
                "batched_images": self.batched_images,
                "mean_batch_size": mean_batch,
                "histogram": {str(size): count for size, count in sorted(self._batch_sizes.items())},
            },
            "cache": {
                "hits": self.cache_hits,
                "coalesced": self.coalesced,
                "hit_rate": self.cache_hits / self.completed if self.completed else 0.0,
            },
        }
