"""Service transports: JSON-lines (stdio / TCP) and a localhost HTTP server.

Both transports are thin adapters over one transport-agnostic entry point,
:func:`handle_message`, so the protocol semantics (and their tests) live in
exactly one place.  No third-party dependency: the HTTP side is a minimal
HTTP/1.1 request parser on ``asyncio.start_server``, enough for
``POST /predict`` / ``GET /stats`` / ``GET /healthz`` / ``GET /metrics``
(Prometheus text exposition) from any client.

Protocol (JSON object per message / per HTTP body):

``{"op": "predict", "image": [[...]], "index": 7, "id": "r1"}``
    -> ``{"ok": true, "id": "r1", "prediction": 3, "cached": false,
    "coalesced": false, "latency_ms": 4.2}``
``{"op": "stats"}``
    -> ``{"ok": true, "stats": {...}}`` (the snapshot of
    :meth:`~repro.serve.service.InferenceService.stats_snapshot`)
``{"op": "ping"}``
    -> ``{"ok": true, "op": "ping"}``

Errors come back as ``{"ok": false, "error": "...", "code": ...}`` with
``code`` one of ``bad_request`` (422/400 territory), ``overloaded`` (429)
or ``timeout`` (504); the HTTP adapter maps them onto those status codes.
On the JSON-lines transport requests are handled concurrently — responses
carry the request's ``id`` and may interleave out of submission order,
which is what lets one connection exercise the dynamic batcher.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, Dict

from repro.serve.service import (
    InferenceService,
    RequestTimeout,
    ServiceClosed,
    ServiceOverloaded,
)

__all__ = ["handle_message", "handle_jsonl_connection", "render_metrics", "serve_http", "serve_stdio"]

#: error code -> HTTP status used by the HTTP adapter.
ERROR_STATUS = {
    "bad_request": 400,
    "overloaded": 429,
    "timeout": 504,
    "closed": 503,
    "internal": 500,
}


async def handle_message(service: InferenceService, message: Any) -> Dict:
    """Execute one protocol message against the service; never raises."""
    if not isinstance(message, dict):
        return {"ok": False, "error": "message must be a JSON object", "code": "bad_request"}
    response: Dict[str, Any] = {}
    if "id" in message:
        response["id"] = message["id"]
    op = message.get("op", "predict")
    try:
        if op == "predict":
            if "image" not in message:
                raise ValueError("predict needs an 'image' field")
            result = await service.submit(
                message["image"],
                index=int(message.get("index", 0)),
                request_id=str(message["id"]) if "id" in message else None,
            )
            response.update(
                ok=True,
                prediction=result.prediction,
                cached=result.cached,
                coalesced=result.coalesced,
                latency_ms=round(result.latency_ms, 3),
            )
        elif op == "stats":
            response.update(ok=True, stats=service.stats_snapshot())
        elif op == "ping":
            response.update(ok=True, op="ping")
        else:
            response.update(ok=False, error=f"unknown op {op!r}", code="bad_request")
    except ServiceOverloaded as exc:
        response.update(ok=False, error=str(exc), code="overloaded")
    except RequestTimeout as exc:
        response.update(ok=False, error=str(exc), code="timeout")
    except ServiceClosed as exc:
        response.update(ok=False, error=str(exc), code="closed")
    except (TypeError, ValueError) as exc:
        response.update(ok=False, error=str(exc), code="bad_request")
    except Exception as exc:  # noqa: BLE001 - a transport must answer, not die
        response.update(ok=False, error=f"{type(exc).__name__}: {exc}", code="internal")
    return response


# ---------------------------------------------------------------------------
# JSON-lines
# ---------------------------------------------------------------------------


async def handle_jsonl_connection(
    service: InferenceService,
    reader: "asyncio.StreamReader",
    writer: "asyncio.StreamWriter",
) -> None:
    """One JSON-lines session: a request per line, a response line each.

    Lines are dispatched concurrently (each in its own task) so a burst on
    one connection coalesces into micro-batches; the write lock keeps
    response lines whole.
    """
    write_lock = asyncio.Lock()
    tasks: set = set()

    async def respond(payload: Dict) -> None:
        data = (json.dumps(payload) + "\n").encode()
        async with write_lock:
            writer.write(data)
            await writer.drain()

    async def process(line: bytes) -> None:
        try:
            message = json.loads(line)
        except ValueError:
            await respond({"ok": False, "error": "invalid JSON line", "code": "bad_request"})
            return
        await respond(await handle_message(service, message))

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.create_task(process(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*list(tasks), return_exceptions=True)
    finally:
        try:
            writer.close()
        except Exception:  # noqa: BLE001 - stdio writers may not support close
            pass


async def serve_stdio(service: InferenceService) -> None:
    """Serve JSON-lines over stdin/stdout until EOF.

    ``python -m repro serve --transport stdio``: the simplest way to drive
    the batcher from another process (or a shell pipeline) with zero
    network surface.  stdin is read on an executor thread so platforms
    without pipe-transport support (and plain files) work identically.
    """
    loop = asyncio.get_running_loop()
    write_lock = asyncio.Lock()
    tasks: set = set()

    async def respond(payload: Dict) -> None:
        async with write_lock:
            print(json.dumps(payload), flush=True)

    async def process(line: str) -> None:
        try:
            message = json.loads(line)
        except ValueError:
            await respond({"ok": False, "error": "invalid JSON line", "code": "bad_request"})
            return
        await respond(await handle_message(service, message))

    while True:
        line = await loop.run_in_executor(None, sys.stdin.readline)
        if not line:
            break
        if not line.strip():
            continue
        task = asyncio.create_task(process(line))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
    if tasks:
        await asyncio.gather(*list(tasks), return_exceptions=True)


# ---------------------------------------------------------------------------
# HTTP
# ---------------------------------------------------------------------------


_HTTP_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 429: "Too Many Requests",
                 500: "Internal Server Error", 503: "Service Unavailable", 504: "Gateway Timeout"}


def _http_response(status: int, payload: Dict) -> bytes:
    body = json.dumps(payload).encode()
    head = (
        f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode() + body


def _http_text_response(status: int, text: str, content_type: str = "text/plain; version=0.0.4; charset=utf-8") -> bytes:
    """Plain-text response (the Prometheus ``/metrics`` exposition body)."""
    body = text.encode()
    head = (
        f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode() + body


def render_metrics(service: InferenceService) -> str:
    """The ``GET /metrics`` body: fold current state into the registry, render.

    Pull-published: the service/engine/cache layers keep plain counters and
    this scrape site flattens their snapshots into gauges, adds cache and
    engine-lifecycle counters, folds in the kernel profiler, and renders
    the Prometheus text format.  Metrics are observational only — nothing
    here feeds back into serving.
    """
    from repro import telemetry
    from repro.telemetry.metrics import publish_snapshot

    registry = telemetry.get_registry()
    publish_snapshot(registry, service.stats_snapshot(), prefix="repro_service")
    cache = getattr(service, "cache", None)
    counters = getattr(cache, "counters", None)
    if callable(counters):
        hits = registry.counter("repro_cache_hits_total", "Prediction cache hits")
        misses = registry.counter("repro_cache_misses_total", "Prediction cache misses")
        stores = registry.counter("repro_cache_stores_total", "Prediction cache stores")
        stats = counters()
        hits.set(stats.get("hits", 0), cache="prediction")
        misses.set(stats.get("misses", 0), cache="prediction")
        stores.set(stats.get("stores", 0), cache="prediction")
    telemetry.get_profiler().publish(registry)
    return registry.render_prometheus()


async def _handle_http_connection(
    service: InferenceService,
    reader: "asyncio.StreamReader",
    writer: "asyncio.StreamWriter",
) -> None:
    try:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        bad_length = False
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    bad_length = True
                if content_length < 0:
                    bad_length = True
        if bad_length:
            writer.write(_http_response(
                400, {"ok": False, "error": "invalid Content-Length header", "code": "bad_request"}
            ))
            await writer.drain()
            return
        body = await reader.readexactly(content_length) if content_length else b""

        if method == "GET" and path == "/stats":
            response = _http_response(200, {"ok": True, "stats": service.stats_snapshot()})
        elif method == "GET" and path == "/metrics":
            response = _http_text_response(200, render_metrics(service))
        elif method == "GET" and path == "/healthz":
            response = _http_response(200, {"ok": True, "status": "serving"})
        elif method == "POST" and path == "/predict":
            try:
                message = json.loads(body) if body else {}
            except ValueError:
                message = None
            if not isinstance(message, dict):
                response = _http_response(
                    400, {"ok": False, "error": "body must be a JSON object", "code": "bad_request"}
                )
            else:
                message.setdefault("op", "predict")
                payload = await handle_message(service, message)
                status = 200 if payload.get("ok") else ERROR_STATUS.get(payload.get("code"), 500)
                response = _http_response(status, payload)
        else:
            response = _http_response(
                404, {"ok": False, "error": f"no route {method} {path}", "code": "bad_request"}
            )
        writer.write(response)
        await writer.drain()
    except (asyncio.IncompleteReadError, ConnectionError):
        pass
    finally:
        writer.close()


async def serve_http(service: InferenceService, host: str = "127.0.0.1", port: int = 8765):
    """Start the localhost HTTP front end; returns the asyncio server.

    The caller owns the lifetime: ``server.close()`` +
    ``await server.wait_closed()`` to stop, or ``await
    server.serve_forever()`` to block (the CLI does the latter).
    """
    return await asyncio.start_server(
        lambda reader, writer: _handle_http_connection(service, reader, writer), host, port
    )
