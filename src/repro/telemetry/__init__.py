"""Unified observability plane: tracing, metrics, kernel profiling, logging.

The serving/scenario/fabric arc (PRs 5-9) built machinery with no way to
see inside it.  This package is the instrumentation layer they share:

* :mod:`repro.telemetry.tracer` — spans with an injected monotonic clock
  and explicit context propagation (service -> batcher -> engine -> shard
  worker over the NPZ frame header; scenario phases and chaos events),
  exported as Chrome-trace JSON (Perfetto-loadable) and JSONL,
* :mod:`repro.telemetry.metrics` — labelled counters/gauges/histograms
  with Prometheus text exposition (``GET /metrics`` on the HTTP
  transport) and a JSON snapshot,
* :mod:`repro.telemetry.profiling` — per-kernel x per-backend call/word/
  wall-time profiling hooked into the :mod:`repro.sc.backends` registry,
* :mod:`repro.telemetry.logging` — the one structured-logging config site
  behind ``repro --log-level`` / ``--log-json``,
* :mod:`repro.telemetry.summary` — trace loading/summarising for
  ``repro trace``.

**Enablement and the inertness contract.**  Telemetry is off by default
and switched on by the ``REPRO_TELEMETRY`` environment variable (``1`` /
``true`` / ``on``), the ``telemetry`` field of a
:class:`~repro.serve.specs.ServeSpec` / scenario spec, or
:func:`enable`.  When off, the kernel seam costs one ``is None`` check
and the serve layers skip span creation behind one boolean.  On or off,
telemetry is *provably inert*: predictions stay bit-identical, and no
content-addressed cache key, engine fingerprint or spec identity
incorporates telemetry state (``repro verify`` and the warm-cache re-run
gate on exactly this).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.telemetry.logging import StructuredLogger, configure_logging, get_logger
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    publish_snapshot,
)
from repro.telemetry.profiling import KernelProfiler, get_profiler
from repro.telemetry.profiling import install as _install_profiling
from repro.telemetry.profiling import uninstall as _uninstall_profiling
from repro.telemetry.summary import load_trace, summarize_trace
from repro.telemetry.tracer import Span, Tracer, current_context, push_context

__all__ = [
    "TELEMETRY_ENV_VAR",
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "Span",
    "StructuredLogger",
    "Tracer",
    "configure_logging",
    "current_context",
    "disable",
    "enable",
    "enabled",
    "get_logger",
    "get_profiler",
    "get_registry",
    "get_tracer",
    "load_trace",
    "publish_snapshot",
    "push_context",
    "reset",
    "summarize_trace",
]

#: Environment variable that switches the instrumentation plane on.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

_TRUTHY = ("1", "true", "on", "yes")

#: Explicit override: ``None`` follows the environment variable.
_forced: Optional[bool] = None

#: Process-wide tracer shared by the serve/scenario/fabric layers.
_default_tracer = Tracer()


def enabled() -> bool:
    """Is the instrumentation plane on for this process?"""
    if _forced is not None:
        return _forced
    return os.environ.get(TELEMETRY_ENV_VAR, "").strip().lower() in _TRUTHY


def enable() -> None:
    """Force telemetry on and install the kernel-profiling hook."""
    global _forced
    _forced = True
    _install_profiling()


def disable() -> None:
    """Force telemetry off and remove the kernel-profiling hook.

    Recorded spans/metrics/profiles are kept (use :func:`reset` to drop
    them); only *collection* stops.
    """
    global _forced
    _forced = False
    _uninstall_profiling()


def activate() -> bool:
    """Install the kernel hook iff :func:`enabled`; returns that state.

    The entry points (deploy, scenario runner, shard workers) call this
    so an env-var-enabled run profiles kernels without anyone having
    called :func:`enable` explicitly.
    """
    if enabled():
        _install_profiling()
        return True
    return False


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _default_tracer


def reset() -> None:
    """Return the plane to its pristine state (tests / between runs).

    Clears the default tracer, registry and profiler, removes the kernel
    hook, and reverts enablement to follow the environment variable.
    """
    global _forced
    _forced = None
    _uninstall_profiling()
    _default_tracer.clear()
    get_registry().clear()
    get_profiler().clear()
