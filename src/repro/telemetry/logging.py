"""Structured logging configured in exactly one place.

Every diagnostic line the CLI and runners emit goes through one
``"repro"`` logger hierarchy with a single stderr handler, so ``repro
--log-level debug`` (and ``--log-json``) controls all of it — stdout
stays reserved for results, tables and the JSON-lines transport.

Two formats from the same call sites:

* text (default): ``level component: event key=value ...``
* JSON lines (``--log-json``): one object per line with ``level``,
  ``logger``, ``event`` and the structured fields — machine-ingestable
  without fragile text parsing.

Use :func:`get_logger` and keyword fields::

    log = get_logger("scenario")
    log.info("event_fired", action="kill_shard", at_request=42)
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Optional, TextIO

__all__ = ["StructuredLogger", "configure_logging", "get_logger"]

#: Root of the package's logger hierarchy.
LOGGER_NAME = "repro"

_FIELDS_ATTR = "repro_fields"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


class _TextFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        fields = getattr(record, _FIELDS_ATTR, None) or {}
        suffix = "".join(f" {key}={value}" for key, value in fields.items())
        name = record.name[len(LOGGER_NAME) + 1 :] if record.name.startswith(LOGGER_NAME + ".") else record.name
        return f"{record.levelname.lower():<7s} {name}: {record.getMessage()}{suffix}"


class _JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None) or {}
        for key, value in fields.items():
            payload.setdefault(str(key), value)
        return json.dumps(payload, default=str)


class StructuredLogger:
    """Thin keyword-fields front over one :class:`logging.Logger`."""

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def raw(self) -> logging.Logger:
        return self._logger

    def _log(self, level: int, event: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={_FIELDS_ATTR: fields})

    def debug(self, event: str, **fields: Any) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log(logging.ERROR, event, fields)


def configure_logging(
    level: str = "info",
    json_lines: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """(Re-)configure the ``repro`` logger; idempotent, the one config site.

    Replaces any previous handler, so calling again (tests, embedded use)
    never stacks duplicate output.  Returns the configured root logger.
    """
    if level not in _LEVELS:
        raise ValueError(f"log level must be one of {sorted(_LEVELS)}, got {level!r}")
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(_LEVELS[level])
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_JsonFormatter() if json_lines else _TextFormatter())
    logger.addHandler(handler)
    return logger


def get_logger(name: Optional[str] = None) -> StructuredLogger:
    """A structured logger under the ``repro`` hierarchy.

    Safe before :func:`configure_logging`: an unconfigured hierarchy has
    no handler and stays silent (library use never spams stderr).
    """
    full = LOGGER_NAME if not name else f"{LOGGER_NAME}.{name}"
    return StructuredLogger(logging.getLogger(full))
