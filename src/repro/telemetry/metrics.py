"""Labelled counters/gauges/histograms with Prometheus text exposition.

One :class:`MetricsRegistry` holds every metric the instrumentation plane
publishes: service request counters, cache hit/miss/store counts, engine
lifecycle counters (spawns, deaths, redispatches, autoscale actions,
fabric replacements) and the kernel profiler's per-kernel timings.  Two
read-outs of the same state:

* :meth:`MetricsRegistry.render_prometheus` — the standard text exposition
  format, served by the HTTP transport's ``GET /metrics`` route so any
  Prometheus-compatible scraper can watch a deployment,
* :meth:`MetricsRegistry.snapshot` — a JSON-able dict, embedded in trace
  exports and usable from tests without a text parser.

Metrics here are *pull-published*: the serving layers keep their existing
plain-int counters (zero new cost on hot paths) and the scrape/summary
sites fold them into the registry via :func:`publish_snapshot` and the
metric ``set``/``inc`` APIs.  Nothing in this module feeds back into
compute, cache keys or fingerprints — telemetry is observational only.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "publish_snapshot",
]

#: Default histogram bucket upper bounds (generic latency-in-ms layout).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats render without the ``.0``."""
    if isinstance(value, float) and math.isfinite(value) and value == int(value):
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: _LabelKey, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = list(key)
    if extra:
        pairs = sorted(pairs + [(k, str(v)) for k, v in extra.items()])
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared machinery: one named metric holding per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "", lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self.help_text = help_text
        self._series: Dict[_LabelKey, Any] = {}
        self._lock = lock if lock is not None else threading.Lock()

    def labelsets(self) -> List[Dict[str, str]]:
        with self._lock:
            return [dict(key) for key in self._series]


class Counter(_Metric):
    """Monotonically increasing sample (``inc`` only)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up; inc amount must be >= 0")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def set(self, value: float, **labels: Any) -> None:
        """Set the absolute value (for folding in externally-kept totals).

        Still monotone: lowering an existing sample raises, so a publisher
        that re-folds plain-int counters on every scrape cannot silently
        turn a counter into a gauge.
        """
        key = _label_key(labels)
        with self._lock:
            if float(value) < self._series.get(key, 0.0):
                raise ValueError(f"counter {self.name} cannot decrease")
            self._series[key] = float(value)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def _render(self) -> List[str]:
        lines = []
        with self._lock:
            for key in sorted(self._series):
                lines.append(f"{self.name}{_render_labels(key)} {_format_value(self._series[key])}")
        return lines

    def _snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [{"labels": dict(key), "value": value} for key, value in sorted(self._series.items())]


class Gauge(_Metric):
    """Point-in-time sample (set to anything, any direction)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    _render = Counter._render
    _snapshot = Counter._snapshot


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    Each label set owns ``len(buckets) + 1`` cumulative counts (the last is
    the implicit ``+Inf`` bucket) plus a running sum; an observation lands
    in every bucket whose upper bound is >= the value (``le`` semantics,
    boundary inclusive).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        lock: Optional[threading.Lock] = None,
    ) -> None:
        super().__init__(name, help_text, lock=lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        value = float(value)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
                self._series[key] = state
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    state["counts"][i] += 1
            state["counts"][-1] += 1  # +Inf
            state["sum"] += value
            state["count"] += 1

    def bucket_counts(self, **labels: Any) -> List[int]:
        """Cumulative counts per bound (``+Inf`` last); empty series -> zeros."""
        with self._lock:
            state = self._series.get(_label_key(labels))
            return list(state["counts"]) if state else [0] * (len(self.buckets) + 1)

    def _render(self) -> List[str]:
        lines = []
        with self._lock:
            for key in sorted(self._series):
                state = self._series[key]
                for bound, count in zip(self.buckets, state["counts"]):
                    le = _render_labels(key, {"le": _format_value(bound)})
                    lines.append(f"{self.name}_bucket{le} {count}")
                lines.append(f"{self.name}_bucket{_render_labels(key, {'le': '+Inf'})} {state['counts'][-1]}")
                lines.append(f"{self.name}_sum{_render_labels(key)} {_format_value(state['sum'])}")
                lines.append(f"{self.name}_count{_render_labels(key)} {state['count']}")
        return lines

    def _snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {
                    "labels": dict(key),
                    "buckets": list(zip([*self.buckets, float("inf")], state["counts"])),
                    "sum": state["sum"],
                    "count": state["count"],
                }
                for key, state in sorted(self._series.items())
            ]


class MetricsRegistry:
    """Get-or-create store of named metrics with one render/snapshot view."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help_text: str, **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, not {cls.kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(Gauge, name, help_text)

    def histogram(
        self, name: str, help_text: str = "", buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(Histogram, name, help_text, buckets=buckets)

    def render_prometheus(self) -> str:
        """The ``/metrics`` body: HELP/TYPE headers plus every sample line."""
        lines: List[str] = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            if metric.help_text:
                lines.append(f"# HELP {metric.name} {metric.help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric._render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view: metric name -> {kind, help, series}."""
        with self._lock:
            metrics = dict(self._metrics)
        return {
            name: {"kind": m.kind, "help": m.help_text, "series": m._snapshot()}
            for name, m in sorted(metrics.items())
        }

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


#: Process-wide default registry (what the HTTP ``/metrics`` route serves).
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _default_registry


def publish_snapshot(registry: MetricsRegistry, snapshot: Dict[str, Any], prefix: str = "repro") -> None:
    """Fold a nested numeric snapshot dict into gauges, one per scalar leaf.

    Keys join with ``_`` (``{"requests": {"completed": 3}}`` becomes gauge
    ``repro_requests_completed``); non-numeric and ``None`` leaves are
    skipped.  This is how :meth:`ServiceStats.snapshot` (and engine
    lifecycle sub-dicts) become scrapeable without the stats layer knowing
    about the registry.
    """

    def walk(prefix_parts: List[str], node: Any) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                name = str(key).replace("-", "_").replace("/", "_").replace(".", "_")
                walk(prefix_parts + [name], value)
            return
        if isinstance(node, bool) or node is None:
            return
        if isinstance(node, (int, float)) and math.isfinite(float(node)):
            registry.gauge("_".join(prefix_parts)).set(float(node))

    walk([prefix], snapshot)
